"""Artifact-centric order processing compiled to a DCDS (Section 6).

The paper argues the artifact model and DCDSs are expressively equivalent
and sketches the compilation. This example models a small order-fulfilment
artifact system — orders are priced by an external quote service, then
either shipped or cancelled by a human decision — compiles it to a DCDS
with nondeterministic services, and verifies µLP properties of the result.

Run: python examples/artifact_order_processing.py
"""

from repro import verify
from repro.fol import parse_formula
from repro.fol.ast import Atom
from repro.mucalc import parse_mu
from repro.reductions import (
    ArtifactAction, ArtifactSystem, ArtifactType, ExternalInput,
    PostTemplate, compile_to_dcds)
from repro.relational import DatabaseSchema, Instance, fact
from repro.relational.values import Var
from repro.semantics import NondeterministicOracle, simulate


def build_order_system() -> ArtifactSystem:
    order = ArtifactType("Order", ("id", "status"))
    quote = ArtifactType("Quote", ("id", "amount"))

    price = ArtifactAction(
        name="price",
        params=(),
        pre=parse_formula("exists i. Order(i, 'draft')"),
        post=(
            PostTemplate(
                parse_formula("Order(i, 'draft')"),
                (Atom("Order", (Var("i"), "priced")),
                 Atom("Quote", (Var("i"),
                                ExternalInput("amount", (Var("i"),)))))),
        ),
    )
    decide = ArtifactAction(
        name="decide",
        params=(),
        pre=parse_formula("exists i. Order(i, 'priced')"),
        post=(
            PostTemplate(
                parse_formula("Order(i, 'priced')"),
                (Atom("Order", (Var("i"),
                                ExternalInput("verdict", (Var("i"),)))),)),
        ),
    )
    return ArtifactSystem(
        types=(order, quote),
        database=DatabaseSchema.of("Customer/1"),
        actions=(price, decide),
        initial=Instance([fact("Order", "o1", "draft"),
                          fact("Customer", "alice")]),
        name="orders")


def main() -> None:
    system = build_order_system()
    dcds = compile_to_dcds(system)
    print("=== compiled DCDS ===")
    print(dcds.describe())

    print("\n=== a sample run ===")
    trace = simulate(dcds, steps=2, oracle=NondeterministicOracle(seed=11))
    for instance, label in trace:
        print(f"  [{label or 'init'}] {instance}")

    print("\n=== verification (forced: the verdict loop defeats the ")
    print("    syntactic GR check, but the system is state-bounded) ===")
    properties = {
        "the order is eventually priced (somewhere)":
            "mu Z. (Order('o1', 'priced') | <-> Z)",
        "a quote always accompanies pricing":
            "nu X. ((Order('o1', 'priced') -> "
            "(E a. live(a) & Quote('o1', a))) & [-] X)",
    }
    for label, text in properties.items():
        report = verify(dcds, parse_mu(text), force=True, max_states=4000)
        verdict = "holds" if report.holds else "FAILS"
        print(f"  [{verdict:5s}] {label}")


if __name__ == "__main__":
    main()
