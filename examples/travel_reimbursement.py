"""The Appendix E travel-reimbursement system, end to end.

* builds the full-fidelity request system and audit system;
* reproduces the Figure 9 and Figure 10 analysis verdicts
  (request: not GR-acyclic but GR+-acyclic; audit: weakly acyclic);
* model-checks the Appendix E properties on the behaviourally equivalent
  slim models (the full models issue eleven service calls per request,
  which is exactly the exponential blowup Section 6 warns about).

Run: python examples/travel_reimbursement.py
"""

from repro import verify
from repro.analysis import dataflow_graph, dependency_graph
from repro.gallery import audit_system, request_system
from repro.gallery.travel import (
    property_audit_failure_propagates_slim,
    property_no_unpriced_acceptance_slim,
    property_request_eventually_decided)
from repro.mucalc import ModelChecker, classify
from repro.semantics import rcycl
from repro.viz import dataflow_graph_to_dot


def analyze_request_system() -> None:
    print("=== request system (Appendix E / Figure 9) ===")
    full = request_system()
    graph = dataflow_graph(full)
    print(f"dataflow nodes: {sorted(graph.nodes)}")
    print(f"edges: {len(graph.edges)} "
          f"({len(graph.special_edges())} special)")
    print(f"GR-acyclic:  {graph.is_gr_acyclic()}   (paper: False)")
    print(f"GR+-acyclic: {graph.is_gr_plus_acyclic()}   (paper: True)")
    print("\nGraphviz source (first lines):")
    print("\n".join(dataflow_graph_to_dot(graph).splitlines()[:8]))


def verify_request_properties() -> None:
    print("\n=== request-system properties (slim model, µLP, RCYCL) ===")
    slim = request_system(slim=True)
    ts = rcycl(slim, max_states=3000)
    print(f"RCYCL abstraction: {ts.stats()}")
    checker = ModelChecker(ts)

    liveness = property_request_eventually_decided()
    print(f"liveness fragment: {classify(liveness).value}")
    print(f"  once initiated, a request persists until the monitor "
          f"decides: {checker.models(liveness)}")

    safety = property_no_unpriced_acceptance_slim()
    print(f"  no request without expense data is ever accepted: "
          f"{checker.models(safety)}")


def analyze_audit_system() -> None:
    print("\n=== audit system (Appendix E / Figure 10) ===")
    full = audit_system()
    graph = dependency_graph(full)
    print(f"positions: {len(graph.nodes)} (paper Figure 10: 18)")
    print(f"special edges: {len(graph.special_edges())}")
    print(f"weakly acyclic: {graph.is_weakly_acyclic()}   (paper: True)")


def verify_audit_property() -> None:
    print("\n=== audit property (slim model, µLA, det abstraction) ===")
    report = verify(audit_system(slim=True),
                    property_audit_failure_propagates_slim(),
                    max_states=4000)
    print(f"  a failed hotel/flight check eventually fails the travel "
          f"request: {report.holds}")
    print(f"  {report!r}")


def main() -> None:
    analyze_request_system()
    verify_request_properties()
    analyze_audit_system()
    verify_audit_property()


if __name__ == "__main__":
    main()
