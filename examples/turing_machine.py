"""The Theorem 4.1 construction: a Turing machine running inside a DCDS.

Every undecidability result in the paper reduces from the halting problem
through this encoding: tape cells are chained by ``right`` (kept linear with
a key constraint and a reserved source node), the ``newCell`` service mints
tape extensions, and one always-enabled action fires the transition table.

This example encodes a small machine, runs it via the concrete DCDS
semantics, decodes every state back into a machine configuration, and
checks the safety property ``G ¬halted`` on a finite exploration.

Run: python examples/turing_machine.py
"""

from repro.mucalc import check
from repro.relational.values import Fresh
from repro.semantics import DeterministicOracle, explore_concrete, simulate
from repro.tm import (
    binary_flipper_machine, decode_configuration, encode, has_halted,
    looper_machine, safety_property_not_halted)


def run_machine_in_dcds() -> None:
    word = "0110"
    tm = binary_flipper_machine()
    print(f"=== machine run on {word!r} (direct simulator) ===")
    direct = tm.run(word)
    for configuration in direct:
        print(f"  {configuration.rendered()}")

    print("\n=== the same run inside the DCDS semantics (Thm 4.1) ===")
    dcds = encode(tm, word)
    trace = simulate(dcds, steps=len(direct) + 1,
                     oracle=DeterministicOracle())
    for instance, label in trace:
        decoded = decode_configuration(instance)
        flag = " [halted]" if has_halted(instance) else ""
        print(f"  {decoded.rendered()}{flag}")

    agree = all(
        decoded.state == expected.state
        and decoded.trimmed_tape() == expected.trimmed_tape()
        for expected, (instance, _) in zip(direct, trace)
        for decoded in [decode_configuration(instance)])
    print(f"\nconfiguration-for-configuration agreement: {agree}")


def check_safety_property() -> None:
    print("\n=== G ¬halted on finite explorations ===")
    pool = [Fresh(100 + i) for i in range(4)]

    halting = encode(binary_flipper_machine(), "0")
    ts = explore_concrete(halting, pool, depth=8, max_states=4000)
    print(f"flipper ('0'): G ~halted = "
          f"{check(ts, safety_property_not_halted())}  (machine halts)")

    looper = encode(looper_machine(), "")
    ts2 = explore_concrete(looper, pool, depth=8, max_states=4000)
    print(f"looper:        G ~halted = "
          f"{check(ts2, safety_property_not_halted())}  (machine loops)")

    print("\nThis equivalence — TM halts iff the DCDS violates G ¬halted —")
    print("is why DCDS verification is undecidable in general (Thm 4.1),")
    print("why run-boundedness is undecidable (Thm 4.6), and why")
    print("state-boundedness is undecidable (Thm 5.5).")


def main() -> None:
    run_machine_in_dcds()
    check_safety_property()


if __name__ == "__main__":
    main()
