"""Deterministic vs. nondeterministic services: the paper's core contrast.

Walks Examples 4.1–4.3 and 5.2 through both semantics:

* Example 4.1/4.2 (weakly acyclic): finite abstractions, Figures 3(b)/2(b);
* Example 4.3 deterministic: run-unbounded, the abstraction diverges
  (Figure 4) — we print the growth trace;
* Example 4.3 nondeterministic: state-bounded, RCYCL terminates and its
  isomorphism quotient is exactly Figure 7(b);
* Example 5.2: state-unbounded, RCYCL itself diverges (Figure 6) — we print
  the growing state sizes.

Run: python examples/deterministic_vs_nondeterministic.py
"""

from repro import AbstractionDiverged
from repro.analysis import (
    dataflow_graph, dependency_graph, probe_run_bounded,
    probe_state_bounded)
from repro.core import ServiceSemantics
from repro.gallery import example_41, example_42, example_43, example_52
from repro.semantics import (
    build_det_abstraction, det_growth_trace, isomorphism_quotient, rcycl,
    state_size_trace)


def deterministic_bounded() -> None:
    print("=== Example 4.1 (deterministic, weakly acyclic) ===")
    dcds = example_41()
    print(dependency_graph(dcds).describe())
    ts = build_det_abstraction(dcds)
    levels = [len(level) for level in ts.depth_levels()]
    print(f"abstract TS: {len(ts)} states, levels {levels} "
          f"(Figure 3(b): 10 states as 1/5/4)")

    print("\n=== Example 4.2 (equality constraint pins f(a) = a) ===")
    ts2 = build_det_abstraction(example_42())
    print(f"abstract TS: {len(ts2)} states (Figure 2(b): 4 states)")
    print(ts2.pretty())


def deterministic_unbounded() -> None:
    print("\n=== Example 4.3 (deterministic): run-unbounded ===")
    dcds = example_43()
    print(dependency_graph(dcds).describe())
    trace = det_growth_trace(dcds, max_depth=8)
    print(f"new abstract states per level: {trace} — no convergence "
          f"(Figure 4)")
    probe = probe_run_bounded(dcds, max_states=300)
    print(f"boundedness probe: {probe!r}")
    try:
        build_det_abstraction(dcds, max_states=300)
    except AbstractionDiverged as diverged:
        print(f"fuse tripped as expected: {diverged}")


def nondeterministic_bounded() -> None:
    print("\n=== Example 4.3 (nondeterministic): state-bounded ===")
    dcds = example_43(ServiceSemantics.NONDETERMINISTIC)
    graph = dataflow_graph(dcds)
    print(f"GR-acyclic: {graph.is_gr_acyclic()} (Example 5.1: True)")
    ts = rcycl(dcds)
    print(f"RCYCL pruning: {ts.stats()}")
    quotient, _ = isomorphism_quotient(ts, fixed={"a"})
    print(f"isomorphism quotient: {len(quotient)} states "
          f"(Figure 7(b): 4 states)")
    print(quotient.pretty())


def nondeterministic_unbounded() -> None:
    print("\n=== Example 5.2 (nondeterministic): state-unbounded ===")
    dcds = example_52()
    graph = dataflow_graph(dcds)
    print(f"GR-acyclic: {graph.is_gr_acyclic()}  "
          f"GR+-acyclic: {graph.is_gr_plus_acyclic()} (both False)")
    sizes = state_size_trace(dcds, max_states=150)
    print(f"max active-domain size per BFS level: {sizes} — values "
          f"accumulate (Figure 6)")
    probe = probe_state_bounded(dcds, max_states=150)
    print(f"boundedness probe: {probe!r}")


def main() -> None:
    deterministic_bounded()
    deterministic_unbounded()
    nondeterministic_bounded()
    nondeterministic_unbounded()


if __name__ == "__main__":
    main()
