"""Quickstart: specify a DCDS, abstract it, verify temporal properties.

This walks through the full pipeline of the paper on Example 4.1:

1. write the data layer (schema + initial instance) and process layer
   (services, actions with conditional effects, condition-action rules);
2. check the static sufficient condition (weak acyclicity, Theorem 4.8);
3. build the finite abstract transition system (Theorem 4.3);
4. model-check µLA/µLP properties against it (Theorem 4.4).

Run: python examples/quickstart.py
"""

from repro import DCDSBuilder, parse_mu, verify
from repro.analysis import dependency_graph
from repro.semantics import build_det_abstraction


def build_example() -> "DCDS":
    """Example 4.1 of the paper, written in the builder syntax."""
    builder = DCDSBuilder(name="quickstart", constants={"a"})
    builder.schema("P/1", "Q/2", "R/1")
    builder.initial("P(a), Q(a, a)")
    builder.service("f/1")
    builder.service("g/1")
    builder.action("alpha",
                   "Q(a, a) & P(x) ~> R(x)",        # e1: select and filter
                   "P(x) ~> P(x), Q(f(x), g(x))")   # e2: copy + service calls
    builder.rule("true", "alpha")
    return builder.build()


def main() -> None:
    dcds = build_example()
    print("=== specification ===")
    print(dcds.describe())

    print("\n=== static analysis (Theorem 4.8 precondition) ===")
    graph = dependency_graph(dcds)
    print(graph.describe())

    print("\n=== abstract transition system (Theorem 4.3) ===")
    ts = build_det_abstraction(dcds)
    print(ts.pretty())

    print("\n=== verification ===")
    properties = {
        "R(a) is reachable":
            "mu Z. (R('a') | <-> Z)",
        "P(a) holds forever on every path":
            "nu X. (P('a') & [-] X)",
        "some live value is always in P":
            "nu X. ((E x. live(x) & P(x)) & [-] X)",
        "Q(a,a) can be preserved forever on some path":
            "nu X. (Q('a', 'a') & (<-> X | [-] false))",
    }
    for label, text in properties.items():
        report = verify(dcds, parse_mu(text))
        verdict = "holds" if report.holds else "FAILS"
        print(f"  [{verdict:5s}] {label}")
        print(f"          {text}")
        print(f"          fragment={report.fragment.value}, "
              f"route={report.route}, |Theta|="
              f"{report.abstraction_stats['states']}")


if __name__ == "__main__":
    main()
