"""Values and terms of the DCDS framework.

The countably infinite domain ``C`` of the paper is modeled as: arbitrary
hashable Python scalars supplied by the user (strings, ints, ...) plus the
reserved, lazily minted :class:`Fresh` values used by the abstraction
algorithms as canonical representatives of "some value never seen before".

Terms (things that may appear inside queries, effect heads, and rules):

* plain values — interpreted as themselves (constants);
* :class:`Var` — first-order variables;
* :class:`Param` — action parameters (distinguished from variables so an
  effect specification can tell which of its terms are bound by the
  condition-action rule);
* :class:`ServiceCall` — Skolem terms ``f(t1, ..., tn)`` representing calls to
  external services. A service call whose arguments are all values is *ground*
  and denotes an actual invocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Tuple


@dataclass(frozen=True, order=True)
class Fresh:
    """A canonical fresh value, distinct from every user constant.

    ``Fresh(i)`` renders as ``#i``. The abstraction algorithms always mint the
    smallest unused index, which keeps canonical forms deterministic.
    """

    index: int

    def __repr__(self) -> str:
        return f"#{self.index}"


@dataclass(frozen=True, order=True)
class Var:
    """A first-order variable."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class Param:
    """An action parameter placeholder."""

    name: str

    def __repr__(self) -> str:
        return f"${self.name}"


class ServiceCall:
    """A Skolem term ``f(t1, ..., tn)`` standing for an external service call.

    Immutable by convention. Service calls are dict keys on every hot path
    (call maps, evaluations, commitment enumeration) and sort keys via their
    repr, so both the hash and the repr are cached.
    """

    __slots__ = ("function", "args", "_hash", "_repr")

    def __init__(self, function: str, args: Tuple[Any, ...]):
        self.function = function
        self.args = args
        self._hash = None
        self._repr = None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ServiceCall):
            return NotImplemented
        return self.function == other.function and self.args == other.args

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.function, self.args))
        return self._hash

    def __repr__(self) -> str:
        if self._repr is None:
            rendered = ", ".join(repr(arg) for arg in self.args)
            self._repr = f"{self.function}({rendered})"
        return self._repr

    def __reduce__(self):
        # Pickle only the identity, never the cached hash: str hashes are
        # per-process (PYTHONHASHSEED), so a cached hash carried across a
        # process boundary would disagree with hashes computed in the
        # receiving process and silently corrupt dict/set lookups. The
        # parallel exploration workers round-trip calls on every batch.
        return ServiceCall, (self.function, self.args)

    @property
    def arity(self) -> int:
        return len(self.args)

    def is_ground(self) -> bool:
        """True when every argument is a value (no Var/Param/nested call)."""
        return all(not isinstance(arg, (Var, Param, ServiceCall))
                   for arg in self.args)

    def substitute(self, substitution: Mapping[Any, Any]) -> "ServiceCall":
        """Apply a substitution to the arguments."""
        return ServiceCall(
            self.function,
            tuple(substitute_term(arg, substitution) for arg in self.args))


Term = Any  # value | Var | Param | ServiceCall


def is_value(term: Term) -> bool:
    """True for constants/values (anything that is not a symbolic term)."""
    return not isinstance(term, (Var, Param, ServiceCall))


def substitute_term(term: Term, substitution: Mapping[Any, Any]) -> Term:
    """Apply ``substitution`` (over Vars/Params) to a term.

    Values map to themselves; service calls substitute recursively. Unbound
    variables and parameters are left in place, which lets callers substitute
    in stages (parameters first, then query answers).
    """
    if isinstance(term, (Var, Param)):
        return substitution.get(term, term)
    if isinstance(term, ServiceCall):
        return term.substitute(substitution)
    return term


def term_variables(term: Term) -> Iterator[Var]:
    """Yield the variables occurring in a term (with duplicates)."""
    if isinstance(term, Var):
        yield term
    elif isinstance(term, ServiceCall):
        for arg in term.args:
            yield from term_variables(arg)


def term_parameters(term: Term) -> Iterator[Param]:
    """Yield the parameters occurring in a term (with duplicates)."""
    if isinstance(term, Param):
        yield term
    elif isinstance(term, ServiceCall):
        for arg in term.args:
            yield from term_parameters(arg)


def term_values(term: Term) -> Iterator[Any]:
    """Yield the constant values occurring in a term (with duplicates)."""
    if isinstance(term, ServiceCall):
        for arg in term.args:
            yield from term_values(arg)
    elif is_value(term):
        yield term


def term_service_calls(term: Term) -> Iterator[ServiceCall]:
    """Yield service-call subterms (outermost first)."""
    if isinstance(term, ServiceCall):
        yield term
        for arg in term.args:
            yield from term_service_calls(arg)
