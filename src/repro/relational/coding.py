"""Integer coding of ground terms and instances — the encoding layer.

The exploration hot path grounds condition-action rules over relational
instances millions of times; doing that over Python object graphs pays for
recursive ``hash``/``==`` on every comparison. This module gives each ground
term (value or ground service call) a dense integer *code* in an append-only
:class:`TermTable`, and represents an instance as a :class:`CodedInstance`:
per-relation sorted arrays of int tuples. Equality, joins, and substitution
become integer comparisons and dict lookups over small ints.

The coding is a per-process acceleration structure, never part of the
semantics: :mod:`repro.relational.kernel` decodes back to the very same
:class:`~repro.relational.instance.Fact`/``Instance`` values at every
boundary, and the wire codec (:mod:`repro.engine.wire`) ships codes between
processes only together with definitions for any code the receiver may not
know (codes themselves are process-local).

Code assignment follows Python equality: terms that compare equal (e.g.
``1`` and ``True``) share a code, exactly as they collapse inside a
``frozenset`` of facts.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.relational.values import ServiceCall, is_value
from repro.utils import value_sort_key

#: Register value for "unbound" in compiled plans (codes are always >= 0).
UNBOUND = -1


class TermTable:
    """Append-only interning of ground terms to dense int codes.

    A *term* is a constant value or a ground :class:`ServiceCall`. Codes are
    assigned in first-intern order and never change; the table also caches
    each code's :func:`~repro.utils.value_sort_key` so deterministic
    orderings never recompute sort keys for interned terms.

    ``snapshot()`` lists the payload of every code in order; replaying a
    snapshot into a table that was built by the same deterministic
    constructor sequence reproduces the exact same code assignment — the
    wire codec's cross-process contract (see :mod:`repro.engine.wire`).
    """

    __slots__ = ("_codes", "_terms", "_is_call", "_sort_keys")

    def __init__(self) -> None:
        self._codes: Dict[Any, int] = {}
        self._terms: List[Any] = []
        self._is_call: List[bool] = []
        self._sort_keys: List[Optional[tuple]] = []

    def __len__(self) -> int:
        return len(self._terms)

    def code(self, term: Any) -> int:
        """The code of ``term``, interning it on first sight."""
        found = self._codes.get(term)
        if found is not None:
            return found
        code = len(self._terms)
        self._codes[term] = code
        self._terms.append(term)
        self._is_call.append(isinstance(term, ServiceCall))
        self._sort_keys.append(None)
        return code

    def get(self, term: Any) -> Optional[int]:
        """The code of ``term`` if already interned, else ``None``."""
        return self._codes.get(term)

    def term(self, code: int) -> Any:
        return self._terms[code]

    def is_call(self, code: int) -> bool:
        return self._is_call[code]

    def sort_key(self, code: int) -> tuple:
        """``value_sort_key`` of the coded term (computed once per code)."""
        key = self._sort_keys[code]
        if key is None:
            key = value_sort_key(self._terms[code])
            self._sort_keys[code] = key
        return key

    def codes(self, terms: Iterable[Any]) -> Tuple[int, ...]:
        return tuple(self.code(term) for term in terms)

    def snapshot(self) -> List[Any]:
        """Payloads of every code, in code order (for cross-process replay).

        Values are shipped as themselves; ground service calls as
        ``("call", function, arg_codes)`` so the payload references earlier
        codes instead of re-pickling argument values.
        """
        payloads: List[Any] = []
        for code, term in enumerate(self._terms):
            if self._is_call[code]:
                payloads.append(
                    ("call", term.function,
                     tuple(self._codes[arg] for arg in term.args)))
            else:
                payloads.append(("value", term))
        return payloads

    def replay(self, payloads: List[Any]) -> None:
        """Intern snapshot ``payloads`` in order, asserting code alignment.

        Safe to call on a table that already holds a prefix of the snapshot
        (the deterministic-constructor prefix); raises if any payload lands
        on a different code than it had in the source table.
        """
        for expected, payload in enumerate(payloads):
            kind, *rest = payload
            if kind == "call":
                function, arg_codes = rest
                term = ServiceCall(
                    function, tuple(self._terms[arg] for arg in arg_codes))
            else:
                term = rest[0]
            code = self.code(term)
            if code != expected:
                raise ValueError(
                    f"snapshot replay misaligned: payload {payload!r} "
                    f"interned as {code}, expected {expected}")


_EMPTY: Tuple[Tuple[int, ...], ...] = ()

#: A coded fact: ``(relation_code, term_codes)``.
CodedFact = Tuple[int, Tuple[int, ...]]


class CodedInstance:
    """An instance as per-relation sorted arrays of int tuples.

    Built once per (immutable) :class:`~repro.relational.instance.Instance`
    and cached by the kernel; per-position indexes and the coded active
    domain are derived lazily, mirroring ``Instance.index``/``active_domain``
    but over small ints.
    """

    __slots__ = ("by_relation", "_indexes", "_adom", "_domains", "_fact_set",
                 "_sets", "_columns", "_vector")

    def __init__(self, by_relation: Dict[int, Tuple[Tuple[int, ...], ...]]):
        # Tuples sorted per relation: deterministic iteration for any
        # consumer, independent of build order.
        self.by_relation = {relation: tuple(sorted(tuples))
                            for relation, tuples in by_relation.items()}
        self._indexes: Optional[dict] = None
        self._adom: Optional[FrozenSet[int]] = None
        #: Per-(plan, extra-codes) evaluation-domain cache, mirroring
        #: ``fol.evaluation._domain_cached`` (see CompiledQuery.domain).
        self._domains: dict = {}
        self._fact_set: Optional[FrozenSet[CodedFact]] = None
        self._sets: Optional[dict] = None
        # Columnar mirrors of by_relation for the vector backend. Both
        # derive from the (immutable) sorted tuple arrays above, so like
        # the per-position indexes they never need invalidating once
        # materialized — a fresh CodedInstance is built per instance.
        self._columns: Optional[dict] = None
        self._vector: Optional[dict] = None

    @classmethod
    def from_coded_facts(cls, facts: Iterable[CodedFact]) -> "CodedInstance":
        grouped: Dict[int, list] = {}
        for relation, terms in facts:
            grouped.setdefault(relation, []).append(terms)
        return cls({relation: tuple(tuples)
                    for relation, tuples in grouped.items()})

    def nbytes(self) -> int:
        """Approximate resident size of the coded tuple arrays.

        Used by the memory-budget accounting of the paged state store:
        per-tuple CPython overhead (tuple header + per-slot pointer +
        small-int object) dominates, so the estimate is structural — it
        deliberately ignores the lazily materialized indexes/columns,
        which the budget accounts for at their own caches.
        """
        total = 64
        for tuples in self.by_relation.values():
            total += 64
            for terms in tuples:
                total += 56 + 32 * len(terms)
        return total

    def tuples(self, relation: int) -> Tuple[Tuple[int, ...], ...]:
        return self.by_relation.get(relation, _EMPTY)

    def index(self, relation: int, position: int
              ) -> Dict[int, Tuple[Tuple[int, ...], ...]]:
        """Tuples of ``relation`` grouped by the code at ``position``."""
        if self._indexes is None:
            self._indexes = {}
        key = (relation, position)
        found = self._indexes.get(key)
        if found is None:
            grouped: Dict[int, list] = {}
            for terms in self.by_relation.get(relation, _EMPTY):
                grouped.setdefault(terms[position], []).append(terms)
            found = {code: tuple(tuples) for code, tuples in grouped.items()}
            self._indexes[key] = found
        return found

    def has(self, relation: int, terms: Tuple[int, ...]) -> bool:
        """Membership test with a lazy per-relation set (closed-atom checks)."""
        if self._sets is None:
            self._sets = {}
        found = self._sets.get(relation)
        if found is None:
            found = set(self.by_relation.get(relation, _EMPTY))
            self._sets[relation] = found
        return terms in found

    def adom_codes(self, table: TermTable) -> FrozenSet[int]:
        """Coded ``ADOM``: value codes occurring in the instance.

        Ground-service-call terms contribute their (already coded) value
        arguments, not themselves — the coded mirror of
        ``Instance.active_domain``.
        """
        if self._adom is None:
            values = set()
            for tuples in self.by_relation.values():
                for terms in tuples:
                    for code in terms:
                        if table.is_call(code):
                            call = table.term(code)
                            values.update(
                                table.code(arg) for arg in call.args
                                if is_value(arg))
                        else:
                            values.add(code)
            self._adom = frozenset(values)
        return self._adom

    def fact_set(self) -> FrozenSet[CodedFact]:
        """The instance as a frozenset of coded facts (interning key)."""
        if self._fact_set is None:
            self._fact_set = frozenset(
                (relation, terms)
                for relation, tuples in self.by_relation.items()
                for terms in tuples)
        return self._fact_set

    def domain_cache(self) -> dict:
        return self._domains

    def columns(self, relation: int):
        """The relation's tuples as one contiguous ``(n, arity)`` int64
        numpy array (lazily materialized; rows follow the sorted
        ``by_relation`` order, so row ``i`` is ``tuples(relation)[i]``).

        Returns ``None`` when the relation is empty — the arity is not
        recorded for absent relations, and every consumer short-circuits
        on the empty case anyway. Requires numpy (the caller gates on
        :func:`repro.relational.vector.vector_enabled`).
        """
        if self._columns is None:
            self._columns = {}
        found = self._columns.get(relation)
        if found is None:
            tuples = self.by_relation.get(relation, _EMPTY)
            if not tuples:
                return None
            from repro.relational.vector import require_numpy

            np = require_numpy()
            found = np.array(tuples, dtype=np.int64)
            self._columns[relation] = found
        return found

    def vector_cache(self) -> dict:
        """Per-(plan-node, instance) scratch of the vector backend
        (filtered atom columns and the like), mirroring ``domain_cache``."""
        if self._vector is None:
            self._vector = {}
        return self._vector


# ---------------------------------------------------------------------------
# Canonical labeling over coded facts (the symmetry layer's kernel primitive)
# ---------------------------------------------------------------------------

def _rank_colors(keys: Dict[int, tuple]) -> Dict[int, int]:
    """Compress comparable colour keys to dense ranks (order-preserving)."""
    distinct = sorted(set(keys.values()))
    position = {key: index for index, key in enumerate(distinct)}
    return {code: position[key] for code, key in keys.items()}


def _partition_of(coloring: Dict[int, int]) -> frozenset:
    groups: Dict[int, List[int]] = {}
    for code, color in coloring.items():
        groups.setdefault(color, []).append(code)
    return frozenset(frozenset(members) for members in groups.values())


def coded_canonical_order(
    facts: Iterable[Tuple[tuple, Tuple[int, ...]]],
    movable: Iterable[int],
    sort_key,
) -> Tuple[int, ...]:
    """Canonical ordering of ``movable`` codes by individualization-refinement.

    ``facts`` is a sequence of ``(rel_key, term_codes)`` where every term
    code is either in ``movable`` or *fixed* and ``rel_key`` is an
    isomorphism-invariant, mutually comparable identity (tuples of strings).
    ``sort_key`` maps a code to an invariant total-order key (the
    :meth:`TermTable.sort_key` of its term).

    Returns the ordering of ``movable`` such that renaming ``movable[i]`` to
    canonical rank ``i`` lexicographically minimizes the rendered sorted
    fact list over all leaves of the search — the integer-coded twin of
    :func:`repro.relational.isomorphism.canonical_form`: two coded fact
    structures related by a bijection of their movable codes produce
    renamings with equal images. Everything the search compares (base
    colours, refinement contexts, leaf keys) derives from sort keys and
    invariant colour ranks, never raw code numbers — so two processes whose
    term tables assign different codes to the same values still agree on
    the canonical order of the same state (the wire-level class-identity
    contract of :mod:`repro.engine.wire`).
    """
    facts = tuple(facts)
    movable = tuple(movable)
    if not movable:
        return ()
    movable_set = set(movable)
    all_codes = set(movable)
    for _, codes in facts:
        all_codes.update(codes)

    base = _rank_colors({
        code: ((1,) if code in movable_set else (0, sort_key(code)))
        for code in all_codes})

    def refine(coloring: Dict[int, int]) -> Dict[int, int]:
        """Colour refinement (1-WL on the coded fact hypergraph)."""
        current = coloring
        while True:
            contexts: Dict[int, List[tuple]] = {code: [] for code in all_codes}
            for rel_key, codes in facts:
                term_colors = tuple(current[c] for c in codes)
                for position, c in enumerate(codes):
                    contexts[c].append((rel_key, position, term_colors))
            refined = _rank_colors({
                code: (current[code], tuple(sorted(contexts[code])))
                for code in all_codes})
            if _partition_of(refined) == _partition_of(current):
                return current
            current = refined

    best_key: List[Optional[tuple]] = [None]
    best_order: List[Tuple[int, ...]] = [movable]

    def leaf(order: List[int]) -> None:
        position_of = {code: index for index, code in enumerate(order)}

        def render(code: int) -> tuple:
            position = position_of.get(code)
            if position is not None:
                return (1, position)
            return (0, sort_key(code))

        key = tuple(sorted(
            (rel_key, tuple(render(c) for c in codes))
            for rel_key, codes in facts))
        if best_key[0] is None or key < best_key[0]:
            best_key[0] = key
            best_order[0] = tuple(order)

    def search(coloring: Dict[int, int], order: List[int],
               assigned: set) -> None:
        refined = refine(coloring)
        unassigned = [code for code in movable if code not in assigned]
        if not unassigned:
            leaf(order)
            return
        groups: Dict[int, List[int]] = {}
        for code in unassigned:
            groups.setdefault(refined[code], []).append(code)
        cell = groups[min(groups)]
        for chosen in sorted(cell, key=sort_key):
            next_coloring = dict(refined)
            # Individualize with a colour no rank can collide with
            # (ranks are >= 0); re-ranked invariantly on the next refine.
            next_coloring[chosen] = -(len(order) + 1)
            assigned.add(chosen)
            search(next_coloring, order + [chosen], assigned)
            assigned.discard(chosen)

    search(base, [], set())
    return best_order[0]
