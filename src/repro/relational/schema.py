"""Relational schemas.

A :class:`RelationSchema` is a named relation with a fixed arity and optional
attribute names; a :class:`DatabaseSchema` is a finite set of relation
schemas, as in Section 2.1 of the paper (``R = {R1, ..., Rn}``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.errors import SchemaError


@dataclass(frozen=True)
class RelationSchema:
    """A relation name with arity and (optional) attribute names."""

    name: str
    arity: int
    attributes: Tuple[str, ...] = ()

    def __post_init__(self):
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        if self.arity < 0:
            raise SchemaError(f"negative arity for relation {self.name!r}")
        if self.attributes and len(self.attributes) != self.arity:
            raise SchemaError(
                f"relation {self.name!r} declares {len(self.attributes)} "
                f"attribute names but arity {self.arity}")

    def __repr__(self) -> str:
        return f"{self.name}/{self.arity}"

    def attribute_index(self, attribute: str) -> int:
        """Position of a named attribute (0-based)."""
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}") from None


@dataclass(frozen=True)
class DatabaseSchema:
    """A finite set of relation schemas, indexed by name."""

    relations: Tuple[RelationSchema, ...]
    _by_name: Dict[str, RelationSchema] = field(
        default=None, compare=False, repr=False, hash=False)

    def __post_init__(self):
        by_name: Dict[str, RelationSchema] = {}
        for relation in self.relations:
            if relation.name in by_name:
                raise SchemaError(f"duplicate relation {relation.name!r}")
            by_name[relation.name] = relation
        object.__setattr__(self, "_by_name", by_name)

    @classmethod
    def of(cls, *specs) -> "DatabaseSchema":
        """Build a schema from ``RelationSchema`` objects or ``"Name/arity"`` strings.

        >>> DatabaseSchema.of("R/1", "Q/2")
        DatabaseSchema(R/1, Q/2)
        """
        relations = []
        for spec in specs:
            if isinstance(spec, RelationSchema):
                relations.append(spec)
            elif isinstance(spec, str):
                relations.append(parse_relation_spec(spec))
            elif isinstance(spec, tuple) and len(spec) == 2:
                relations.append(RelationSchema(spec[0], spec[1]))
            else:
                raise SchemaError(f"cannot interpret relation spec {spec!r}")
        return cls(tuple(relations))

    def __repr__(self) -> str:
        inner = ", ".join(repr(relation) for relation in self.relations)
        return f"DatabaseSchema({inner})"

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self.relations)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self.relations)

    def relation(self, name: str) -> RelationSchema:
        """Look up a relation schema by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def arity(self, name: str) -> int:
        return self.relation(name).arity

    def names(self) -> Tuple[str, ...]:
        return tuple(relation.name for relation in self.relations)

    def extend(self, *specs) -> "DatabaseSchema":
        """A new schema with additional relations (used by the reductions)."""
        added = DatabaseSchema.of(*specs)
        return DatabaseSchema(self.relations + added.relations)

    def restrict(self, names: Iterable[str]) -> "DatabaseSchema":
        """A new schema containing only the named relations."""
        wanted = set(names)
        missing = wanted - set(self.names())
        if missing:
            raise SchemaError(f"unknown relations {sorted(missing)}")
        return DatabaseSchema(tuple(
            relation for relation in self.relations if relation.name in wanted))


def parse_relation_spec(spec: str) -> RelationSchema:
    """Parse ``"Name/arity"`` or ``"Name(attr1, attr2)"`` into a schema."""
    spec = spec.strip()
    if "/" in spec:
        name, _, arity_text = spec.partition("/")
        try:
            arity = int(arity_text)
        except ValueError:
            raise SchemaError(f"bad arity in relation spec {spec!r}") from None
        return RelationSchema(name.strip(), arity)
    if "(" in spec and spec.endswith(")"):
        name, _, rest = spec.partition("(")
        attributes = tuple(
            attr.strip() for attr in rest[:-1].split(",") if attr.strip())
        return RelationSchema(name.strip(), len(attributes), attributes)
    raise SchemaError(f"cannot parse relation spec {spec!r}")
