"""Relational substrate: values, schemas, facts, instances, isomorphism."""

from repro.relational.instance import Fact, Instance, fact
from repro.relational.isomorphism import (
    are_isomorphic, canonical_form, canonical_key, find_isomorphism,
    iter_isomorphisms)
from repro.relational.schema import (
    DatabaseSchema, RelationSchema, parse_relation_spec)
from repro.relational.values import (
    Fresh, Param, ServiceCall, Var, is_value, substitute_term,
    term_parameters, term_service_calls, term_values, term_variables)

__all__ = [
    "DatabaseSchema", "Fact", "Fresh", "Instance", "Param", "RelationSchema",
    "ServiceCall", "Var", "are_isomorphic", "canonical_form", "canonical_key",
    "fact", "find_isomorphism", "is_value", "iter_isomorphisms",
    "parse_relation_spec", "substitute_term", "term_parameters",
    "term_service_calls", "term_values", "term_variables",
]
