"""Relational substrate: values, schemas, facts, instances, isomorphism —
plus the integer-coded encoding layer (term tables, coded instances, the
per-DCDS kernel) the exploration hot path runs on."""

from repro.relational.coding import CodedInstance, TermTable
from repro.relational.instance import Fact, Instance, fact
from repro.relational.isomorphism import (
    are_isomorphic, canonical_form, canonical_key, find_isomorphism,
    iter_isomorphisms)
from repro.relational.schema import (
    DatabaseSchema, RelationSchema, parse_relation_spec)
from repro.relational.values import (
    Fresh, Param, ServiceCall, Var, is_value, substitute_term,
    term_parameters, term_service_calls, term_values, term_variables)

__all__ = [
    "CodedInstance", "DatabaseSchema", "Fact", "Fresh", "Instance", "Param",
    "RelationSchema", "RelationalKernel", "ServiceCall", "TermTable", "Var",
    "are_isomorphic", "canonical_form", "canonical_key",
    "clear_kernel_caches", "fact", "find_isomorphism", "is_value",
    "iter_isomorphisms", "kernel_for", "parse_relation_spec",
    "substitute_term", "term_parameters", "term_service_calls",
    "term_values", "term_variables",
]

_KERNEL_EXPORTS = ("RelationalKernel", "clear_kernel_caches", "kernel_for")


def __getattr__(name):
    # Lazy: the kernel compiles formulas (repro.fol), and repro.fol's AST
    # imports this package's values module — an eager import here would be
    # circular.
    if name in _KERNEL_EXPORTS:
        from repro.relational import kernel

        return getattr(kernel, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
