"""Database instances: immutable sets of ground facts.

An :class:`Instance` is the paper's database instance ``I``: a finite set of
facts over a schema, with the active domain ``ADOM(I)`` (Section 2.1). Facts
may contain unevaluated ground service calls during intermediate stages of
action execution (the result of ``DO()`` before the call map is applied);
:meth:`Instance.is_concrete` distinguishes fully evaluated instances.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, Iterator, Mapping, Tuple

from repro.errors import InstanceError
from repro.relational.schema import DatabaseSchema
from repro.relational.values import (
    ServiceCall, is_value, substitute_term, term_service_calls)
from repro.utils import sorted_values, value_sort_key


class Fact:
    """A ground fact ``R(t1, ..., tn)``; terms are values or ground calls.

    Immutable by convention; the hash and sort key are cached because facts
    are hashed millions of times during state-space exploration (frozenset
    membership, interning, canonical labeling).
    """

    __slots__ = ("relation", "terms", "_hash", "_sort_key", "_concrete")

    def __init__(self, relation: str, terms: Tuple[Any, ...]):
        self.relation = relation
        self.terms = terms
        self._hash = None
        self._sort_key = None
        self._concrete = None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fact):
            return NotImplemented
        return self.relation == other.relation and self.terms == other.terms

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.relation, self.terms))
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(repr(term) for term in self.terms)
        return f"{self.relation}({inner})"

    @property
    def arity(self) -> int:
        return len(self.terms)

    def is_concrete(self) -> bool:
        """True when no term is an (unevaluated) service call."""
        if self._concrete is None:
            self._concrete = all(
                not isinstance(term, ServiceCall) for term in self.terms)
        return self._concrete

    def service_calls(self) -> Iterator[ServiceCall]:
        for term in self.terms:
            yield from term_service_calls(term)

    def apply(self, mapping: Mapping[Any, Any]) -> "Fact":
        """Replace terms (typically service calls) according to ``mapping``."""
        return Fact(self.relation,
                    tuple(mapping.get(term, term) for term in self.terms))

    def rename(self, renaming: Mapping[Any, Any]) -> "Fact":
        """Rename *values* according to ``renaming`` (identity elsewhere)."""
        return Fact(self.relation, tuple(
            renaming.get(term, term) if is_value(term) else
            term.substitute(renaming) if isinstance(term, ServiceCall) else term
            for term in self.terms))

    def sort_key(self) -> tuple:
        if self._sort_key is None:
            self._sort_key = (
                self.relation, tuple(value_sort_key(t) for t in self.terms))
        return self._sort_key

    def __reduce__(self):
        # Identity only — cached hashes are per-process (see
        # ServiceCall.__reduce__) and the other caches are cheap to rebuild.
        return Fact, (self.relation, self.terms)


def fact(relation: str, *terms: Any) -> Fact:
    """Convenience constructor: ``fact("R", "a", 1)`` = ``R(a, 1)``."""
    return Fact(relation, tuple(terms))


def _rebuild_instance(facts: Tuple[Fact, ...]) -> "Instance":
    """Unpickling target of :meth:`Instance.__reduce__`."""
    return Instance._trusted(frozenset(facts))


_EMPTY_TUPLES: FrozenSet[Tuple[Any, ...]] = frozenset()


class Instance:
    """An immutable database instance (a frozen set of facts).

    Supports set operations, schema validation, active-domain computation, and
    value renaming. Hashable, so instances can be transition-system states.
    """

    __slots__ = ("_facts", "_adom", "_hash", "_by_relation", "_indexes",
                 "_sorted", "_calls", "_schema_ok")

    def __init__(self, facts: Iterable[Fact] = ()):
        normalized = []
        for item in facts:
            if isinstance(item, Fact):
                normalized.append(item)
            elif isinstance(item, tuple) and len(item) == 2:
                normalized.append(Fact(item[0], tuple(item[1])))
            else:
                raise InstanceError(f"cannot interpret fact {item!r}")
        self._facts: FrozenSet[Fact] = frozenset(normalized)
        self._reset_caches()

    def _reset_caches(self) -> None:
        # Derived views are built lazily and cached forever: instances are
        # immutable, so construction is the only "invalidation" point.
        self._adom = None
        self._hash = None
        self._by_relation = None
        self._indexes = None
        self._sorted = None
        self._calls = None
        self._schema_ok = None

    # -- construction helpers -------------------------------------------------

    @classmethod
    def of(cls, *facts_: Fact) -> "Instance":
        return cls(facts_)

    @classmethod
    def empty(cls) -> "Instance":
        return cls(())

    @classmethod
    def _trusted(cls, facts: Iterable[Fact]) -> "Instance":
        """Internal fast path: ``facts`` are known to be :class:`Fact`s."""
        instance = cls.__new__(cls)
        instance._facts = facts if isinstance(facts, frozenset) \
            else frozenset(facts)
        instance._reset_caches()
        return instance

    # -- set behaviour ---------------------------------------------------------

    @property
    def facts(self) -> FrozenSet[Fact]:
        return self._facts

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def __contains__(self, item: Fact) -> bool:
        return item in self._facts

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Instance) and self._facts == other._facts

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._facts)
        return self._hash

    def __or__(self, other: "Instance") -> "Instance":
        return Instance._trusted(self._facts | other._facts)

    def __and__(self, other: "Instance") -> "Instance":
        return Instance._trusted(self._facts & other._facts)

    def __sub__(self, other: "Instance") -> "Instance":
        return Instance._trusted(self._facts - other._facts)

    def __repr__(self) -> str:
        if not self._facts:
            return "{}"
        rendered = ", ".join(
            repr(f) for f in sorted(self._facts, key=Fact.sort_key))
        return "{" + rendered + "}"

    def __reduce__(self):
        # Ship only the fact set; lazy views (adom, indexes, hash) rebuild
        # in the receiving process so hashes use its own PYTHONHASHSEED.
        return _rebuild_instance, (tuple(self._facts),)

    # -- semantics -------------------------------------------------------------

    def active_domain(self) -> FrozenSet[Any]:
        """``ADOM(I)``: the values occurring in the instance.

        Unevaluated service-call terms are *not* values; their constant
        arguments are included (they occur in the instance).
        """
        if self._adom is None:
            values = set()
            for current in self._facts:
                for term in current.terms:
                    if isinstance(term, ServiceCall):
                        values.update(
                            arg for arg in term.args if is_value(arg))
                    elif is_value(term):
                        values.add(term)
            self._adom = frozenset(values)
        return self._adom

    adom = active_domain

    def relations(self) -> FrozenSet[str]:
        return frozenset(self._relation_map())

    def _relation_map(self) -> Dict[str, FrozenSet[Tuple[Any, ...]]]:
        if self._by_relation is None:
            grouped: Dict[str, list] = {}
            for current in self._facts:
                grouped.setdefault(current.relation, []).append(current.terms)
            self._by_relation = {relation: frozenset(tuples)
                                 for relation, tuples in grouped.items()}
        return self._by_relation

    def tuples(self, relation: str) -> FrozenSet[Tuple[Any, ...]]:
        """All tuples of the given relation (cached per instance)."""
        return self._relation_map().get(relation, _EMPTY_TUPLES)

    def index(self, relation: str,
              position: int) -> Dict[Any, Tuple[Tuple[Any, ...], ...]]:
        """Tuples of ``relation`` indexed by the term at ``position``.

        Built lazily per ``(relation, position)`` and cached for the lifetime
        of the (immutable) instance; the FOL evaluator uses these so matching
        a positive atom with one bound term is a dict lookup instead of a
        scan over the whole relation.
        """
        if self._indexes is None:
            self._indexes = {}
        key = (relation, position)
        found = self._indexes.get(key)
        if found is None:
            grouped: Dict[Any, list] = {}
            for terms in self._relation_map().get(relation, ()):
                grouped.setdefault(terms[position], []).append(terms)
            found = {value: tuple(tuples)
                     for value, tuples in grouped.items()}
            self._indexes[key] = found
        return found

    def is_concrete(self) -> bool:
        return all(current.is_concrete() for current in self._facts)

    def service_calls(self) -> FrozenSet[ServiceCall]:
        """``CALLS(I)``: ground service calls occurring in the instance."""
        if self._calls is None:
            calls = set()
            for current in self._facts:
                calls.update(current.service_calls())
            self._calls = frozenset(calls)
        return self._calls

    def conforms_to(self, schema: DatabaseSchema) -> bool:
        """True when every fact uses a declared relation with correct arity."""
        for current in self._facts:
            if current.relation not in schema:
                return False
            if current.arity != schema.arity(current.relation):
                return False
        return True

    def validate(self, schema: DatabaseSchema) -> None:
        """Raise :class:`InstanceError` if the instance violates the schema.

        Successful validation is remembered per schema *object*: interned
        instances are re-added to transition systems across repeated
        constructions, and re-walking the facts each time is pure waste.
        """
        if self._schema_ok is schema:
            return
        for current in self._facts:
            if current.relation not in schema:
                raise InstanceError(
                    f"fact {current!r} uses undeclared relation")
            expected = schema.arity(current.relation)
            if current.arity != expected:
                raise InstanceError(
                    f"fact {current!r} has arity {current.arity}, "
                    f"schema says {expected}")
        self._schema_ok = schema

    # -- transformations ---------------------------------------------------------

    def apply_call_map(self, call_map: Mapping[ServiceCall, Any]) -> "Instance":
        """``M(E)`` of the paper: replace service calls by their results.

        Every service call in the instance must be in the domain of the map;
        otherwise :class:`InstanceError` is raised.
        """
        missing = self.service_calls() - set(call_map)
        if missing:
            raise InstanceError(
                f"unresolved service calls: {sorted_values(missing)}")
        # Concrete facts cannot contain a call: reuse them as-is so their
        # cached hashes survive into the successor instance.
        return Instance._trusted(
            current if current.is_concrete() else current.apply(call_map)
            for current in self._facts)

    def rename(self, renaming: Mapping[Any, Any]) -> "Instance":
        """Rename values (used by canonicalization and isomorphism search)."""
        return Instance._trusted(
            current.rename(renaming) for current in self._facts)

    def restrict(self, relations: Iterable[str]) -> "Instance":
        """Project onto a subset of relations (used by the reductions)."""
        wanted = set(relations)
        return Instance._trusted(current for current in self._facts
                                 if current.relation in wanted)

    def signature(self) -> Dict[str, int]:
        """Relation-name -> tuple-count histogram (isomorphism invariant)."""
        histogram: Dict[str, int] = {}
        for current in self._facts:
            histogram[current.relation] = histogram.get(current.relation, 0) + 1
        return histogram

    def sorted_facts(self) -> list:
        if self._sorted is None:
            self._sorted = sorted(self._facts, key=Fact.sort_key)
        return list(self._sorted)
