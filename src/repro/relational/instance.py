"""Database instances: immutable sets of ground facts.

An :class:`Instance` is the paper's database instance ``I``: a finite set of
facts over a schema, with the active domain ``ADOM(I)`` (Section 2.1). Facts
may contain unevaluated ground service calls during intermediate stages of
action execution (the result of ``DO()`` before the call map is applied);
:meth:`Instance.is_concrete` distinguishes fully evaluated instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, Iterator, Mapping, Tuple

from repro.errors import InstanceError
from repro.relational.schema import DatabaseSchema
from repro.relational.values import (
    ServiceCall, is_value, substitute_term, term_service_calls)
from repro.utils import sorted_values, value_sort_key


@dataclass(frozen=True)
class Fact:
    """A ground fact ``R(t1, ..., tn)``; terms are values or ground calls."""

    relation: str
    terms: Tuple[Any, ...]

    def __repr__(self) -> str:
        inner = ", ".join(repr(term) for term in self.terms)
        return f"{self.relation}({inner})"

    @property
    def arity(self) -> int:
        return len(self.terms)

    def is_concrete(self) -> bool:
        """True when no term is an (unevaluated) service call."""
        return all(not isinstance(term, ServiceCall) for term in self.terms)

    def service_calls(self) -> Iterator[ServiceCall]:
        for term in self.terms:
            yield from term_service_calls(term)

    def apply(self, mapping: Mapping[Any, Any]) -> "Fact":
        """Replace terms (typically service calls) according to ``mapping``."""
        return Fact(self.relation,
                    tuple(mapping.get(term, term) for term in self.terms))

    def rename(self, renaming: Mapping[Any, Any]) -> "Fact":
        """Rename *values* according to ``renaming`` (identity elsewhere)."""
        return Fact(self.relation, tuple(
            renaming.get(term, term) if is_value(term) else
            term.substitute(renaming) if isinstance(term, ServiceCall) else term
            for term in self.terms))

    def sort_key(self) -> tuple:
        return (self.relation, tuple(value_sort_key(t) for t in self.terms))


def fact(relation: str, *terms: Any) -> Fact:
    """Convenience constructor: ``fact("R", "a", 1)`` = ``R(a, 1)``."""
    return Fact(relation, tuple(terms))


class Instance:
    """An immutable database instance (a frozen set of facts).

    Supports set operations, schema validation, active-domain computation, and
    value renaming. Hashable, so instances can be transition-system states.
    """

    __slots__ = ("_facts", "_adom", "_hash")

    def __init__(self, facts: Iterable[Fact] = ()):
        normalized = []
        for item in facts:
            if isinstance(item, Fact):
                normalized.append(item)
            elif isinstance(item, tuple) and len(item) == 2:
                normalized.append(Fact(item[0], tuple(item[1])))
            else:
                raise InstanceError(f"cannot interpret fact {item!r}")
        self._facts: FrozenSet[Fact] = frozenset(normalized)
        self._adom = None
        self._hash = None

    # -- construction helpers -------------------------------------------------

    @classmethod
    def of(cls, *facts_: Fact) -> "Instance":
        return cls(facts_)

    @classmethod
    def empty(cls) -> "Instance":
        return cls(())

    # -- set behaviour ---------------------------------------------------------

    @property
    def facts(self) -> FrozenSet[Fact]:
        return self._facts

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def __contains__(self, item: Fact) -> bool:
        return item in self._facts

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Instance) and self._facts == other._facts

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._facts)
        return self._hash

    def __or__(self, other: "Instance") -> "Instance":
        return Instance(self._facts | other._facts)

    def __and__(self, other: "Instance") -> "Instance":
        return Instance(self._facts & other._facts)

    def __sub__(self, other: "Instance") -> "Instance":
        return Instance(self._facts - other._facts)

    def __repr__(self) -> str:
        if not self._facts:
            return "{}"
        rendered = ", ".join(
            repr(f) for f in sorted(self._facts, key=Fact.sort_key))
        return "{" + rendered + "}"

    # -- semantics -------------------------------------------------------------

    def active_domain(self) -> FrozenSet[Any]:
        """``ADOM(I)``: the values occurring in the instance.

        Unevaluated service-call terms are *not* values; their constant
        arguments are included (they occur in the instance).
        """
        if self._adom is None:
            values = set()
            for current in self._facts:
                for term in current.terms:
                    if isinstance(term, ServiceCall):
                        values.update(
                            arg for arg in term.args if is_value(arg))
                    elif is_value(term):
                        values.add(term)
            self._adom = frozenset(values)
        return self._adom

    adom = active_domain

    def relations(self) -> FrozenSet[str]:
        return frozenset(current.relation for current in self._facts)

    def tuples(self, relation: str) -> FrozenSet[Tuple[Any, ...]]:
        """All tuples of the given relation."""
        return frozenset(current.terms for current in self._facts
                         if current.relation == relation)

    def is_concrete(self) -> bool:
        return all(current.is_concrete() for current in self._facts)

    def service_calls(self) -> FrozenSet[ServiceCall]:
        """``CALLS(I)``: ground service calls occurring in the instance."""
        calls = set()
        for current in self._facts:
            calls.update(current.service_calls())
        return frozenset(calls)

    def conforms_to(self, schema: DatabaseSchema) -> bool:
        """True when every fact uses a declared relation with correct arity."""
        for current in self._facts:
            if current.relation not in schema:
                return False
            if current.arity != schema.arity(current.relation):
                return False
        return True

    def validate(self, schema: DatabaseSchema) -> None:
        """Raise :class:`InstanceError` if the instance violates the schema."""
        for current in self._facts:
            if current.relation not in schema:
                raise InstanceError(
                    f"fact {current!r} uses undeclared relation")
            expected = schema.arity(current.relation)
            if current.arity != expected:
                raise InstanceError(
                    f"fact {current!r} has arity {current.arity}, "
                    f"schema says {expected}")

    # -- transformations ---------------------------------------------------------

    def apply_call_map(self, call_map: Mapping[ServiceCall, Any]) -> "Instance":
        """``M(E)`` of the paper: replace service calls by their results.

        Every service call in the instance must be in the domain of the map;
        otherwise :class:`InstanceError` is raised.
        """
        missing = self.service_calls() - set(call_map)
        if missing:
            raise InstanceError(
                f"unresolved service calls: {sorted_values(missing)}")
        return Instance(current.apply(call_map) for current in self._facts)

    def rename(self, renaming: Mapping[Any, Any]) -> "Instance":
        """Rename values (used by canonicalization and isomorphism search)."""
        return Instance(current.rename(renaming) for current in self._facts)

    def restrict(self, relations: Iterable[str]) -> "Instance":
        """Project onto a subset of relations (used by the reductions)."""
        wanted = set(relations)
        return Instance(current for current in self._facts
                        if current.relation in wanted)

    def signature(self) -> Dict[str, int]:
        """Relation-name -> tuple-count histogram (isomorphism invariant)."""
        histogram: Dict[str, int] = {}
        for current in self._facts:
            histogram[current.relation] = histogram.get(current.relation, 0) + 1
        return histogram

    def sorted_facts(self) -> list:
        return sorted(self._facts, key=Fact.sort_key)
