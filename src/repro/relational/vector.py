"""Vectorized columnar execution of compiled join plans.

:mod:`repro.fol.compile` evaluates a :class:`~repro.fol.compile.
CompiledQuery` tuple-at-a-time: a backtracking join that extends one
register list per candidate tuple. This module executes the *same* compiled
node tree batched: the working set is a ``(rows, n_slots)`` numpy int64
matrix of register rows (``UNBOUND`` = -1), and every node maps a matrix to
the matrix of all its extensions with whole-relation operations — constant
masks, sort-merge semi-joins on slot columns, batched ``_pad`` domain
expansion. The per-relation columns come from
:meth:`~repro.relational.coding.CodedInstance.columns`.

Semantics contract: identical to the interpreted plan *as a set of
bindings* (the documented compiled-query contract — every consumer
deduplicates, sorts, or checks existence), which the differential battery
in ``tests/test_vector.py`` pins against both the interpreted kernel path
and the reference evaluator.

Backend selection is automatic and per call:

* numpy absent (or hidden via ``REPRO_NO_NUMPY=1`` for testing) — the
  interpreted kernel path runs, unchanged;
* ``REPRO_NO_VECTOR=1`` — kill switch, same fallback;
* a row-budget overflow (:data:`MAX_ROWS`) or tiny instances below
  :data:`MIN_TUPLES` — the batched execution would lose to its own
  constant factors, so the caller falls back per evaluation.

Every entry point returns ``None`` to request the interpreted fallback
rather than raising, so callers need no numpy-conditional code.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised via REPRO_NO_NUMPY in tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro import env
from repro.errors import ReproError
from repro.fol.compile import (
    CompiledQuery, _And, _Atom, _Eq, _Exists, _False, _Forall, _Node, _Not,
    _Or, _True)
from repro.relational.coding import UNBOUND, CodedInstance

#: Hard cap on the working-set row count of one evaluation. A blowup past
#: this (cross products of wide domains) would materialize what the
#: interpreted path streams; the evaluation aborts and the caller falls
#: back.
MAX_ROWS = 2_000_000

#: Instances with fewer total tuples than this take the interpreted path:
#: at that size the per-call numpy overhead (array construction, unique,
#: searchsorted) exceeds the whole backtracking join.
MIN_TUPLES = 24

#: Frontier blocks warming fewer distinct instances than this skip the
#: batched pass: stacking/splitting two or three groups costs about as
#: much as the per-state calls it would replace.
MIN_BATCH_GROUPS = 4

#: ... and blocks whose distinct instances stack fewer total tuples than
#: this skip it too: a batched numpy call must bring at least as much
#: work as ``MIN_BATCH_GROUPS`` per-state calls each worth vectorizing,
#: else the per-call constants eat the amortization (thin-instance
#: families like ``chain``/``blowup`` land here and honestly show ~1x).
MIN_BATCH_TUPLES = MIN_TUPLES * MIN_BATCH_GROUPS

#: Adaptive per-plan backoff (see ``binding_matrix``): a vector evaluation
#: counts as a *loss* when its wall time exceeds the interpreted-path
#: estimate ``BACKOFF_NS_PER_TUPLE * (tuples + rows)``; after
#: ``BACKOFF_AFTER`` consecutive losses the plan is pinned to the
#: interpreted backend for the rest of the kernel's life.
BACKOFF_AFTER = 12
BACKOFF_NS_PER_TUPLE = 1200


class VectorUnsupported(ReproError):
    """The evaluation cannot (or should not) run vectorized."""


def numpy_available() -> bool:
    """Numpy importable and not hidden by ``REPRO_NO_NUMPY=1`` (the test
    hook simulating an uninstalled numpy)."""
    return _np is not None and not env.numpy_hidden()


def vector_enabled() -> bool:
    """The vector backend switch, read per call (cheap at per-evaluation
    granularity) so tests can flip ``REPRO_NO_VECTOR`` without worrying
    about kernels cached in the registry."""
    return numpy_available() and not env.vector_disabled()


def require_numpy():
    if _np is None or env.numpy_hidden():
        raise VectorUnsupported("numpy is not available")
    return _np


def _total_tuples(coded: CodedInstance) -> int:
    cache = coded.vector_cache()
    found = cache.get("total_tuples")
    if found is None:
        found = sum(len(tuples) for tuples in coded.by_relation.values())
        cache["total_tuples"] = found
    return found


def worth_vectorizing(coded: CodedInstance) -> bool:
    """Size heuristic: batched execution only pays on instances with
    enough tuples to amortize the per-call numpy constants."""
    return _total_tuples(coded) >= MIN_TUPLES


# ---------------------------------------------------------------------------
# Join primitives
# ---------------------------------------------------------------------------

def _encode_keys(left, right):
    """Join keys for two ``(n, k)`` arrays under row equality: equal rows
    get equal keys.

    Preferred path is arithmetic packing — one lexicographic-monotone
    int64 per row (codes are small dense ints, so the mixed-radix product
    rarely overflows); it needs no sort of either side. The fallback for
    huge value ranges is ``np.unique(axis=0)`` over the stacked rows,
    which pays a void-dtype argsort."""
    np = _np
    l_keys, r_keys = _pack_rows(left, right)
    if l_keys is not None:
        return l_keys, r_keys
    combined = np.concatenate([left, right], axis=0)
    _, inverse = np.unique(combined, axis=0, return_inverse=True)
    inverse = inverse.reshape(-1)  # numpy 2.x returns the original shape
    return inverse[: len(left)], inverse[len(left):]


def _pack_rows(left, right):
    """Mixed-radix row keys of two ``(n, k)`` arrays, or ``(None, None)``
    when the per-column ranges could overflow int64. Values are shifted by
    one so ``UNBOUND`` (-1) packs cleanly; packing preserves row
    lexicographic order."""
    np = _np
    k = left.shape[1]
    radixes = []
    for column in range(k):
        high = 0
        if len(left):
            high = max(high, int(left[:, column].max()))
        if len(right):
            high = max(high, int(right[:, column].max()))
        radixes.append(high + 2)
    total = 1
    for radix in radixes:
        total *= radix
        if total > (1 << 62):
            return None, None

    def pack(rows):
        if not len(rows):
            return np.empty(0, dtype=np.int64)
        key = rows[:, 0] + 1
        for column in range(1, k):
            key = key * radixes[column] + (rows[:, column] + 1)
        return key

    return pack(left), pack(right)


def _join_ids(b_ids, t_ids):
    """All matching pairs of two 1-D id arrays (sort-merge expansion).

    Returns parallel index arrays ``(row_sel, tuple_sel)`` with
    ``b_ids[row_sel[i]] == t_ids[tuple_sel[i]]`` covering every match,
    row-major in ``b_ids`` order."""
    np = _np
    order = np.argsort(t_ids, kind="stable")
    sorted_ids = t_ids[order]
    lo = np.searchsorted(sorted_ids, b_ids, side="left")
    hi = np.searchsorted(sorted_ids, b_ids, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total > MAX_ROWS:
        raise VectorUnsupported(f"join produces {total} rows")
    row_sel = np.repeat(np.arange(len(b_ids)), counts)
    if total == 0:
        return row_sel, row_sel.copy()
    starts = np.repeat(lo, counts)
    offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts,
                                           counts)
    return row_sel, order[starts + offsets]


def _member_rows(probe, tuples):
    """Boolean mask: which rows of ``probe`` occur as rows of ``tuples``."""
    np = _np
    if probe.shape[1] == 0:
        return np.full(len(probe), bool(len(tuples)))
    if probe.shape[1] == 1:
        p_ids, t_ids = probe[:, 0], tuples[:, 0]
    else:
        p_ids, t_ids = _encode_keys(probe, tuples)
    # Sort only the (small) relation side; probes stay unsorted.
    table = np.sort(t_ids)
    if not len(table):
        return np.zeros(len(probe), dtype=bool)
    position = np.searchsorted(table, p_ids)
    position[position == len(table)] = len(table) - 1
    return table[position] == p_ids


# Per-(atom, instance) columnar info: tuples filtered by the atom's
# constants and intra-atom duplicate-slot equalities, projected to the
# first-occurrence column of each distinct slot. Cached on the coded
# instance (plan nodes are kernel-owned, so ids are stable while the
# kernel — and with it the instance cache — is alive). Shared by the
# per-instance executor and the frontier-batch executor, so a block warm
# and a later per-state evaluation reuse one filtered projection.
def _atom_info_for(coded: CodedInstance, node: _Atom):
    cache = coded.vector_cache()
    key = ("atom", id(node))
    found = cache.get(key)
    if found is None:
        np = _np
        columns = coded.columns(node.relation)
        if columns is None:
            found = (None, ())
        else:
            mask = np.ones(len(columns), dtype=bool)
            first_position: Dict[int, int] = {}
            for position, (is_const, value) in enumerate(node.specs):
                if is_const:
                    mask &= columns[:, position] == value
                else:
                    first = first_position.get(value)
                    if first is None:
                        first_position[value] = position
                    else:
                        mask &= columns[:, position] \
                            == columns[:, first]
            slots = tuple(first_position)
            filtered = columns[mask] if not mask.all() else columns
            values = filtered[:, [first_position[slot]
                                  for slot in slots]] \
                if slots else filtered[:, :0]
            found = (values, slots)
        cache[key] = found
    return found


# ---------------------------------------------------------------------------
# The batched evaluator
# ---------------------------------------------------------------------------

class _Executor:
    """Evaluates one compiled node tree over one coded instance, batched.

    ``bindings(node, regs)`` maps a register matrix to ``(extended,
    parent)`` where ``parent[i]`` is the input row that produced output row
    ``i`` (the batched twin of ``iter_bindings``); ``holds(node, regs)``
    decides closed truth per row (the twin of ``holds``).
    """

    __slots__ = ("coded", "domain", "stats")

    def __init__(self, coded: CodedInstance, domain: FrozenSet[int],
                 stats: Optional[Dict[str, int]] = None):
        self.coded = coded
        self.domain = _np.fromiter(sorted(domain), dtype=_np.int64,
                                   count=len(domain))
        self.stats = stats

    # -- bindings -----------------------------------------------------------

    def bindings(self, node: _Node, regs):
        np = _np
        n = len(regs)
        if n == 0:
            return regs, np.empty(0, dtype=np.intp)
        if isinstance(node, _Atom):
            return self._atom_bindings(node, regs)
        if isinstance(node, _And):
            parent = np.arange(n, dtype=np.intp)
            for sub in node.ordered:
                regs, step = self.bindings(sub, regs)
                parent = parent[step]
                if not len(regs):
                    break
            return regs, parent
        if isinstance(node, _Eq):
            return self._eq_bindings(node, regs)
        if isinstance(node, _Exists):
            if node.vacuous:
                vacuous = self._vacuous_mask(regs)
                if vacuous is not None:
                    keep = np.nonzero(~vacuous)[0]
                    extended, parent = self.bindings(node.sub, regs[keep])
                    return extended, keep[parent]
            return self.bindings(node.sub, regs)
        if isinstance(node, _Not):
            padded, parent = self._pad(node.free, regs)
            keep = ~self.holds(node.sub, padded)
            return padded[keep], parent[keep]
        if isinstance(node, _Forall):
            padded, parent = self._pad(node.free, regs)
            keep = ~self.holds(node.neg_exists, padded)
            return padded[keep], parent[keep]
        if isinstance(node, _Or):
            parts, parents = [], []
            for sub, others in node.children:
                extended, parent = self.bindings(sub, regs)
                extended, padded_parent = self._pad(others, extended)
                parts.append(extended)
                parents.append(parent[padded_parent])
            return (np.concatenate(parts),
                    np.concatenate(parents))
        if isinstance(node, _True):
            return regs, np.arange(n, dtype=np.intp)
        if isinstance(node, _False):
            return self._empty(regs)
        raise VectorUnsupported(f"cannot vectorize node {node!r}")

    def _empty(self, regs):
        np = _np
        return regs[:0], np.empty(0, dtype=np.intp)

    def _budget(self, total: int) -> None:
        if total > MAX_ROWS:
            raise VectorUnsupported(f"working set of {total} rows")
        if self.stats is not None and total > self.stats.get("rows_peak", 0):
            self.stats["rows_peak"] = total

    def _atom_info(self, node: _Atom):
        return _atom_info_for(self.coded, node)

    def _vacuous_mask(self, regs):
        """Per-row mask marking rows whose evaluation domain is empty (a
        vacuous ``Exists`` is false there), or ``None`` when no row
        qualifies. The batch executor overrides this with a per-group
        decision."""
        if len(self.domain):
            return None
        return _np.ones(len(regs), dtype=bool)

    def _expand_domain(self, regs, rows, slots: Sequence[int]):
        """Cross ``rows`` (indexes into ``regs``) with the evaluation
        domain: every input row repeats once per domain value, with every
        slot in ``slots`` set to that value. Returns ``(extended,
        row_sel)`` with ``row_sel[i]`` the ``regs`` index output row ``i``
        came from. The batch executor overrides this with per-group
        domains."""
        np = _np
        d = len(self.domain)
        self._budget(len(rows) * d)
        extended = np.repeat(regs[rows], d, axis=0)
        assigned = np.tile(self.domain, len(rows))
        for slot in slots:
            extended[:, slot] = assigned
        return extended, np.repeat(rows, d)

    def _atom_bindings(self, node: _Atom, regs):
        np = _np
        values, slots = self._atom_info(node)
        if values is None or not len(values):
            return self._empty(regs)
        if not slots:
            # Constants only: each row survives iff any tuple matched.
            return regs, np.arange(len(regs), dtype=np.intp)
        k = len(slots)
        slot_list = list(slots)
        bound = regs[:, slot_list] != UNBOUND
        patterns = bound.astype(np.int64) @ (1 << np.arange(k,
                                                            dtype=np.int64))
        parts, parents = [], []
        for pattern in np.unique(patterns):
            rows = np.nonzero(patterns == pattern)[0]
            batch = regs[rows]
            bound_cols = [i for i in range(k) if (int(pattern) >> i) & 1]
            free_cols = [i for i in range(k) if not (int(pattern) >> i) & 1]
            if bound_cols:
                if len(bound_cols) == 1:
                    b_ids = batch[:, slots[bound_cols[0]]]
                    t_ids = values[:, bound_cols[0]]
                else:
                    b_ids, t_ids = _encode_keys(
                        batch[:, [slots[c] for c in bound_cols]],
                        values[:, bound_cols])
                row_sel, tuple_sel = _join_ids(b_ids, t_ids)
            else:
                total = len(rows) * len(values)
                self._budget(total)
                row_sel = np.repeat(np.arange(len(rows)), len(values))
                tuple_sel = np.tile(np.arange(len(values)), len(rows))
            extended = batch[row_sel]
            for column in free_cols:
                extended[:, slots[column]] = values[tuple_sel, column]
            parts.append(extended)
            parents.append(rows[row_sel])
        result = np.concatenate(parts)
        self._budget(len(result))
        return result, np.concatenate(parents).astype(np.intp, copy=False)

    def _eq_bindings(self, node: _Eq, regs):
        np = _np
        n = len(regs)
        l_const, l_value = node.left
        r_const, r_value = node.right
        left = np.full(n, l_value, dtype=np.int64) if l_const \
            else regs[:, l_value]
        right = np.full(n, r_value, dtype=np.int64) if r_const \
            else regs[:, r_value]
        left_bound = left != UNBOUND
        right_bound = right != UNBOUND
        parts, parents = [], []

        both = left_bound & right_bound
        if both.any():
            keep = np.nonzero(both & (left == right))[0]
            parts.append(regs[keep])
            parents.append(keep)
        bind_right = left_bound & ~right_bound
        if bind_right.any():  # right side must be a slot (consts are bound)
            rows = np.nonzero(bind_right)[0]
            extended = regs[rows].copy()
            extended[:, r_value] = left[rows]
            parts.append(extended)
            parents.append(rows)
        bind_left = ~left_bound & right_bound
        if bind_left.any():
            rows = np.nonzero(bind_left)[0]
            extended = regs[rows].copy()
            extended[:, l_value] = right[rows]
            parts.append(extended)
            parents.append(rows)
        neither = ~left_bound & ~right_bound
        if neither.any():  # enumerate one shared value over the domain
            rows = np.nonzero(neither)[0]
            extended, row_sel = self._expand_domain(
                regs, rows, (l_value, r_value))
            parts.append(extended)
            parents.append(row_sel)
        if not parts:
            return self._empty(regs)
        return (np.concatenate(parts),
                np.concatenate(parents).astype(np.intp, copy=False))

    def _pad(self, slots: Sequence[int], regs):
        """Batched ``_pad``: expand every still-unbound slot over the
        domain (rows keep their identity through ``parent``)."""
        np = _np
        parent = np.arange(len(regs), dtype=np.intp)
        for slot in slots:
            if not len(regs):
                break
            unbound = regs[:, slot] == UNBOUND
            if not unbound.any():
                continue
            rows = np.nonzero(unbound)[0]
            expanded, row_sel = self._expand_domain(regs, rows, (slot,))
            regs = np.concatenate([regs[~unbound], expanded])
            parent = np.concatenate([parent[~unbound], parent[row_sel]])
            self._budget(len(regs))
        return regs, parent

    # -- holds --------------------------------------------------------------

    def holds(self, node: _Node, regs):
        np = _np
        n = len(regs)
        if isinstance(node, _Atom):
            return self._atom_holds(node, regs)
        if isinstance(node, _And):
            mask = np.ones(n, dtype=bool)
            for sub in node.original:
                mask &= self.holds(sub, regs)
                if not mask.any():
                    break
            return mask
        if isinstance(node, _Or):
            mask = np.zeros(n, dtype=bool)
            for sub, _ in node.children:
                mask |= self.holds(sub, regs)
                if mask.all():
                    break
            return mask
        if isinstance(node, _Not):
            return ~self.holds(node.sub, regs)
        if isinstance(node, _Eq):
            return self._eq_holds(node, regs)
        if isinstance(node, _Exists):
            vacuous = self._vacuous_mask(regs) if node.vacuous else None
            _, parent = self.bindings(node.sub, regs)
            mask = np.zeros(n, dtype=bool)
            mask[parent] = True
            if vacuous is not None:
                mask &= ~vacuous
            return mask
        if isinstance(node, _Forall):
            return ~self.holds(node.neg_exists, regs)
        if isinstance(node, _True):
            return np.ones(n, dtype=bool)
        if isinstance(node, _False):
            return np.zeros(n, dtype=bool)
        raise VectorUnsupported(f"cannot vectorize node {node!r}")

    def _atom_holds(self, node: _Atom, regs):
        np = _np
        n = len(regs)
        specs = node.specs
        resolved = np.empty((n, len(specs)), dtype=np.int64)
        ok = np.ones(n, dtype=bool)
        for position, (is_const, value) in enumerate(specs):
            if is_const:
                resolved[:, position] = value
            else:
                column = regs[:, value]
                resolved[:, position] = column
                # A tuple containing an unbound variable matches nothing
                # (reference semantics).
                ok &= column != UNBOUND
        columns = self.coded.columns(node.relation)
        if columns is None:
            return np.zeros(n, dtype=bool)
        return ok & _member_rows(resolved, columns)

    def _eq_holds(self, node: _Eq, regs):
        np = _np
        n = len(regs)
        l_const, l_value = node.left
        r_const, r_value = node.right
        left = np.full(n, l_value, dtype=np.int64) if l_const \
            else regs[:, l_value]
        right = np.full(n, r_value, dtype=np.int64) if r_const \
            else regs[:, r_value]
        left_bound = left != UNBOUND
        right_bound = right != UNBOUND
        mask = left_bound & right_bound & (left == right)
        if not l_const and not r_const and l_value == r_value:
            # Reference: an unbound variable equals itself, nothing else.
            mask |= ~left_bound & ~right_bound
        return mask


# ---------------------------------------------------------------------------
# The frontier-batch executor
# ---------------------------------------------------------------------------

class _BatchExecutor(_Executor):
    """Evaluates one compiled node tree over a *block* of coded instances
    in one pass.

    Register matrices carry one extra trailing column — ``gid_slot``, the
    index of the group (distinct frontier instance) a row belongs to. The
    trick that makes the whole inherited join machinery batch-correct
    unchanged: every atom's column block and every relation's raw tuple
    matrix get the group id appended as an extra column, and the gid slot
    joins like any other *always-bound* register. ``_encode_keys`` then
    folds the state id into the mixed-radix packed keys, so one sort-merge
    join per atom serves the whole frontier and rows never match across
    groups. Only three primitives see groups explicitly: atom column
    stacking, domain expansion (per-group domains, a gid sort-merge join
    against the stacked domain table), and the vacuous-``Exists`` mask
    (groups with empty domains).
    """

    __slots__ = ("codeds", "gid_slot", "domain_gids", "domain_values",
                 "_empty_gids", "_atom_cache", "_columns_cache")

    def __init__(self, codeds: Sequence[CodedInstance],
                 domains: Sequence[FrozenSet[int]], gid_slot: int,
                 stats: Optional[Dict[str, int]] = None):
        np = _np
        self.coded = None
        self.domain = None
        self.stats = stats
        self.codeds = codeds
        self.gid_slot = gid_slot
        self._atom_cache: Dict[int, tuple] = {}
        self._columns_cache: Dict[str, object] = {}
        gids, values, empty = [], [], []
        for gid, domain in enumerate(domains):
            if not domain:
                empty.append(gid)
                continue
            ordered = np.fromiter(sorted(domain), dtype=np.int64,
                                  count=len(domain))
            gids.append(np.full(len(ordered), gid, dtype=np.int64))
            values.append(ordered)
        self.domain_gids = np.concatenate(gids) if gids \
            else np.empty(0, dtype=np.int64)
        self.domain_values = np.concatenate(values) if values \
            else np.empty(0, dtype=np.int64)
        self._empty_gids = np.array(empty, dtype=np.int64)

    def _atom_info(self, node: _Atom):
        found = self._atom_cache.get(id(node))
        if found is None:
            np = _np
            parts, slots = [], None
            for gid, coded in enumerate(self.codeds):
                values, group_slots = _atom_info_for(coded, node)
                if values is None:
                    continue
                slots = group_slots  # a function of the node alone
                if not len(values):
                    continue
                parts.append(np.concatenate(
                    [values, np.full((len(values), 1), gid,
                                     dtype=np.int64)], axis=1))
            if slots is None:  # relation absent in every group
                found = (None, ())
            else:
                stacked = np.concatenate(parts) if parts \
                    else np.empty((0, len(slots) + 1), dtype=np.int64)
                found = (stacked, slots + (self.gid_slot,))
            self._atom_cache[id(node)] = found
            return found
        return found

    def _stacked_columns(self, relation):
        """Raw tuple matrix of ``relation`` across the block, gid column
        appended; ``None`` when the relation is empty everywhere."""
        if relation in self._columns_cache:
            return self._columns_cache[relation]
        np = _np
        parts = []
        for gid, coded in enumerate(self.codeds):
            columns = coded.columns(relation)
            if columns is None or not len(columns):
                continue
            parts.append(np.concatenate(
                [columns, np.full((len(columns), 1), gid,
                                  dtype=np.int64)], axis=1))
        found = np.concatenate(parts) if parts else None
        self._columns_cache[relation] = found
        return found

    def _atom_holds(self, node: _Atom, regs):
        np = _np
        n = len(regs)
        specs = node.specs
        tuples = self._stacked_columns(node.relation)
        if tuples is None:
            return np.zeros(n, dtype=bool)
        resolved = np.empty((n, len(specs) + 1), dtype=np.int64)
        ok = np.ones(n, dtype=bool)
        for position, (is_const, value) in enumerate(specs):
            if is_const:
                resolved[:, position] = value
            else:
                column = regs[:, value]
                resolved[:, position] = column
                ok &= column != UNBOUND
        resolved[:, len(specs)] = regs[:, self.gid_slot]
        return ok & _member_rows(resolved, tuples)

    def _vacuous_mask(self, regs):
        if not len(self._empty_gids):
            return None
        return _np.isin(regs[:, self.gid_slot], self._empty_gids)

    def _expand_domain(self, regs, rows, slots: Sequence[int]):
        # Per-group domains: sort-merge join of each row's gid against the
        # stacked (gid, value) domain table.
        row_sel, dom_sel = _join_ids(regs[rows, self.gid_slot],
                                     self.domain_gids)
        self._budget(len(row_sel))
        extended = regs[rows][row_sel]
        assigned = self.domain_values[dom_sel]
        for slot in slots:
            extended[:, slot] = assigned
        return extended, rows[row_sel]


# ---------------------------------------------------------------------------
# Kernel-facing entry points (all return None to request fallback)
# ---------------------------------------------------------------------------

def binding_matrix(plan: CompiledQuery, coded: CodedInstance,
                   domain: FrozenSet[int],
                   regs: Optional[List[int]] = None,
                   stats: Optional[Dict[str, int]] = None):
    """All satisfying register rows as an ``(n, n_slots)`` int64 matrix,
    or ``None`` when the backend is off, the instance is too small, the
    plan has backed off to the interpreted backend, or the evaluation
    overflows its row budget (callers fall back to the interpreted join).

    Adaptive per-plan backoff: small plans over small instances can lose
    to the interpreted join even past :data:`MIN_TUPLES` (the numpy
    constants per call dwarf the work). Each evaluation is timed against
    the linear estimate ``BACKOFF_NS_PER_TUPLE * (tuples + answer rows)``;
    :data:`BACKOFF_AFTER` *consecutive* losses pin the plan (its
    ``backoff`` counter saturates) and later calls return ``None``
    immediately. A single win resets the streak. The estimate — not a
    trial run of the interpreted join — keeps the decision deterministic
    enough for the hot-path gate and costs nothing extra."""
    if not worth_vectorizing(coded) or not vector_enabled():
        return None
    if plan.backoff is not None and plan.backoff >= BACKOFF_AFTER:
        if stats is not None:
            stats["pin_skips"] = stats.get("pin_skips", 0) + 1
        return None
    np = _np
    base = np.array(
        [plan.fresh_regs() if regs is None else regs], dtype=np.int64)
    executor = _Executor(coded, domain, stats)
    started = time.perf_counter()
    try:
        matrix, _ = executor.bindings(plan.root, base)
    except VectorUnsupported:
        if stats is not None:
            stats["fallbacks"] = stats.get("fallbacks", 0) + 1
        return None
    elapsed = time.perf_counter() - started
    budget = BACKOFF_NS_PER_TUPLE * (
        _total_tuples(coded) + len(matrix)) * 1e-9
    if elapsed > budget:
        plan.backoff = (plan.backoff or 0) + 1
        if plan.backoff == BACKOFF_AFTER and stats is not None:
            stats["plans_pinned"] = stats.get("plans_pinned", 0) + 1
    else:
        plan.backoff = None
    return matrix


def distinct_projection(matrix, columns: Iterable[int]
                        ) -> List[Tuple[int, ...]]:
    """Distinct rows of ``matrix`` restricted to ``columns``, as Python
    int tuples in lexicographic order."""
    np = _np
    if not len(matrix):
        return []
    sub = matrix[:, list(columns)]
    if sub.shape[1] == 1:
        return [(code,) for code in np.unique(sub[:, 0]).tolist()]
    keys, _ = _pack_rows(sub, sub[:0])
    if keys is not None:
        # Packing preserves lexicographic order, so key order = row order.
        _, first = np.unique(keys, return_index=True)
        distinct = sub[first]
    else:
        distinct = np.unique(sub, axis=0)
    return list(map(tuple, distinct.tolist()))


def binding_matrix_batch(plan: CompiledQuery,
                         codeds: Sequence[CodedInstance],
                         domains: Sequence[FrozenSet[int]],
                         regs: Optional[List[int]] = None,
                         stats: Optional[Dict[str, int]] = None):
    """All satisfying register rows of ``plan`` over a *block* of coded
    instances, as one ``(n, n_slots + 1)`` int64 matrix whose trailing
    column is the group id; split per group with :func:`split_by_group`.

    ``regs`` is the shared seed row (parameter bindings are kernel-global
    codes, so frontier siblings share it). The per-instance
    :data:`MIN_TUPLES` gate and plan backoff pins do not apply here —
    amortizing tiny per-state evaluations over the block is the point of
    batching; the caller gates on block *width* instead
    (:data:`MIN_BATCH_GROUPS`). Returns ``None`` to request the per-state
    fallback."""
    if not vector_enabled() or not codeds:
        return None
    np = _np
    gid_slot = plan.n_slots
    base = np.empty((len(codeds), gid_slot + 1), dtype=np.int64)
    base[:, :gid_slot] = np.array(
        [plan.fresh_regs() if regs is None else regs], dtype=np.int64)
    base[:, gid_slot] = np.arange(len(codeds), dtype=np.int64)
    executor = _BatchExecutor(codeds, domains, gid_slot, stats)
    try:
        matrix, _ = executor.bindings(plan.root, base)
    except VectorUnsupported:
        if stats is not None:
            stats["fallbacks"] = stats.get("fallbacks", 0) + 1
        return None
    return matrix


def split_by_group(matrix, n_groups: int, gid_slot: int):
    """Split a batched binding matrix into its per-group matrices, gid
    column dropped (it is the trailing column by construction)."""
    np = _np
    order = np.argsort(matrix[:, gid_slot], kind="stable")
    ordered = matrix[order]
    bounds = np.searchsorted(ordered[:, gid_slot],
                             np.arange(n_groups + 1))
    return [ordered[bounds[gid]:bounds[gid + 1], :gid_slot]
            for gid in range(n_groups)]


def constraint_rows_hold(matrix, sides) -> bool:
    """Check compiled equality-constraint sides over every binding row.

    ``sides`` are ``((l_const, l_value), (r_const, r_value))`` pairs as in
    :class:`repro.relational.kernel._CompiledConstraint`."""
    np = _np
    for (l_const, l_value), (r_const, r_value) in sides:
        left = l_value if l_const else matrix[:, l_value]
        right = r_value if r_const else matrix[:, r_value]
        if np.any(left != right):
            return False
    return True
