"""The per-DCDS integer-coded relational kernel.

One :class:`RelationalKernel` is built (lazily, once) per DCDS. It owns:

* a :class:`~repro.relational.coding.TermTable` interning every ground term
  the exploration touches to a dense int code;
* each condition-action rule query, effect body, and equality constraint
  compiled **once** into a :class:`~repro.fol.compile.CompiledQuery` join
  plan over the integer indexes (the reference evaluator in
  :mod:`repro.fol.evaluation` stays authoritative and is pinned against the
  kernel by parity tests);
* interners for facts and instances, so every distinct fact/instance is
  materialized — and hashed — exactly once per process, and revisited
  successors come back as the *same* objects with warm caches.

The kernel is a pure accelerator: :mod:`repro.core.execution` consults it on
the hot path and falls back to the reference implementation whenever a piece
could not be compiled (service calls inside queries, exotic formula nodes)
or the kernel is disabled via ``REPRO_NO_KERNEL=1``. Constructed state is
process-local; pickling a DCDS drops the attached kernel (rebuilt on first
use in the receiving process), and the deterministic construction order
below is what lets :mod:`repro.engine.wire` align code assignments across
processes by snapshot replay.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from typing import (
    Any, Dict, FrozenSet, Iterable, List, Optional, Tuple)

from repro import env
from repro.errors import ExecutionError, IllegalParameters
from repro.fol.compile import (
    CompiledQuery, CompileError, _And, _Atom, _Eq, _Exists, _Forall, _Not,
    _Or)
from repro.relational import vector
from repro.relational.coding import (
    UNBOUND, CodedFact, CodedInstance, TermTable, coded_canonical_order)
from repro.relational.instance import Fact, Instance
from repro.relational.values import Fresh, Param, ServiceCall, Var, is_value
from repro.utils import sorted_values

SigmaItems = Tuple[Tuple[Param, Any], ...]

#: Kernels alive in this process (for cache clearing).
_LIVE_KERNELS: "weakref.WeakSet[RelationalKernel]" = weakref.WeakSet()


def _unpickle_kernel_placeholder():
    """Kernels never cross process boundaries; receivers rebuild lazily."""
    return None


class _Disabled:
    """Sentinel attached to a DCDS when the kernel is switched off."""

    def __reduce__(self):
        # Survive pickling as the singleton, so identity checks keep
        # working on DCDSs that cross process boundaries while disabled.
        return _disabled_sentinel, ()


def _disabled_sentinel() -> "_Disabled":
    return _DISABLED


_DISABLED = _Disabled()


#: Structurally-equal DCDSs share one kernel: benchmarks and validation
#: runs rebuild specifications freely, and a rebuilt spec should land on
#: the warm plans and interners of its twin. Keyed by ``spec_signature()``;
#: bounded LRU so sweeping over many generated specifications cannot pin
#: unbounded memory.
_KERNEL_REGISTRY: "OrderedDict[tuple, RelationalKernel]" = OrderedDict()
_KERNEL_REGISTRY_LIMIT = 64


def kernel_for(dcds) -> Optional["RelationalKernel"]:
    """The kernel attached to ``dcds``, built (or adopted) on first use.

    Returns ``None`` when disabled (``REPRO_NO_KERNEL=1``). The switch is
    read when the kernel would first be attached to a DCDS, not on every
    hot call — set the variable before touching the DCDS (the parity tests
    construct fresh specifications per parametrization, so each sees the
    switch).
    """
    kernel = getattr(dcds, "_relational_kernel", None)
    if kernel is not None:
        return None if kernel is _DISABLED else kernel
    if env.kernel_disabled():
        object.__setattr__(dcds, "_relational_kernel", _DISABLED)
        return None
    signature = dcds.spec_signature()
    kernel = _KERNEL_REGISTRY.get(signature)
    if kernel is None:
        kernel = RelationalKernel(dcds)
        _KERNEL_REGISTRY[signature] = kernel
        while len(_KERNEL_REGISTRY) > _KERNEL_REGISTRY_LIMIT:
            _KERNEL_REGISTRY.popitem(last=False)
    else:
        _KERNEL_REGISTRY.move_to_end(signature)
        kernel.adopt(dcds)
    object.__setattr__(dcds, "_relational_kernel", kernel)
    return kernel


def clear_kernel_caches() -> None:
    """Release the interned instances/facts of every live kernel."""
    _KERNEL_REGISTRY.clear()
    for kernel in list(_LIVE_KERNELS):
        kernel.clear_caches()


def kernel_instance_canonicalizer(dcds):
    """A ``StateInterner`` canonicalizer riding ``dcds``'s kernel.

    Returns a callable ``instance -> (canonical_instance, key) | None``
    for ``StateInterner(mode="canonical-first", canonicalizer=...)`` and
    :func:`repro.semantics.quotient.isomorphism_quotient` — canonical
    labeling then runs on the integer-coded kernel (memoized per kernel)
    instead of the object-level search. Falls back (``None``) per
    instance when the kernel is disabled or the instance has uncoded
    structure.
    """
    def canonicalize(instance: Instance):
        kernel = kernel_for(dcds)
        if kernel is None:
            return None
        renaming = kernel.canonical_instance_renaming(instance)
        if renaming is None:
            return None
        canonical = kernel.intern_instance(instance.rename(renaming)) \
            if renaming else instance
        return canonical, tuple(
            f.sort_key() for f in canonical.sorted_facts())
    # The equivalence this labeler decides; StateInterner refuses a
    # canonicalizer whose fixed set differs from its own (keys from
    # different equivalences are not comparable).
    canonicalize.fixed = frozenset(dcds.known_constants())
    return canonicalize


def attach_kernel_stats(dcds, ts) -> None:
    """Record the kernel's counters on a built transition system.

    Surfaces as ``exploration_stats["kernel"]`` and from there through
    ``VerificationReport.abstraction_stats``. A no-op when the kernel is
    disabled.
    """
    kernel = getattr(dcds, "_relational_kernel", None)
    if isinstance(kernel, RelationalKernel):
        ts.exploration_stats["kernel"] = kernel.stats_dict()
        ts.exploration_stats["vector"] = kernel.vector_stats_dict()
        ts.exploration_stats["batch"] = kernel.batch_stats_dict()


class _CompiledConstraint:
    """An equality constraint with a compiled query and coded sides."""

    __slots__ = ("query", "sides")

    def __init__(self, constraint, table: TermTable):
        self.query = CompiledQuery(constraint.query, table)
        sides = []
        for left, right in constraint.equalities:
            sides.append((self._side(left, table), self._side(right, table)))
        self.sides = tuple(sides)

    def _side(self, term, table: TermTable) -> Tuple[bool, int]:
        if isinstance(term, Var):
            return (False, self.query.free_slots[term])
        return (True, table.code(term))

    def satisfied(self, coded: CodedInstance, table: TermTable,
                  extra: FrozenSet[int],
                  vector_stats: Optional[Dict[str, int]] = None) -> bool:
        if not self.sides:
            return True
        domain = self.query.domain(coded, table, extra)
        matrix = vector.binding_matrix(self.query, coded, domain,
                                       stats=vector_stats)
        if matrix is not None:
            if vector_stats is not None:
                vector_stats["constraint_evals"] += 1
            return vector.constraint_rows_hold(matrix, self.sides)
        regs = self.query.fresh_regs()
        for binding in self.query.iter_bindings(coded, regs, domain):
            for (l_const, l_value), (r_const, r_value) in self.sides:
                left = l_value if l_const else binding[l_value]
                right = r_value if r_const else binding[r_value]
                if left != right:
                    return False
        return True


def _collect_head_slots(spec, slots: set) -> None:
    kind = spec[0]
    if kind == "v":
        slots.add(spec[1])
    elif kind == "call":
        for arg in spec[2]:
            _collect_head_slots(arg, slots)


class _RuleContext:
    """Everything precomputed for one condition-action rule."""

    __slots__ = ("plan", "params", "param_slots", "answer_slots",
                 "param_positions", "by_instance")

    def __init__(self, plan: CompiledQuery, params: Tuple[Param, ...]):
        self.plan = plan
        self.params = params
        # Reference ordering: answers() sorts full bindings by value over
        # the sorted variable names, parameters rendering as "@name" (the
        # @-variable rewrite of ``_param_query``); the result is then
        # stably re-sorted by the parameter values alone.
        named = sorted(
            [(var.name, slot) for var, slot in plan.free_slots.items()]
            + [(f"@{param.name}", slot)
               for param, slot in plan.param_slots.items()])
        self.answer_slots = tuple(slot for _, slot in named)
        self.param_slots = tuple(plan.param_slots[param]
                                 for param in params)
        order = {slot: position
                 for position, slot in enumerate(self.answer_slots)}
        self.param_positions = tuple(order[slot]
                                     for slot in self.param_slots)
        self.by_instance: Dict[Instance, tuple] = {}


class _SigmaContext:
    """One effect under one parameter substitution: bound registers, the
    evaluation-domain extras, the resolved head, per-instance results."""

    __slots__ = ("regs", "extra", "head", "needed_slots", "by_instance")

    def __init__(self, regs: List[int], extra: FrozenSet[int], head: tuple):
        self.regs = regs
        self.extra = extra
        self.head = head
        # Body slots the resolved head actually reads ("v" specs, service-
        # call arguments). Fact production is a function of these alone, so
        # the vector path grounds each *distinct* projection once instead
        # of once per binding.
        slots: set = set()
        for _, specs, ready in head:
            if ready is None:
                for spec in specs:
                    _collect_head_slots(spec, slots)
        self.needed_slots: Tuple[int, ...] = tuple(sorted(slots))
        self.by_instance: Dict[Instance, FrozenSet[Fact]] = {}


class _EffectContext:
    """A compiled effect: body plan + head template + per-sigma contexts."""

    __slots__ = ("body", "head_specs", "sigmas")

    def __init__(self, body: CompiledQuery, head_specs: tuple):
        self.body = body
        self.head_specs = head_specs
        self.sigmas: Dict[SigmaItems, _SigmaContext] = {}


class _ActionContext:
    """``DO()`` memo: per (sigma, instance) pending-instance sharing."""

    __slots__ = ("effects", "by_key")

    def __init__(self, effects: tuple):
        self.effects = effects
        self.by_key: Dict[Tuple[SigmaItems, Instance], Instance] = {}


class RelationalKernel:
    """Integer-coded acceleration structures for one DCDS."""

    def __init__(self, dcds):
        _LIVE_KERNELS.add(self)
        self.dcds = dcds
        self.table = TermTable()
        table = self.table
        # Deterministic construction order — the spawn-side snapshot replay
        # of the wire codec relies on two kernels for the same DCDS
        # interning this prefix identically:
        # 1. relation names in schema order;
        for relation in dcds.schema.relations:
            table.code(relation.name)
        # 2. known constants (ADOM(I0) + process constants), sorted;
        known = sorted_values(dcds.known_constants())
        for value in known:
            table.code(value)
        self.known_constant_codes: FrozenSet[int] = frozenset(
            table.code(value) for value in known)
        #: Fresh indexes occupied by known constants — canonical minting
        #: must never hand these out, even when the constant is absent
        #: from the state (see canonical_form's reserved discipline).
        self._fixed_fresh_indexes: FrozenSet[int] = frozenset(
            value.index for value in known if isinstance(value, Fresh))
        self.initial_adom_codes: FrozenSet[int] = frozenset(
            table.code(value) for value in dcds.data.initial_adom)
        # 3. compiled plans in specification order (rules, then actions'
        #    effects, then constraints) — compilation interns each
        #    formula's constants.
        self._rule_contexts: List[Optional[_RuleContext]] = [
            self._compile_rule(dcds, rule) for rule in dcds.process.rules]
        self._effect_contexts: List[Optional[_EffectContext]] = []
        self._action_contexts: List[_ActionContext] = []
        for action in dcds.process.actions:
            for effect in action.effects:
                self._effect_contexts.append(self._compile_effect(effect))
            self._action_contexts.append(
                _ActionContext(tuple(action.effects)))
        # Hot-path lookups are by object id — no dataclass re-hashing.
        # Every id registered here belongs to a specification kept alive in
        # ``_adopted`` (ids stay stable, no reuse).
        self._rules: Dict[int, Optional[_RuleContext]] = {}
        self._effects: Dict[int, Optional[_EffectContext]] = {}
        self._actions: Dict[int, _ActionContext] = {}
        self._adopted: List[Any] = []
        self._index_spec(dcds)
        self._constraints: Optional[List[_CompiledConstraint]] = []
        for constraint in dcds.data.constraints:
            try:
                self._constraints.append(
                    _CompiledConstraint(constraint, table))
            except (CompileError, KeyError):
                self._constraints = None  # any failure: reference checks
                break

        # Interners (process-local; released by clear_caches).
        self._facts: Dict[CodedFact, Fact] = {}
        self._fact_codes: Dict[Fact, Tuple[int, Tuple[int, ...], bool]] = {}
        self._calls: Dict[Tuple[str, Tuple[int, ...]], int] = {}
        self._instances: Dict[FrozenSet[CodedFact], Instance] = {}
        self._coded: Dict[Instance, CodedInstance] = {}
        self._coded_facts: Dict[Instance, FrozenSet[CodedFact]] = {}
        self._pending_entries: Dict[Instance, tuple] = {}
        self._eval_memo: Dict[tuple, Tuple[bool, Optional[Instance]]] = {}
        self._successor_memos: Dict[Any, dict] = {}
        self._canonical_memo: Dict[tuple, Dict[Any, Fresh]] = {}
        self.stats: Dict[str, int] = {
            "legal_evals": 0, "effect_evals": 0, "evaluate_calls": 0,
            "fallbacks": 0, "facts_interned": 0, "instances_interned": 0,
            "instance_reuses": 0, "canonical_evals": 0,
            "canonical_memo_hits": 0,
        }
        #: Counters of the columnar backend (see repro.relational.vector):
        #: how many rule/effect/constraint evaluations ran batched, how
        #: many fell back mid-evaluation (row-budget overflow), the
        #: largest working set seen, and the adaptive-backoff pins
        #: (``plans_pinned`` plans demoted to the interpreted join,
        #: ``pin_skips`` evaluations that short-circuited on a pin).
        self.vector_stats: Dict[str, int] = {
            "legal_evals": 0, "effect_evals": 0, "constraint_evals": 0,
            "fallbacks": 0, "rows_peak": 0, "plans_pinned": 0,
            "pin_skips": 0,
        }
        #: Counters of the frontier-batch tier (see warm_legal_
        #: substitutions / warm_ground_effects): frontier blocks warmed
        #: (and the widest one), blocks skipped as too thin, memo entries
        #: filled by warming, distinct dedup groups actually evaluated,
        #: entries served by dedup fan-out, and whole-plan fallbacks to
        #: per-representative evaluation.
        self.batch_stats: Dict[str, int] = {
            "blocks": 0, "block_states_peak": 0, "thin_blocks": 0,
            "warmed_entries": 0, "unique_groups": 0, "dedup_hits": 0,
            "fallbacks": 0,
        }
        #: Per-plan read signature memo of the batch tier (plans are
        #: kernel-owned, ids stable for the kernel's life; survives
        #: clear_caches like the plans themselves).
        self._plan_reads_memo: Dict[int, Tuple[tuple, bool]] = {}
        #: Memory budget the evictable memo caches are charged to, or
        #: ``None`` (plain unbounded dicts — the default). Attached by the
        #: storage layer for budgeted explorations; see attach_memo_budget.
        self._memo_budget = None

    # -- construction helpers ------------------------------------------------

    def _index_spec(self, dcds) -> None:
        """Map one specification's rule/effect/action ids onto the shared
        positional contexts (identical structure guaranteed by the
        ``spec_signature`` registry key)."""
        if len(self._adopted) >= 256:
            # Id maps would otherwise grow with every structurally-equal
            # rebuild; dropped specifications simply fall back to the
            # reference path if still in use.
            self._adopted.clear()
            self._rules.clear()
            self._effects.clear()
            self._actions.clear()
        self._adopted.append(dcds)
        for rule, context in zip(dcds.process.rules, self._rule_contexts):
            self._rules[id(rule)] = context
        position = 0
        for action, context in zip(dcds.process.actions,
                                   self._action_contexts):
            self._actions[id(action)] = context
            for effect in action.effects:
                self._effects[id(effect)] = self._effect_contexts[position]
                position += 1

    def adopt(self, dcds) -> None:
        """Serve a structurally identical DCDS from the existing kernel."""
        self._index_spec(dcds)

    def _compile_rule(self, dcds, rule) -> Optional[_RuleContext]:
        try:
            plan = CompiledQuery(rule.query, self.table, False)
        except CompileError:
            return None
        params = dcds.process.action(rule.action).params
        if any(param not in plan.param_slots for param in params):
            # A declared parameter the query never mentions: the reference
            # path has its own (error) behaviour; don't emulate it here.
            return None
        return _RuleContext(plan, params)

    def _compile_effect(self, effect) -> Optional[_EffectContext]:
        """Compiled body + head template, or ``None`` (reference fallback).

        Head term specs are ``("c", code)`` constant, ``("v", slot)`` body
        variable, ``("p", param)`` action parameter resolved per sigma,
        ``("call", function, arg_specs)`` service call, or ``("u", term)``
        a variable the body never binds (raises like the reference when a
        binding arrives).
        """
        try:
            body = CompiledQuery(effect.body, self.table, True)
            head = tuple(
                (self.table.code(atom.relation),
                 tuple(self._head_spec(term, body) for term in atom.terms))
                for atom in effect.head)
        except CompileError:
            return None
        return _EffectContext(body, head)

    def _head_spec(self, term, body: CompiledQuery):
        if isinstance(term, Var):
            slot = body.free_slots.get(term)
            if slot is None:
                return ("u", term)
            return ("v", slot)
        if isinstance(term, Param):
            return ("p", term)
        if isinstance(term, ServiceCall):
            args = []
            for arg in term.args:
                if isinstance(arg, ServiceCall):
                    raise CompileError("nested service call in effect head")
                args.append(self._head_spec(arg, body))
            return ("call", term.function, tuple(args))
        return ("c", self.table.code(term))

    def clear_caches(self) -> None:
        self._facts.clear()
        self._fact_codes.clear()
        self._calls.clear()
        self._instances.clear()
        self._coded.clear()
        self._coded_facts.clear()
        self._pending_entries.clear()
        self._eval_memo.clear()
        self._successor_memos.clear()
        self._canonical_memo.clear()
        for rule_context in self._rule_contexts:
            if rule_context is not None:
                rule_context.by_instance.clear()
        for effect_context in self._effect_contexts:
            if effect_context is not None:
                effect_context.sigmas.clear()
        for action_context in self._action_contexts:
            action_context.by_key.clear()

    # -- memo budgeting (the storage layer's ``memos`` account) -------------

    def _budget_memo(self, mapping):
        """``mapping`` as-is, or budget-wrapped when a budget is attached.

        Creation hook for the lazily built memo dicts (per-sigma contexts,
        per-configuration successor memos): with a budget attached they
        must be born evictable, not just retrofitted by attach.
        """
        if self._memo_budget is None:
            return mapping
        from repro.engine.store import BudgetedDict
        if isinstance(mapping, BudgetedDict):
            return mapping
        return BudgetedDict(self._memo_budget, "memos", data=mapping)

    def attach_memo_budget(self, budget) -> None:
        """Charge the evictable memo caches to ``budget``'s ``memos``
        account, with LRU eviction while the account is over its share.

        Only pure caches are wrapped — every wrapped entry recomputes to
        an equal value through the same evaluators that filled it, so
        eviction can never change what the kernel computes (the
        bit-identity contract of the accelerator tiers). The fact/call
        interners (``_facts``/``_fact_codes``/``_calls``) stay resident:
        they are identity anchors, and their entries are tiny.
        """
        self._memo_budget = budget
        wrap = self._budget_memo
        self._instances = wrap(self._instances)
        self._coded = wrap(self._coded)
        self._coded_facts = wrap(self._coded_facts)
        self._pending_entries = wrap(self._pending_entries)
        self._eval_memo = wrap(self._eval_memo)
        self._canonical_memo = wrap(self._canonical_memo)
        self._successor_memos = {
            key: wrap(memo)
            for key, memo in self._successor_memos.items()}
        for rule_context in self._rule_contexts:
            if rule_context is not None:
                rule_context.by_instance = wrap(rule_context.by_instance)
        for effect_context in self._effect_contexts:
            if effect_context is not None:
                for sigma_context in effect_context.sigmas.values():
                    sigma_context.by_instance = wrap(
                        sigma_context.by_instance)
        for action_context in self._action_contexts:
            action_context.by_key = wrap(action_context.by_key)

    def detach_memo_budget(self) -> None:
        """Undo :meth:`attach_memo_budget`: back to plain dicts (current
        contents kept; entries evicted while attached stay evicted and
        recompute on demand)."""
        if self._memo_budget is None:
            return
        self._memo_budget = None
        from repro.engine.store import BudgetedDict

        def unwrap(mapping):
            if isinstance(mapping, BudgetedDict):
                return mapping.unwrap()
            return mapping

        self._instances = unwrap(self._instances)
        self._coded = unwrap(self._coded)
        self._coded_facts = unwrap(self._coded_facts)
        self._pending_entries = unwrap(self._pending_entries)
        self._eval_memo = unwrap(self._eval_memo)
        self._canonical_memo = unwrap(self._canonical_memo)
        self._successor_memos = {
            key: unwrap(memo)
            for key, memo in self._successor_memos.items()}
        for rule_context in self._rule_contexts:
            if rule_context is not None:
                rule_context.by_instance = unwrap(rule_context.by_instance)
        for effect_context in self._effect_contexts:
            if effect_context is not None:
                for sigma_context in effect_context.sigmas.values():
                    sigma_context.by_instance = unwrap(
                        sigma_context.by_instance)
        for action_context in self._action_contexts:
            action_context.by_key = unwrap(action_context.by_key)

    def __reduce__(self):
        return _unpickle_kernel_placeholder, ()

    # -- encoding ------------------------------------------------------------

    def encode_fact(self, fact: Fact) -> Tuple[int, Tuple[int, ...], bool]:
        """``(relation_code, term_codes, has_call)`` of a fact, interned."""
        found = self._fact_codes.get(fact)
        if found is not None:
            return found
        table = self.table
        relation = table.code(fact.relation)
        codes = tuple(table.code(term) for term in fact.terms)
        has_call = any(table.is_call(code) for code in codes)
        entry = (relation, codes, has_call)
        self._fact_codes[fact] = entry
        self._facts.setdefault((relation, codes), fact)
        return entry

    def intern_fact(self, relation: int, codes: Tuple[int, ...]) -> Fact:
        """The shared :class:`Fact` for coded terms (hashed once, ever)."""
        key = (relation, codes)
        found = self._facts.get(key)
        if found is None:
            table = self.table
            found = Fact(table.term(relation),
                         tuple(table.term(code) for code in codes))
            self._facts[key] = found
            has_call = any(table.is_call(code) for code in codes)
            self._fact_codes[found] = (relation, codes, has_call)
            self.stats["facts_interned"] += 1
        return found

    def intern_call(self, function: str, arg_codes: Tuple[int, ...]) -> int:
        """Code of the ground service call ``function(args)``."""
        key = (function, arg_codes)
        found = self._calls.get(key)
        if found is None:
            table = self.table
            call = ServiceCall(
                function, tuple(table.term(code) for code in arg_codes))
            found = table.code(call)
            self._calls[key] = found
        return found

    def encode_instance(self, instance: Instance) -> CodedInstance:
        """The coded form of an instance (cached per instance)."""
        found = self._coded.get(instance)
        if found is None:
            facts = self._coded_facts.get(instance)
            if facts is not None:
                found = CodedInstance.from_coded_facts(facts)
            else:
                grouped: Dict[int, list] = {}
                for fact in instance:
                    relation, codes, _ = self.encode_fact(fact)
                    grouped.setdefault(relation, []).append(codes)
                found = CodedInstance(
                    {relation: tuple(codes) for relation, codes in
                     grouped.items()})
            self._coded[instance] = found
        return found

    def coded_fact_set(self, instance: Instance) -> FrozenSet[CodedFact]:
        """The instance as coded facts, without materializing the full
        :class:`CodedInstance` (per-relation grouping and join indexes are
        only needed by evaluation — the wire codec just needs identities).
        """
        found = self._coded_facts.get(instance)
        if found is None:
            coded = self._coded.get(instance)
            if coded is not None:
                found = coded.fact_set()
            else:
                found = frozenset(
                    self.encode_fact(fact)[:2] for fact in instance)
            self._coded_facts[instance] = found
        return found

    def intern_instance(self, facts: Iterable[Fact]) -> Instance:
        """The shared :class:`Instance` for a fact set.

        Revisited successors return the same object — its hash, active
        domain, and per-position indexes are computed once per distinct
        instance instead of once per arrival.
        """
        coded = frozenset(self.encode_fact(fact)[:2] for fact in facts)
        return self._intern_coded_instance(coded)

    def _intern_coded_instance(self, coded: FrozenSet[CodedFact]) -> Instance:
        found = self._instances.get(coded)
        if found is None:
            found = Instance._trusted(frozenset(
                self.intern_fact(relation, codes)
                for relation, codes in coded))
            self._instances[coded] = found
            # The CodedInstance (grouping + indexes) is built lazily by
            # encode_instance when evaluation first needs it.
            self._coded_facts[found] = coded
            self.stats["instances_interned"] += 1
        else:
            self.stats["instance_reuses"] += 1
        return found

    # -- the hot-path operations --------------------------------------------

    def legal_substitution_items(
        self, rule, params: Tuple[Param, ...], instance: Instance
    ) -> Optional[Tuple[SigmaItems, ...]]:
        """Compiled twin of ``execution._legal_subs_cached``.

        Returns the legal substitutions as ``(param, value)`` item tuples in
        declaration order, sorted like the reference; ``None`` requests the
        reference fallback.
        """
        context = self._rules.get(id(rule))
        if context is None or context.params != params:
            self.stats["fallbacks"] += 1
            return None
        found = context.by_instance.get(instance)
        if found is not None:
            return found
        self.stats["legal_evals"] += 1
        result = self._legal_eval(context, params, instance)
        context.by_instance[instance] = result
        return result

    def _legal_eval(self, context: _RuleContext, params: Tuple[Param, ...],
                    instance: Instance) -> Tuple[SigmaItems, ...]:
        """One rule evaluation, memo and counters left to the caller (the
        per-state entry above, or a dedup-group representative in
        :meth:`warm_legal_substitutions`)."""
        plan = context.plan
        coded = self.encode_instance(instance)
        domain = plan.domain(coded, self.table, self.initial_adom_codes)
        if not params:
            regs = plan.fresh_regs()
            return ((),) if plan.has_binding(coded, regs, domain) else ()
        answer_slots = context.answer_slots
        matrix = vector.binding_matrix(plan, coded, domain,
                                       stats=self.vector_stats)
        if matrix is not None:
            self.vector_stats["legal_evals"] += 1
            bindings = vector.distinct_projection(matrix, answer_slots)
        else:
            regs = plan.fresh_regs()
            seen = set()
            bindings = []
            for extension in plan.iter_bindings(coded, regs, domain):
                key = tuple(extension[slot] for slot in answer_slots)
                if key not in seen:
                    seen.add(key)
                    bindings.append(key)
        return self._legal_result(context, params, bindings)

    def _legal_result(self, context: _RuleContext,
                      params: Tuple[Param, ...],
                      bindings: List[Tuple[int, ...]]
                      ) -> Tuple[SigmaItems, ...]:
        """Reference-ordered sigma items from answer-slot projections (any
        input order: the two stable sorts are total over distinct keys)."""
        table = self.table
        sort_key = table.sort_key
        bindings.sort(key=lambda key: tuple(
            sort_key(code) for code in key))
        bindings.sort(key=lambda key: tuple(
            sort_key(key[position])
            for position in context.param_positions))
        term = table.term
        return tuple(
            tuple((param, term(key[position]))
                  for param, position in zip(params,
                                             context.param_positions))
            for key in bindings)

    def ground_effect(
        self, effect, sigma_items: SigmaItems, instance: Instance
    ) -> Optional[FrozenSet[Fact]]:
        """Compiled twin of ``execution._ground_effect_cached``."""
        context = self._effects.get(id(effect))
        if context is None:
            self.stats["fallbacks"] += 1
            return None
        sigma_context = context.sigmas.get(sigma_items)
        if sigma_context is None:
            sigma_context = self._bind_sigma(context, sigma_items)
            sigma_context.by_instance = self._budget_memo(
                sigma_context.by_instance)
            context.sigmas[sigma_items] = sigma_context
        found = sigma_context.by_instance.get(instance)
        if found is not None:
            return found
        self.stats["effect_evals"] += 1
        result = self._effect_eval(context, sigma_context, instance)
        sigma_context.by_instance[instance] = result
        return result

    def _effect_eval(self, context: _EffectContext,
                     sigma_context: _SigmaContext, instance: Instance
                     ) -> FrozenSet[Fact]:
        """One effect grounding, memo and counters left to the caller."""
        body = context.body
        coded = self.encode_instance(instance)
        domain = body.domain(coded, self.table, sigma_context.extra)
        bindings = None
        matrix = vector.binding_matrix(body, coded, domain,
                                       regs=sigma_context.regs,
                                       stats=self.vector_stats)
        if matrix is not None:
            self.vector_stats["effect_evals"] += 1
            bindings = self._matrix_bindings(sigma_context, body, matrix)
        if bindings is None:
            bindings = body.iter_bindings(
                coded, sigma_context.regs.copy(), domain)
        return self._produce_facts(sigma_context, bindings)

    def _matrix_bindings(self, sigma_context: _SigmaContext,
                         body: CompiledQuery, matrix):
        """Binding rows for head resolution from a vector answer matrix."""
        if not len(matrix):
            return ()
        if sigma_context.needed_slots:
            # Re-inflate each distinct projection to a sparse register
            # list so head resolution reads slots as usual.
            n_slots = body.n_slots
            needed = sigma_context.needed_slots
            bindings = []
            for row in vector.distinct_projection(matrix, needed):
                binding = [UNBOUND] * n_slots
                for slot, code in zip(needed, row):
                    binding[slot] = code
                bindings.append(binding)
            return bindings
        # Head is fully ground; any binding produces it.
        return (sigma_context.regs,)

    def _produce_facts(self, sigma_context: _SigmaContext, bindings
                       ) -> FrozenSet[Fact]:
        """Resolve the sigma-bound head over every binding row."""
        produced: set = set()
        add = produced.add
        intern_fact = self.intern_fact
        for binding in bindings:
            for relation, specs, ready in sigma_context.head:
                if ready is not None:
                    add(ready)
                    continue
                codes = []
                for spec in specs:
                    kind = spec[0]
                    if kind == "c":
                        codes.append(spec[1])
                    elif kind == "v":
                        code = binding[spec[1]]
                        if code == UNBOUND:
                            raise ExecutionError(
                                f"head term {spec!r} not grounded by "
                                f"sigma/theta")
                        codes.append(code)
                    else:
                        codes.append(self._resolve_head(spec, binding))
                add(intern_fact(relation, tuple(codes)))
        return frozenset(produced)

    def _bind_sigma(self, context: _EffectContext,
                    sigma_items: SigmaItems) -> _SigmaContext:
        """Pre-resolve one parameter substitution against an effect."""
        body = context.body
        sigma = dict(sigma_items)
        missing = [param for param in body.params if param not in sigma]
        if missing:
            raise IllegalParameters(
                f"effect body still has parameters "
                f"{sorted(missing, key=repr)} after substitution")
        table = self.table
        sigma_codes = {param: table.code(sigma[param])
                       for param in body.params}
        regs = body.fresh_regs()
        for param, code in sigma_codes.items():
            regs[body.param_slots[param]] = code
        # The reference substitutes sigma into the body first, so parameter
        # values occurring in the formula count as constants of the
        # evaluation domain.
        extra = self.initial_adom_codes | frozenset(sigma_codes.values())
        head = []
        for relation, specs in context.head_specs:
            resolved = tuple(self._apply_sigma(spec, sigma)
                             for spec in specs)
            ready = None
            if all(spec[0] == "c" for spec in resolved):
                ready = self.intern_fact(
                    relation, tuple(spec[1] for spec in resolved))
            head.append((relation, resolved, ready))
        return _SigmaContext(regs, extra, tuple(head))

    def _apply_sigma(self, spec, sigma: Dict[Param, Any]):
        kind = spec[0]
        if kind == "p":
            return ("c", self.table.code(sigma[spec[1]]))
        if kind == "call":
            _, function, args = spec
            resolved = tuple(self._apply_sigma(arg, sigma) for arg in args)
            if all(arg[0] == "c" for arg in resolved):
                return ("c", self.intern_call(
                    function, tuple(arg[1] for arg in resolved)))
            return ("call", function, resolved)
        return spec

    def _resolve_head(self, spec, binding: List[int]) -> int:
        kind = spec[0]
        if kind == "c":
            return spec[1]
        if kind == "v":
            code = binding[spec[1]]
            if code == UNBOUND:
                raise ExecutionError(
                    f"head term {spec!r} not grounded by sigma/theta")
            return code
        if kind == "call":
            _, function, args = spec
            return self.intern_call(function, tuple(
                self._resolve_head(arg, binding) for arg in args))
        # kind == "u": a variable the body never binds.
        raise ExecutionError(
            f"head term {spec[1]!r} not grounded by sigma/theta")

    def do_action_instance(self, action, sigma_items: SigmaItems,
                           instance: Instance, fallback
                           ) -> Optional[Instance]:
        """``DO(I, alpha sigma)`` with per-(sigma, instance) sharing.

        The same pending instance recurs whenever isomorphic regions of the
        state space replay an action; sharing the object keeps its
        service-call set and coded form warm across all of them.
        ``fallback`` computes one effect's facts the reference way when that
        effect could not be compiled; an action object the kernel has never
        indexed returns ``None`` (caller takes the reference path).
        """
        context = self._actions.get(id(action))
        if context is None:
            return None
        key = (sigma_items, instance)
        found = context.by_key.get(key)
        if found is not None:
            return found
        produced: set = set()
        for effect in context.effects:
            facts = self.ground_effect(effect, sigma_items, instance)
            if facts is None:
                facts = fallback(effect)
            produced.update(facts)
        pending = Instance._trusted(frozenset(produced))
        context.by_key[key] = pending
        return pending

    # -- the frontier-batch tier ---------------------------------------------

    def _plan_reads(self, plan: CompiledQuery) -> Tuple[tuple, bool]:
        """``(relations read, uses evaluation domain)`` of a plan.

        The answer set of a compiled plan over an instance is a function
        of exactly these inputs: the contents of the relations its atoms
        read, plus — only when some node enumerates or tests the
        evaluation domain (equality enumeration, ``_pad`` under
        negation/universals/disjunction branches, vacuous ``Exists``) —
        the domain itself. ``uses_domain`` is conservative (node presence,
        not reachability), which can only shrink dedup groups, never
        corrupt them.
        """
        found = self._plan_reads_memo.get(id(plan))
        if found is None:
            relations: set = set()
            uses_domain = False
            stack = [plan.root]
            while stack:
                node = stack.pop()
                if isinstance(node, _Atom):
                    relations.add(node.relation)
                elif isinstance(node, _And):
                    stack.extend(node.ordered)
                elif isinstance(node, _Or):
                    uses_domain = True
                    stack.extend(sub for sub, _ in node.children)
                elif isinstance(node, _Not):
                    uses_domain = True
                    stack.append(node.sub)
                elif isinstance(node, _Forall):
                    uses_domain = True
                    stack.append(node.neg_exists)
                elif isinstance(node, _Exists):
                    if node.vacuous:
                        uses_domain = True
                    stack.append(node.sub)
                elif isinstance(node, _Eq):
                    uses_domain = True
            found = (tuple(sorted(relations)), uses_domain)
            self._plan_reads_memo[id(plan)] = found
        return found

    def _group_key(self, plan: CompiledQuery, coded: CodedInstance,
                   domain: FrozenSet[int]) -> tuple:
        """Cross-state dedup key: frontier siblings whose instances agree
        on the plan's read relations (as fact sets — block tuple order is
        interning-history dependent) share one evaluation."""
        relations, uses_domain = self._plan_reads(plan)
        key = tuple(frozenset(coded.by_relation.get(relation, ()))
                    for relation in relations)
        if uses_domain:
            return key + (domain,)
        return key

    def _warm_plan(self, plan: CompiledQuery, regs: Optional[List[int]],
                   extra: FrozenSet[int], memo: dict,
                   instances: Iterable[Instance], convert, evaluate,
                   stat_key: str) -> None:
        """Fill ``memo`` for every not-yet-memoized instance in one pass.

        Instances are grouped by :meth:`_group_key`; one representative
        per group is evaluated — all representatives in a single
        :func:`vector.binding_matrix_batch` call when the backend
        cooperates (``convert`` maps each per-group answer split to the
        memo value), else per representative via ``evaluate`` (the same
        pure evaluator the per-state entry uses). Results fan out to every
        group member, bumping the per-state counter ``stat_key`` once per
        member so batch-on and batch-off report identical kernel stats.
        """
        todo = [instance for instance in dict.fromkeys(instances)
                if instance not in memo]
        if not todo:
            return
        groups: "OrderedDict[tuple, List[Instance]]" = OrderedDict()
        domains: Dict[tuple, FrozenSet[int]] = {}
        for instance in todo:
            coded = self.encode_instance(instance)
            domain = plan.domain(coded, self.table, extra)
            key = self._group_key(plan, coded, domain)
            members = groups.get(key)
            if members is None:
                groups[key] = [instance]
                domains[key] = domain
            else:
                members.append(instance)
        keys = list(groups)
        self.batch_stats["unique_groups"] += len(keys)
        matrix = vector.binding_matrix_batch(
            plan, [self.encode_instance(groups[key][0]) for key in keys],
            [domains[key] for key in keys], regs=regs,
            stats=self.vector_stats)
        if matrix is not None:
            splits = vector.split_by_group(matrix, len(keys), plan.n_slots)
            results = [convert(split) for split in splits]
        else:
            self.batch_stats["fallbacks"] += 1
            results = [evaluate(groups[key][0]) for key in keys]
        for key, result in zip(keys, results):
            members = groups[key]
            for member in members:
                self.stats[stat_key] += 1
                memo[member] = result
            self.batch_stats["warmed_entries"] += len(members)
            self.batch_stats["dedup_hits"] += len(members) - 1

    def warm_legal_substitutions(self, rule, params: Tuple[Param, ...],
                                 instances: Iterable[Instance]) -> None:
        """Batch twin of :meth:`legal_substitution_items` over a frontier
        block: one columnar pass fills the same per-instance memo the
        per-state entry reads, so the later per-state calls are hits and
        results stay bit-identical by construction. A no-op for rules the
        kernel could not compile (the per-state calls fall back to the
        reference path exactly as without batching)."""
        context = self._rules.get(id(rule))
        if context is None or context.params != params \
                or env.batch_disabled():
            return

        def convert(split):
            if not params:
                return ((),) if len(split) else ()
            return self._legal_result(
                context, params,
                vector.distinct_projection(split, context.answer_slots))

        self._warm_plan(
            context.plan, None, self.initial_adom_codes,
            context.by_instance, instances, convert,
            lambda instance: self._legal_eval(context, params, instance),
            "legal_evals")

    def warm_ground_effects(self, effect, sigma_items: SigmaItems,
                            instances: Iterable[Instance]) -> None:
        """Batch twin of :meth:`ground_effect` over the frontier states
        sharing one ``(effect, sigma)``; same memo-warming contract as
        :meth:`warm_legal_substitutions`."""
        context = self._effects.get(id(effect))
        if context is None or env.batch_disabled():
            return
        sigma_context = context.sigmas.get(sigma_items)
        if sigma_context is None:
            try:
                sigma_context = self._bind_sigma(context, sigma_items)
            except IllegalParameters:
                return  # the per-state call raises where batch-off would
            sigma_context.by_instance = self._budget_memo(
                sigma_context.by_instance)
            context.sigmas[sigma_items] = sigma_context

        def convert(split):
            return self._produce_facts(
                sigma_context,
                self._matrix_bindings(sigma_context, context.body, split))

        self._warm_plan(
            context.body, sigma_context.regs, sigma_context.extra,
            sigma_context.by_instance, instances, convert,
            lambda instance: self._effect_eval(
                context, sigma_context, instance),
            "effect_evals")

    def note_batch_block(self, n_states: int, thin: bool) -> None:
        """Record one frontier block offered to the batch tier."""
        if thin:
            self.batch_stats["thin_blocks"] += 1
            return
        self.batch_stats["blocks"] += 1
        if n_states > self.batch_stats["block_states_peak"]:
            self.batch_stats["block_states_peak"] = n_states

    def evaluate_calls(
        self, pending: Instance, evaluation: Dict[ServiceCall, Any],
        check_constraints: bool = True,
    ) -> Tuple[bool, Optional[Instance]]:
        """Compiled twin of ``execution.evaluate_calls`` (after the
        missing-call check): returns ``(handled, instance-or-None)`` where
        an unhandled result requests the reference fallback."""
        if check_constraints and self._constraints is None:
            self.stats["fallbacks"] += 1
            return (False, None)
        self.stats["evaluate_calls"] += 1
        table = self.table
        code = table.code
        mapping = {code(call): code(value)
                   for call, value in evaluation.items()}
        memo_key = (pending, tuple(sorted(mapping.items())),
                    check_constraints)
        found = self._eval_memo.get(memo_key)
        if found is not None:
            return found
        entries = self._pending_entries.get(pending)
        if entries is None:
            entries = tuple(self.encode_fact(fact) for fact in pending)
            self._pending_entries[pending] = entries
        get = mapping.get
        coded_facts = set()
        for relation, codes, has_call in entries:
            if has_call:
                codes = tuple(get(c, c) for c in codes)
            coded_facts.add((relation, codes))
        result: Tuple[bool, Optional[Instance]] = (True, None)
        violated = False
        if check_constraints and self._constraints:
            coded = CodedInstance.from_coded_facts(coded_facts)
            for constraint in self._constraints:
                if not constraint.satisfied(coded, table,
                                            self.initial_adom_codes,
                                            self.vector_stats):
                    violated = True
                    break
        if not violated:
            result = (True,
                      self._intern_coded_instance(frozenset(coded_facts)))
        self._eval_memo[memo_key] = result
        return result

    def canonical_renaming(
        self, instance: Instance, call_map: tuple = (),
        names: Optional[tuple] = None,
    ) -> Optional[Dict[Any, Any]]:
        """Canonical renaming of a state's *dead history* (Lemma C.2).

        Movable values are those of the call map outside both the
        specification's known constants and ``ADOM(I)`` — the dead
        history. They are renamed to ``Fresh(0), Fresh(1), ...``
        (skipping indexes live or fixed values occupy) so that two states
        whose isomorphism fixes the shared live part get *equal* images.
        Live values are never renamed: the representative's database
        equals its members' and value identity along quotient edges stays
        real — renaming live values would manufacture persistence between
        unrelated values across an edge, which µLP observes (see
        :mod:`repro.engine.symmetry`). The call map contributes
        pseudo-facts ``(function, args..., result)`` to the coded
        structure, so the refinement sees the full ``<I, M>`` shape.

        ``names`` replaces the default fresh-name minting with a closed
        canonical name universe: finite-pool semantics must keep
        representatives *inside* the pool, so their reducer passes the
        sorted movable pool values (see
        ``SuccessorGenerator.symmetry_values``); names already live in
        ``ADOM(I)`` are skipped per state.

        Runs :func:`~repro.relational.coding.coded_canonical_order` over
        int-tuple arrays and is memoized per kernel like facts/instances.
        Returns ``None`` when the state holds unevaluated service calls
        (callers fall back to the object-level path in
        :mod:`repro.relational.isomorphism`; whether a state holds calls
        is isomorphism-invariant, so every member of a class takes the
        same path).
        """
        key = (instance, call_map, names)
        found = self._canonical_memo.get(key)
        if found is not None:
            self.stats["canonical_memo_hits"] += 1
            return found
        table = self.table
        fixed = self.known_constant_codes
        facts: List[Tuple[tuple, Tuple[int, ...]]] = []
        adom_codes = set()
        history_codes = set()

        for fact in instance:
            relation, codes, has_call = self.encode_fact(fact)
            if has_call:
                return None
            facts.append((("r", table.term(relation)), codes))
            adom_codes.update(codes)
        for call, value in call_map:
            if not is_value(value) \
                    or any(not is_value(arg) for arg in call.args):
                return None
            codes = tuple(table.code(arg) for arg in call.args) \
                + (table.code(value),)
            facts.append((("c", call.function), codes))
            history_codes.update(codes)

        movable = history_codes - adom_codes - fixed
        if not movable:
            self._canonical_memo[key] = {}
            return {}
        self.stats["canonical_evals"] += 1
        ordered = coded_canonical_order(
            facts, sorted(movable, key=table.sort_key), table.sort_key)
        renaming: Dict[Any, Any] = {}
        if names is not None:
            # Pool universe: dead values become the canonically smallest
            # pool names not occupied by live values.
            available = [name for name in names
                         if table.code(name) not in adom_codes]
            if len(ordered) > len(available):
                raise ExecutionError(
                    f"state holds {len(ordered)} movable values but only "
                    f"{len(available)} canonical names are free")
            for position, code in enumerate(ordered):
                renaming[table.term(code)] = available[position]
        else:
            # Fresh minting skips every index a live or fixed Fresh value
            # occupies — fixed ones even when absent from the state (same
            # discipline as canonical_form's reserved set).
            reserved = set(self._fixed_fresh_indexes)
            reserved.update(
                table.term(code).index for code in adom_codes
                if isinstance(table.term(code), Fresh))
            index = 0
            for code in ordered:
                while index in reserved:
                    index += 1
                renaming[table.term(code)] = Fresh(index)
                index += 1
        self._canonical_memo[key] = renaming
        return renaming

    def canonical_instance_renaming(
        self, instance: Instance
    ) -> Optional[Dict[Any, Fresh]]:
        """Full canonical renaming of a bare instance.

        Every non-fixed active-domain value is movable and renamed to
        ``Fresh(0), Fresh(1), ...`` — the kernel-coded twin of
        :func:`repro.relational.isomorphism.canonical_form`: equal images
        for exactly the instances isomorphic via a bijection fixing the
        known constants (pinned against ``iter_isomorphisms`` ground truth
        by the property tests). This is the comparison/interning primitive;
        quotient-mode *states* use :meth:`canonical_renaming` instead,
        which must keep live values in place.

        Returns ``None`` when the instance holds unevaluated calls
        (object-level fallback).
        """
        key = ("full", instance)
        found = self._canonical_memo.get(key)
        if found is not None:
            self.stats["canonical_memo_hits"] += 1
            return found
        table = self.table
        fixed = self.known_constant_codes
        facts: List[Tuple[tuple, Tuple[int, ...]]] = []
        movable = set()
        reserved = set(self._fixed_fresh_indexes)
        for fact in instance:
            relation, codes, has_call = self.encode_fact(fact)
            if has_call:
                return None
            facts.append((("r", table.term(relation)), codes))
            for code in codes:
                if code not in fixed:
                    movable.add(code)
        self.stats["canonical_evals"] += 1
        ordered = coded_canonical_order(
            facts, sorted(movable, key=table.sort_key), table.sort_key)
        renaming: Dict[Any, Fresh] = {}
        index = 0
        for code in ordered:
            while index in reserved:
                index += 1
            renaming[table.term(code)] = Fresh(index)
            index += 1
        self._canonical_memo[key] = renaming
        return renaming

    def successor_memo(self, key) -> dict:
        """A per-configuration successor cache for pure generators.

        A ``parallel_safe`` generator's successor list is a pure function
        of the state, so repeated constructions (validation runs,
        benchmarks, bisimulation arenas) replay it from here instead of
        re-grounding. Keyed by the generator's configuration; entries hold
        the exact ``(state, instance, label)`` tuples previously yielded.
        """
        memo = self._successor_memos.get(key)
        if memo is None:
            memo = self._budget_memo({})
            self._successor_memos[key] = memo
        return memo

    def stats_dict(self) -> Dict[str, int]:
        return dict(self.stats)

    def vector_stats_dict(self) -> Dict[str, Any]:
        found: Dict[str, Any] = dict(self.vector_stats)
        found["enabled"] = vector.vector_enabled()
        return found

    def batch_stats_dict(self) -> Dict[str, Any]:
        found: Dict[str, Any] = dict(self.batch_stats)
        found["enabled"] = not env.batch_disabled()
        return found
