"""Instance isomorphism and canonical forms.

Two instances are isomorphic when some bijection between their active domains
maps one onto the other. The paper's abstractions identify states up to
isomorphisms that *fix* the constants of the initial instance ``ADOM(I0)``
(Lemma C.2), so all entry points take a ``fixed`` set of values that must map
to themselves.

``iter_isomorphisms`` is a backtracking search pruned by occurrence profiles.
``canonical_form`` is an individualization–refinement canonical labeling
(colour refinement over the fact hypergraph, branching over a minimal colour
class); two instances get the same canonical key iff they are isomorphic via
a bijection fixing ``fixed``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.relational.instance import Fact, Instance
from repro.relational.values import Fresh
from repro.utils import sorted_values, value_sort_key


def _value_profile(instance: Instance) -> Dict[Any, tuple]:
    """Occurrence profile of each active-domain value.

    The profile of ``v`` is the sorted multiset of ``(relation, position)``
    pairs where ``v`` occurs. Isomorphisms preserve profiles, so values may
    only be matched to equal-profile values.
    """
    occurrences: Dict[Any, List[tuple]] = {}
    for current in instance:
        for position, term in enumerate(current.terms):
            occurrences.setdefault(term, []).append(
                (current.relation, position))
    return {value: tuple(sorted(places))
            for value, places in occurrences.items()
            if value in instance.active_domain()}


def find_isomorphism(
    first: Instance,
    second: Instance,
    fixed: Iterable[Any] = (),
    partial: Optional[Dict[Any, Any]] = None,
) -> Optional[Dict[Any, Any]]:
    """Find a bijection ``h`` with ``first.rename(h) == second``.

    ``h`` is total on ``ADOM(first)``, injective, fixes every value in
    ``fixed`` that occurs in ``first``, and extends ``partial`` where given.
    Returns ``None`` when no such bijection exists.
    """
    for found in iter_isomorphisms(first, second, fixed, partial):
        return found
    return None


def are_isomorphic(first: Instance, second: Instance,
                   fixed: Iterable[Any] = ()) -> bool:
    """True when some isomorphism (fixing ``fixed``) exists."""
    return find_isomorphism(first, second, fixed) is not None


def iter_isomorphisms(
    first: Instance,
    second: Instance,
    fixed: Iterable[Any] = (),
    partial: Optional[Dict[Any, Any]] = None,
) -> Iterator[Dict[Any, Any]]:
    """Enumerate all isomorphisms from ``first`` onto ``second``.

    Used by the bisimulation checkers, which must consider every way of
    matching up the two states' values.
    """
    if first.signature() != second.signature():
        return
    fixed = set(fixed)
    adom1 = sorted_values(first.active_domain())
    adom2 = set(second.active_domain())
    if len(adom1) != len(adom2):
        return

    profile1 = _value_profile(first)
    profile2 = _value_profile(second)

    assignment: Dict[Any, Any] = {}
    if partial:
        for source, target in partial.items():
            if source in first.active_domain():
                if target not in adom2:
                    return
                assignment[source] = target
    for value in fixed:
        if value in first.active_domain():
            if value not in adom2:
                return
            if assignment.get(value, value) != value:
                return
            assignment[value] = value

    # Injectivity and profile compatibility of the seed assignment.
    if len(set(assignment.values())) != len(assignment):
        return
    for source, target in assignment.items():
        if profile1.get(source) != profile2.get(target):
            return

    todo = [value for value in adom1 if value not in assignment]
    # Most-constrained-first: fewer candidates => earlier pruning.
    candidates_of = {
        value: [other for other in sorted_values(adom2)
                if profile2.get(other) == profile1.get(value)]
        for value in todo}
    todo.sort(key=lambda value: len(candidates_of[value]))

    facts2 = second.facts

    def consistent(mapping: Dict[Any, Any]) -> bool:
        """Every fully mapped fact of ``first`` must exist in ``second``."""
        for current in first:
            if all(term in mapping for term in current.terms):
                image = Fact(current.relation,
                             tuple(mapping[term] for term in current.terms))
                if image not in facts2:
                    return False
        return True

    def search(index: int) -> Iterator[Dict[Any, Any]]:
        if index == len(todo):
            if first.rename(assignment) == second:
                yield dict(assignment)
            return
        value = todo[index]
        used = set(assignment.values())
        for candidate in candidates_of[value]:
            if candidate in used:
                continue
            assignment[value] = candidate
            if consistent(assignment):
                yield from search(index + 1)
            del assignment[value]

    yield from search(0)


# ---------------------------------------------------------------------------
# Canonical labeling via individualization-refinement
# ---------------------------------------------------------------------------

def _refine(instance: Instance, coloring: Dict[Any, tuple]) -> Dict[Any, tuple]:
    """Colour refinement (1-WL on the fact hypergraph) to a fixpoint.

    The new colour of a value is its old colour plus the sorted multiset of
    its fact contexts, where a context records the relation, the value's
    position, and the old colours of the co-occurring terms.
    """
    current = dict(coloring)
    while True:
        contexts: Dict[Any, List[tuple]] = {value: [] for value in current}
        for fact_ in instance:
            term_colors = tuple(
                current.get(term, ("call", repr(term)))
                for term in fact_.terms)
            for position, term in enumerate(fact_.terms):
                if term in contexts:
                    contexts[term].append(
                        (fact_.relation, position, term_colors))
        refined = {value: (current[value], tuple(sorted(contexts[value])))
                   for value in current}
        # Compress colours to bounded size (rank within the sorted distinct
        # colours) so nested tuples do not grow exponentially across rounds.
        distinct = sorted({repr(color) for color in refined.values()})
        rank = {color_repr: position
                for position, color_repr in enumerate(distinct)}
        compressed = {value: ("c", rank[repr(color)])
                      for value, color in refined.items()}
        # Stabilize: stop when the partition induced by colours is unchanged.
        if _partition_of(current) == _partition_of(compressed):
            return current
        current = compressed


def _partition_of(coloring: Dict[Any, tuple]) -> frozenset:
    groups: Dict[tuple, set] = {}
    for value, color in coloring.items():
        groups.setdefault(color, set()).add(value)
    return frozenset(
        frozenset(members) for members in groups.values())


def canonical_form(
    instance: Instance, fixed: Iterable[Any] = ()
) -> Tuple[Instance, Dict[Any, Any]]:
    """Canonical labeling of an instance.

    Non-fixed active-domain values are renamed to ``Fresh(0), Fresh(1), ...``
    so that the sorted fact list of the result is lexicographically minimal
    over all renamings explored by individualization-refinement. Two
    instances have equal canonical forms iff they are isomorphic via a
    bijection fixing ``fixed``.

    Returns ``(canonical_instance, renaming)``.
    """
    fixed = set(fixed)
    adom = instance.active_domain()
    movable = sorted_values(value for value in adom if value not in fixed)
    if not movable:
        return instance, {}

    # Canonical names must not collide with fixed values that happen to be
    # Fresh already (canonicalizing an already-canonical state, or a fixed
    # Fresh constant currently absent from the instance — renaming a
    # movable value onto an absent fixed value would merge instances no
    # bijection fixing ``fixed`` relates).
    reserved = {value.index for value in fixed
                if isinstance(value, Fresh)}
    names: List[Fresh] = []
    index = 0
    while len(names) < len(movable):
        if index not in reserved:
            names.append(Fresh(index))
        index += 1

    base_coloring: Dict[Any, tuple] = {}
    for value in adom:
        if value in fixed:
            base_coloring[value] = ("fixed", value_sort_key(value))
        else:
            base_coloring[value] = ("movable",)

    best_key: List[Optional[tuple]] = [None]
    best_renaming: List[Dict[Any, Any]] = [{}]

    def leaf(order: List[Any]) -> None:
        renaming = {value: names[i] for i, value in enumerate(order)}
        renamed = instance.rename(renaming)
        key = tuple(f.sort_key() for f in renamed.sorted_facts())
        if best_key[0] is None or key < best_key[0]:
            best_key[0] = key
            best_renaming[0] = renaming

    def search(coloring: Dict[Any, tuple], order: List[Any]) -> None:
        refined = _refine(instance, coloring)
        unassigned = [value for value in movable if value not in order]
        if not unassigned:
            leaf(order)
            return
        # Pick the colour class with the lexicographically smallest colour
        # (colour structures are nested tuples of strings/ints and therefore
        # comparable via repr, which is isomorphism-invariant).
        groups: Dict[str, List[Any]] = {}
        for value in unassigned:
            groups.setdefault(repr(refined[value]), []).append(value)
        target_color = min(groups)
        cell = groups[target_color]
        if len(cell) == 1:
            # No branching needed; individualize the unique member.
            chosen = cell[0]
            next_coloring = dict(refined)
            next_coloring[chosen] = ("assigned", len(order))
            search(next_coloring, order + [chosen])
            return
        for chosen in sorted_values(cell):
            next_coloring = dict(refined)
            next_coloring[chosen] = ("assigned", len(order))
            search(next_coloring, order + [chosen])

    search(base_coloring, [])
    renaming = best_renaming[0]
    return instance.rename(renaming), renaming


def canonical_key(instance: Instance, fixed: Iterable[Any] = ()) -> tuple:
    """A hashable key equal for exactly the ``fixed``-isomorphic instances."""
    canonical, _ = canonical_form(instance, fixed)
    return tuple(f.sort_key() for f in canonical.sorted_facts())


def state_canonical_renaming(
    instance: Instance, call_map: tuple = (), fixed: Iterable[Any] = (),
    names: Optional[tuple] = None,
) -> Dict[Any, Any]:
    """Canonical renaming of a state's *dead history* values.

    Each call-map entry contributes a pseudo-fact
    ``__call__:f(args..., result)`` to an auxiliary instance, so the
    canonical labeling sees the full ``<I, M>`` shape. Movable values are
    those of the history outside both ``fixed`` and ``ADOM(I)`` — live
    values are pinned alongside the constants, so the representative's
    database equals its members' and value identity along quotient edges
    stays real (renaming live values would manufacture persistence
    between unrelated values, which µLP observes — see
    :mod:`repro.engine.symmetry`). ``names`` substitutes a closed
    canonical name universe for the default ``Fresh(0), Fresh(1), ...``
    minting — the finite-pool semantics keep representatives inside the
    pool this way; names already live in ``ADOM(I)`` are skipped. The
    object-level twin of
    :meth:`repro.relational.kernel.RelationalKernel.canonical_renaming`
    (used when the kernel is disabled or the state has uncoded structure).
    """
    if not call_map:
        return {}
    pseudo = [Fact(f"__call__:{call.function}",
                   tuple(call.args) + (value,))
              for call, value in call_map]
    aux = Instance._trusted(instance.facts | frozenset(pseudo))
    adom = instance.active_domain()
    _, renaming = canonical_form(aux, frozenset(fixed) | adom)
    if names is None:
        return renaming
    # canonical_form assigns increasing Fresh indexes along the canonical
    # order, so sorting by index recovers the order positions.
    ordered = sorted(renaming.items(), key=lambda item: item[1].index)
    available = [name for name in names if name not in adom]
    if len(ordered) > len(available):
        raise ValueError(
            f"state holds {len(ordered)} movable values but only "
            f"{len(available)} canonical names are free")
    return {value: available[position]
            for position, (value, _) in enumerate(ordered)}
