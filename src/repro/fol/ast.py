"""First-order formulas over a relational schema.

The AST covers the FO queries of the paper: relational atoms, equality,
boolean connectives, and quantifiers, all evaluated under the active-domain
semantics (footnote 3 of the paper). Formulas are immutable and hashable.

Terms inside formulas are values (constants), :class:`~repro.relational.Var`
variables, or :class:`~repro.relational.Param` action parameters. Service
calls never appear inside queries (the paper only allows them in effect
heads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Iterator, Mapping, Tuple

from repro.errors import FormulaError
from repro.relational.values import Param, Var, is_value, substitute_term


class Formula:
    """Base class for FO formulas."""

    __slots__ = ()

    # Connective sugar so formulas compose readably in gallery code:
    def __and__(self, other: "Formula") -> "Formula":
        return And.of(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or.of(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def implies(self, other: "Formula") -> "Formula":
        return Or.of(Not(self), other)

    # Shared API ------------------------------------------------------------

    def free_variables(self) -> FrozenSet[Var]:
        raise NotImplementedError

    def parameters(self) -> FrozenSet[Param]:
        return frozenset(
            term for term in self._terms() if isinstance(term, Param))

    def constants(self) -> FrozenSet[Any]:
        return frozenset(term for term in self._terms() if is_value(term))

    def relations(self) -> FrozenSet[str]:
        return frozenset(
            atom.relation for atom in self.atoms())

    def atoms(self) -> Iterator["Atom"]:
        """All relational atoms in the formula (including under negation)."""
        for child in self._children():
            yield from child.atoms()

    def substitute(self, substitution: Mapping[Any, Any]) -> "Formula":
        raise NotImplementedError

    def _terms(self) -> Iterator[Any]:
        for child in self._children():
            yield from child._terms()

    def _children(self) -> Tuple["Formula", ...]:
        return ()


@dataclass(frozen=True)
class TrueF(Formula):
    """The always-true formula."""

    def __repr__(self) -> str:
        return "true"

    def free_variables(self) -> FrozenSet[Var]:
        return frozenset()

    def substitute(self, substitution: Mapping[Any, Any]) -> "Formula":
        return self


@dataclass(frozen=True)
class FalseF(Formula):
    """The always-false formula."""

    def __repr__(self) -> str:
        return "false"

    def free_variables(self) -> FrozenSet[Var]:
        return frozenset()

    def substitute(self, substitution: Mapping[Any, Any]) -> "Formula":
        return self


TRUE = TrueF()
FALSE = FalseF()


@dataclass(frozen=True)
class Atom(Formula):
    """A relational atom ``R(t1, ..., tn)``."""

    relation: str
    terms: Tuple[Any, ...]

    def __repr__(self) -> str:
        inner = ", ".join(repr(term) for term in self.terms)
        return f"{self.relation}({inner})"

    def free_variables(self) -> FrozenSet[Var]:
        return frozenset(t for t in self.terms if isinstance(t, Var))

    def substitute(self, substitution: Mapping[Any, Any]) -> "Atom":
        return Atom(self.relation, tuple(
            substitute_term(term, substitution) for term in self.terms))

    def atoms(self) -> Iterator["Atom"]:
        yield self

    def _terms(self) -> Iterator[Any]:
        yield from self.terms


def atom(relation: str, *terms: Any) -> Atom:
    """Convenience constructor mirroring :func:`repro.relational.fact`."""
    return Atom(relation, tuple(terms))


@dataclass(frozen=True)
class Eq(Formula):
    """Equality between two terms."""

    left: Any
    right: Any

    def __repr__(self) -> str:
        return f"{self.left!r} = {self.right!r}"

    def free_variables(self) -> FrozenSet[Var]:
        return frozenset(t for t in (self.left, self.right)
                         if isinstance(t, Var))

    def substitute(self, substitution: Mapping[Any, Any]) -> "Eq":
        return Eq(substitute_term(self.left, substitution),
                  substitute_term(self.right, substitution))

    def _terms(self) -> Iterator[Any]:
        yield self.left
        yield self.right


def neq(left: Any, right: Any) -> Formula:
    """Inequality, as sugar for ``Not(Eq(...))``."""
    return Not(Eq(left, right))


@dataclass(frozen=True)
class Not(Formula):
    """Negation."""

    sub: Formula

    def __repr__(self) -> str:
        return f"~({self.sub!r})"

    def free_variables(self) -> FrozenSet[Var]:
        return self.sub.free_variables()

    def substitute(self, substitution: Mapping[Any, Any]) -> "Not":
        return Not(self.sub.substitute(substitution))

    def _children(self) -> Tuple[Formula, ...]:
        return (self.sub,)


@dataclass(frozen=True)
class And(Formula):
    """N-ary conjunction."""

    subs: Tuple[Formula, ...]

    @classmethod
    def of(cls, *subs: Formula) -> Formula:
        flattened = []
        for sub in subs:
            if isinstance(sub, And):
                flattened.extend(sub.subs)
            elif isinstance(sub, TrueF):
                continue
            else:
                flattened.append(sub)
        if not flattened:
            return TRUE
        if len(flattened) == 1:
            return flattened[0]
        return cls(tuple(flattened))

    def __repr__(self) -> str:
        return "(" + " & ".join(repr(sub) for sub in self.subs) + ")"

    def free_variables(self) -> FrozenSet[Var]:
        result: FrozenSet[Var] = frozenset()
        for sub in self.subs:
            result |= sub.free_variables()
        return result

    def substitute(self, substitution: Mapping[Any, Any]) -> Formula:
        return And.of(*(sub.substitute(substitution) for sub in self.subs))

    def _children(self) -> Tuple[Formula, ...]:
        return self.subs


@dataclass(frozen=True)
class Or(Formula):
    """N-ary disjunction."""

    subs: Tuple[Formula, ...]

    @classmethod
    def of(cls, *subs: Formula) -> Formula:
        flattened = []
        for sub in subs:
            if isinstance(sub, Or):
                flattened.extend(sub.subs)
            elif isinstance(sub, FalseF):
                continue
            else:
                flattened.append(sub)
        if not flattened:
            return FALSE
        if len(flattened) == 1:
            return flattened[0]
        return cls(tuple(flattened))

    def __repr__(self) -> str:
        return "(" + " | ".join(repr(sub) for sub in self.subs) + ")"

    def free_variables(self) -> FrozenSet[Var]:
        result: FrozenSet[Var] = frozenset()
        for sub in self.subs:
            result |= sub.free_variables()
        return result

    def substitute(self, substitution: Mapping[Any, Any]) -> Formula:
        return Or.of(*(sub.substitute(substitution) for sub in self.subs))

    def _children(self) -> Tuple[Formula, ...]:
        return self.subs


@dataclass(frozen=True)
class Exists(Formula):
    """Existential quantification over one or more variables."""

    variables: Tuple[Var, ...]
    sub: Formula

    def __post_init__(self):
        if not self.variables:
            raise FormulaError("Exists needs at least one variable")
        if len(set(self.variables)) != len(self.variables):
            raise FormulaError("duplicate quantified variable")

    def __repr__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"exists {names}. ({self.sub!r})"

    def free_variables(self) -> FrozenSet[Var]:
        return self.sub.free_variables() - frozenset(self.variables)

    def substitute(self, substitution: Mapping[Any, Any]) -> "Exists":
        shadowed = {key: value for key, value in substitution.items()
                    if key not in self.variables}
        return Exists(self.variables, self.sub.substitute(shadowed))

    def _children(self) -> Tuple[Formula, ...]:
        return (self.sub,)


@dataclass(frozen=True)
class Forall(Formula):
    """Universal quantification over one or more variables."""

    variables: Tuple[Var, ...]
    sub: Formula

    def __post_init__(self):
        if not self.variables:
            raise FormulaError("Forall needs at least one variable")
        if len(set(self.variables)) != len(self.variables):
            raise FormulaError("duplicate quantified variable")

    def __repr__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"forall {names}. ({self.sub!r})"

    def free_variables(self) -> FrozenSet[Var]:
        return self.sub.free_variables() - frozenset(self.variables)

    def substitute(self, substitution: Mapping[Any, Any]) -> "Forall":
        shadowed = {key: value for key, value in substitution.items()
                    if key not in self.variables}
        return Forall(self.variables, self.sub.substitute(shadowed))

    def _children(self) -> Tuple[Formula, ...]:
        return (self.sub,)


def exists(names: str, sub: Formula) -> Exists:
    """``exists("x y", phi)`` — variables given as a space-separated string."""
    return Exists(tuple(Var(name) for name in names.split()), sub)


def forall(names: str, sub: Formula) -> Forall:
    """``forall("x y", phi)`` — variables given as a space-separated string."""
    return Forall(tuple(Var(name) for name in names.split()), sub)


def _install_cached_hash(cls) -> None:
    """Replace the generated dataclass ``__hash__`` with a caching wrapper.

    Formula hashes are structural (recursive over the AST) and formulas are
    used as memoization keys throughout evaluation and execution; caching
    turns every hash after the first into a dict read.
    """
    generated = cls.__hash__

    def __hash__(self):
        cached = self.__dict__.get("_cached_hash")
        if cached is None:
            cached = generated(self)
            object.__setattr__(self, "_cached_hash", cached)
        return cached

    cls.__hash__ = __hash__


for _cls in (TrueF, FalseF, Atom, Eq, Not, And, Or, Exists, Forall):
    _install_cached_hash(_cls)


def is_positive_existential(formula: Formula) -> bool:
    """True for UCQ-shaped formulas: atoms/equality/true under &, |, exists."""
    if isinstance(formula, (Atom, Eq, TrueF, FalseF)):
        return True
    if isinstance(formula, (And, Or)):
        return all(is_positive_existential(sub) for sub in formula.subs)
    if isinstance(formula, Exists):
        return is_positive_existential(formula.sub)
    return False
