"""Compile FO formulas into join plans over integer-coded instances.

:mod:`repro.fol.evaluation` re-walks the formula AST with dict-valued
valuations at every state. The kernel instead compiles each formula of a
DCDS *once* into a :class:`CompiledQuery`: variables (and action parameters)
become register slots, constants become term codes, and evaluation is a
backtracking join over the per-relation int-tuple indexes of a
:class:`~repro.relational.coding.CodedInstance`.

Semantics contract
------------------
The compiled plan is observably equivalent to the reference evaluator (which
stays authoritative — the parity tests in ``tests/test_kernel.py`` pin the
two against each other):

* answers agree as *sets* of bindings over the free variables (enumeration
  order may differ; every consumer deduplicates, sorts, or checks
  existence);
* quantifiers and negation range over the same evaluation domain (active
  domain + formula constants + caller extras, with action-parameter values
  counted as constants exactly when the parameter occurs in the formula);
* the vacuous-quantifier rule over an empty domain is preserved.

Action parameters compile to pre-boundable slots, which subsumes both
reference behaviours: evaluated with the slot unbound they act like the
``@param`` variables of ``legal_substitutions``; pre-bound they act like the
constants the reference substitutes into effect bodies.

Anything the compiler cannot express (service calls inside formulas, exotic
nodes) raises :class:`CompileError`; the kernel then falls back to the
reference evaluator for that formula.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.errors import ReproError
from repro.fol.ast import (
    And, Atom, Eq, Exists, FalseF, Forall, Formula, Not, Or, TrueF)
from repro.relational.coding import UNBOUND, CodedInstance, TermTable
from repro.relational.values import Param, ServiceCall, Var

Regs = List[int]


class CompileError(ReproError):
    """The formula cannot be compiled; use the reference evaluator."""


def _pad(regs: Regs, slots: Tuple[int, ...],
         domain: FrozenSet[int]) -> Iterator[Regs]:
    """Extensions of ``regs`` assigning every unbound slot over ``domain``."""
    unbound = [slot for slot in slots if regs[slot] == UNBOUND]
    if not unbound:
        yield regs
        return
    stack = [(regs, 0)]
    while stack:
        current, index = stack.pop()
        if index == len(unbound):
            yield current
            continue
        slot = unbound[index]
        for value in domain:
            extended = current.copy()
            extended[slot] = value
            stack.append((extended, index + 1))


class _Node:
    """A compiled formula node.

    ``iter_bindings`` yields register lists extending ``regs`` (never
    mutating a yielded list in place — extensions are copies); ``holds``
    decides closed truth under ``regs`` without touching it.
    """

    __slots__ = ()

    def iter_bindings(self, coded: CodedInstance, regs: Regs,
                      domain: FrozenSet[int]) -> Iterator[Regs]:
        raise NotImplementedError

    def holds(self, coded: CodedInstance, regs: Regs,
              domain: FrozenSet[int]) -> bool:
        raise NotImplementedError


class _True(_Node):
    __slots__ = ()

    def iter_bindings(self, coded, regs, domain):
        yield regs

    def holds(self, coded, regs, domain):
        return True


class _False(_Node):
    __slots__ = ()

    def iter_bindings(self, coded, regs, domain):
        return iter(())

    def holds(self, coded, regs, domain):
        return False


class _Atom(_Node):
    """Specs are ``(True, code)`` for constants, ``(False, slot)`` for
    variables/parameters."""

    __slots__ = ("relation", "specs")

    def __init__(self, relation: int, specs: Tuple[Tuple[bool, int], ...]):
        self.relation = relation
        self.specs = specs

    def iter_bindings(self, coded, regs, domain):
        candidates = None
        for position, (is_const, value) in enumerate(self.specs):
            code = value if is_const else regs[value]
            if code != UNBOUND:
                candidates = coded.index(self.relation, position).get(code)
                if candidates is None:
                    return
                break
        if candidates is None:
            candidates = coded.tuples(self.relation)
        specs = self.specs
        for terms in candidates:
            extended: Optional[Regs] = None
            matched = True
            for (is_const, value), code in zip(specs, terms):
                if is_const:
                    if value != code:
                        matched = False
                        break
                else:
                    bound = regs[value] if extended is None \
                        else extended[value]
                    if bound == UNBOUND:
                        if extended is None:
                            extended = regs.copy()
                        extended[value] = code
                    elif bound != code:
                        matched = False
                        break
            if matched:
                yield extended if extended is not None else regs

    def holds(self, coded, regs, domain):
        resolved = []
        for is_const, value in self.specs:
            code = value if is_const else regs[value]
            if code == UNBOUND:
                # Mirrors the reference: a tuple containing an unbound
                # variable matches nothing.
                return False
            resolved.append(code)
        return coded.has(self.relation, tuple(resolved))


class _Eq(_Node):
    __slots__ = ("left", "right")

    def __init__(self, left: Tuple[bool, int], right: Tuple[bool, int]):
        self.left = left
        self.right = right

    def iter_bindings(self, coded, regs, domain):
        l_const, l_value = self.left
        r_const, r_value = self.right
        left = l_value if l_const else regs[l_value]
        right = r_value if r_const else regs[r_value]
        if left != UNBOUND and right != UNBOUND:
            if left == right:
                yield regs
            return
        if left != UNBOUND:  # bind the right slot
            extended = regs.copy()
            extended[r_value] = left
            yield extended
            return
        if right != UNBOUND:  # bind the left slot
            extended = regs.copy()
            extended[l_value] = right
            yield extended
            return
        for value in domain:  # both unbound: enumerate one side
            extended = regs.copy()
            extended[l_value] = value
            extended[r_value] = value
            yield extended

    def holds(self, coded, regs, domain):
        l_const, l_value = self.left
        r_const, r_value = self.right
        left = l_value if l_const else regs[l_value]
        right = r_value if r_const else regs[r_value]
        if left == UNBOUND or right == UNBOUND:
            # Reference resolves unbound variables to themselves: two
            # occurrences of the same variable are equal, nothing else is.
            return (not l_const and not r_const and left == UNBOUND
                    and right == UNBOUND and l_value == r_value)
        return left == right


class _And(_Node):
    """Conjunction with a compile-time greedy join order (see _order)."""

    __slots__ = ("ordered", "original")

    def __init__(self, ordered: Tuple[_Node, ...],
                 original: Tuple[_Node, ...]):
        self.ordered = ordered
        self.original = original

    def iter_bindings(self, coded, regs, domain):
        return self._chain(0, coded, regs, domain)

    def _chain(self, index, coded, regs, domain):
        if index == len(self.ordered):
            yield regs
            return
        following = index + 1
        for extended in self.ordered[index].iter_bindings(
                coded, regs, domain):
            yield from self._chain(following, coded, extended, domain)

    def holds(self, coded, regs, domain):
        return all(sub.holds(coded, regs, domain) for sub in self.original)


class _Or(_Node):
    """Each branch pads the free slots it does not bind (active-domain
    semantics of disjunction)."""

    __slots__ = ("children",)

    def __init__(self, children: Tuple[Tuple[_Node, Tuple[int, ...]], ...]):
        self.children = children

    def iter_bindings(self, coded, regs, domain):
        for sub, others in self.children:
            for extended in sub.iter_bindings(coded, regs, domain):
                yield from _pad(extended, others, domain)

    def holds(self, coded, regs, domain):
        return any(sub.holds(coded, regs, domain)
                   for sub, _ in self.children)


class _Not(_Node):
    __slots__ = ("sub", "free")

    def __init__(self, sub: _Node, free: Tuple[int, ...]):
        self.sub = sub
        self.free = free

    def iter_bindings(self, coded, regs, domain):
        for padded in _pad(regs, self.free, domain):
            if not self.sub.holds(coded, padded, domain):
                yield padded

    def holds(self, coded, regs, domain):
        return not self.sub.holds(coded, regs, domain)


class _Exists(_Node):
    """Quantified variables are alpha-renamed to private slots at compile
    time, so shadowing needs no runtime bookkeeping. ``vacuous`` marks a
    quantified variable that does not occur in the body: over an empty
    domain it has no witness, making the existential false (reference
    semantics)."""

    __slots__ = ("sub", "vacuous")

    def __init__(self, sub: _Node, vacuous: bool):
        self.sub = sub
        self.vacuous = vacuous

    def iter_bindings(self, coded, regs, domain):
        if self.vacuous and not domain:
            return
        # Private slots leak bound in the yielded registers; no other node
        # can read them (alpha-renaming), so no projection is needed.
        yield from self.sub.iter_bindings(coded, regs, domain)

    def holds(self, coded, regs, domain):
        if self.vacuous and not domain:
            return False
        for _ in self.sub.iter_bindings(coded, regs, domain):
            return True
        return False


class _Forall(_Node):
    __slots__ = ("neg_exists", "free")

    def __init__(self, neg_exists: _Exists, free: Tuple[int, ...]):
        self.neg_exists = neg_exists
        self.free = free

    def iter_bindings(self, coded, regs, domain):
        for padded in _pad(regs, self.free, domain):
            if not self.neg_exists.holds(coded, padded, domain):
                yield padded

    def holds(self, coded, regs, domain):
        return not self.neg_exists.holds(coded, regs, domain)


class CompiledQuery:
    """A formula compiled against a :class:`TermTable`.

    Attributes
    ----------
    free_slots / param_slots:
        Register slot of each free variable / action parameter. Parameters
        may be pre-bound before evaluation (effect bodies) or left unbound
        to be enumerated like free variables (rule queries).
    const_codes:
        Codes of the constants occurring in the formula; part of the
        evaluation domain.
    params:
        Parameters occurring in the formula, in slot order. When a
        parameter is pre-bound, its value joins the evaluation domain (the
        reference evaluator substitutes it as a constant first).
    backoff:
        Mutable scratch of the vector backend's adaptive backoff
        (:func:`repro.relational.vector.binding_matrix`): ``None`` after a
        win, else the consecutive-loss count; saturated means the plan is
        pinned to the interpreted join.
    """

    __slots__ = ("formula", "n_slots", "free_slots", "param_slots",
                 "const_codes", "params", "root", "backoff")

    def __init__(self, formula: Formula, table: TermTable,
                 prebound_params: bool = False):
        self.formula = formula
        self.backoff: Optional[int] = None
        self.free_slots: Dict[Var, int] = {}
        self.param_slots: Dict[Param, int] = {}
        for var in sorted(formula.free_variables(), key=lambda v: v.name):
            self.free_slots[var] = len(self.free_slots)
        for param in sorted(formula.parameters(), key=lambda p: p.name):
            self.param_slots[param] = len(self.free_slots) \
                + len(self.param_slots)
        self.params: Tuple[Param, ...] = tuple(self.param_slots)
        self.const_codes: FrozenSet[int] = frozenset(
            table.code(value) for value in formula.constants())
        compiler = _Compiler(table, dict(self.free_slots),
                             dict(self.param_slots),
                             len(self.free_slots) + len(self.param_slots))
        # ``prebound_params`` only steers the compile-time join-order
        # simulation (effect bodies arrive with parameters bound, rule
        # queries enumerate them); it never changes the answer set.
        bound = frozenset(self.param_slots.values()) if prebound_params \
            else frozenset()
        self.root = compiler.compile(formula, bound)
        self.n_slots = compiler.n_slots

    def fresh_regs(self) -> Regs:
        return [UNBOUND] * self.n_slots

    def domain(self, coded: CodedInstance, table: TermTable,
               extra: FrozenSet[int]) -> FrozenSet[int]:
        """Coded evaluation domain: adom + formula constants + extras.

        Cached per (query, extra) on the coded instance, mirroring the
        reference ``_domain_cached`` memo.
        """
        cache = coded.domain_cache()
        key = (id(self), extra)
        found = cache.get(key)
        if found is None:
            found = coded.adom_codes(table) | self.const_codes | extra
            cache[key] = found
        return found

    def iter_bindings(self, coded: CodedInstance, regs: Regs,
                      domain: FrozenSet[int]) -> Iterator[Regs]:
        """Register extensions under which the formula holds (may repeat)."""
        return self.root.iter_bindings(coded, regs, domain)

    def has_binding(self, coded: CodedInstance, regs: Regs,
                    domain: FrozenSet[int]) -> bool:
        for _ in self.root.iter_bindings(coded, regs, domain):
            return True
        return False


class _Compiler:
    """Single-pass compiler; allocates private slots for quantifiers."""

    def __init__(self, table: TermTable, var_env: Dict[Var, int],
                 param_slots: Dict[Param, int], n_slots: int):
        self.table = table
        self.var_env = var_env
        self.param_slots = param_slots
        self.n_slots = n_slots

    def _term_spec(self, term: Any) -> Tuple[bool, int]:
        if isinstance(term, Var):
            slot = self.var_env.get(term)
            if slot is None:
                # A variable neither free nor quantified in scope cannot
                # occur in a well-formed formula; free_variables() would
                # have reported it.
                raise CompileError(f"unscoped variable {term!r}")
            return (False, slot)
        if isinstance(term, Param):
            return (False, self.param_slots[term])
        if isinstance(term, ServiceCall):
            raise CompileError(
                f"service call {term!r} inside a query")
        return (True, self.table.code(term))

    def _free_param_slots(self, formula: Formula) -> Tuple[int, ...]:
        """Slots of the free variables and parameters of a subformula.

        Parameters ride along because an unbound parameter slot behaves
        like the reference's ``@param`` free variable; pre-bound slots are
        filtered at pad time.
        """
        slots = [self.var_env[var] for var in formula.free_variables()
                 if var in self.var_env]
        slots.extend(self.param_slots[param]
                     for param in formula.parameters())
        return tuple(sorted(set(slots)))

    def compile(self, formula: Formula, bound: FrozenSet[int]) -> _Node:
        return self._compile(formula, set(bound))

    def _compile(self, formula: Formula, bound: set) -> _Node:
        if isinstance(formula, TrueF):
            return _True()
        if isinstance(formula, FalseF):
            return _False()
        if isinstance(formula, Atom):
            relation = self.table.code(formula.relation)
            return _Atom(relation, tuple(
                self._term_spec(term) for term in formula.terms))
        if isinstance(formula, Eq):
            return _Eq(self._term_spec(formula.left),
                       self._term_spec(formula.right))
        if isinstance(formula, And):
            return self._compile_and(formula, bound)
        if isinstance(formula, Or):
            children = []
            formula_slots = set(self._free_param_slots(formula))
            for sub in formula.subs:
                others = tuple(sorted(
                    formula_slots - set(self._free_param_slots(sub))))
                children.append((self._compile(sub, set(bound)), others))
            return _Or(tuple(children))
        if isinstance(formula, Not):
            free = self._free_param_slots(formula)
            return _Not(self._compile(formula.sub, set(bound) | set(free)),
                        free)
        if isinstance(formula, Exists):
            return self._compile_exists(formula.variables, formula.sub,
                                        bound)
        if isinstance(formula, Forall):
            free = self._free_param_slots(formula)
            outer = set(bound) | set(free)
            saved = {var: self.var_env.get(var) for var in formula.variables}
            for var in formula.variables:
                self.var_env[var] = self.n_slots
                self.n_slots += 1
            inner_free = self._free_param_slots(formula.sub)
            sub = self._compile(formula.sub, outer | set(inner_free))
            vacuous = any(
                var not in formula.sub.free_variables()
                for var in formula.variables)
            self._restore(saved)
            neg = _Exists(_Not(sub, inner_free), vacuous)
            return _Forall(neg, free)
        raise CompileError(f"cannot compile formula node {formula!r}")

    def _compile_exists(self, variables, sub_formula: Formula,
                        bound: FrozenSet[int]) -> _Exists:
        saved = {var: self.var_env.get(var) for var in variables}
        for var in variables:
            self.var_env[var] = self.n_slots
            self.n_slots += 1
        sub = self._compile(sub_formula, set(bound))
        vacuous = any(var not in sub_formula.free_variables()
                      for var in variables)
        self._restore(saved)
        return _Exists(sub, vacuous)

    def _restore(self, saved: Dict[Var, Optional[int]]) -> None:
        for var, slot in saved.items():
            if slot is None:
                self.var_env.pop(var, None)
            else:
                self.var_env[var] = slot

    def _compile_and(self, formula: And, bound: set) -> _Node:
        """Greedy join order, simulated at compile time.

        Mirrors the reference evaluator's per-call sort: prefer conjuncts
        that bind variables cheaply (atoms), then equalities, then
        negations/quantifiers, tie-broken by how many of their variables
        are still unbound at that point (statically known — every conjunct
        binds exactly its free variables and parameters).
        """
        remaining = list(enumerate(formula.subs))
        known = set(bound)
        compiled_at: Dict[int, _Node] = {}
        ordered: List[_Node] = []
        while remaining:
            def cost(entry: Tuple[int, Formula]) -> Tuple[int, int]:
                _, sub = entry
                slots = self._free_param_slots(sub)
                unbound = len([slot for slot in slots
                               if slot not in known])
                if isinstance(sub, (TrueF, FalseF)):
                    return (0, 0)
                if isinstance(sub, Atom):
                    return (1, unbound)
                if isinstance(sub, Eq):
                    return (2, unbound)
                return (3, unbound)

            best = min(range(len(remaining)),
                       key=lambda index: cost(remaining[index]))
            position, chosen = remaining.pop(best)
            node = self._compile(chosen, set(known))
            compiled_at[position] = node
            ordered.append(node)
            known.update(self._free_param_slots(chosen))
        # holds() follows the source order like the reference evaluator;
        # the same compiled node serves both orders (one per occurrence).
        original = tuple(compiled_at[position]
                         for position in range(len(formula.subs)))
        return _And(tuple(ordered), original)
