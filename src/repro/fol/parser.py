"""Text syntax for FO formulas.

Grammar (precedence from loosest to tightest)::

    formula     := implication
    implication := disjunction [ "->" implication ]
    disjunction := conjunction ( "|" conjunction )*
    conjunction := unary ( "&" unary )*
    unary       := "~" unary
                 | ("exists" | "forall") names "." implication
                 | "(" formula ")"
                 | "true" | "false"
                 | atom | comparison
    atom        := NAME "(" [ term ("," term)* ] ")"
    comparison  := term ("=" | "!=") term
    term        := "'" chars "'"      (string constant)
                 | NUMBER             (integer constant)
                 | "$" NAME           (action parameter)
                 | NAME               (variable, unless listed in `constants`)

Bare identifiers parse as variables by default; pass ``constants={"a", "b"}``
to read those identifiers as string constants instead (handy for transcribing
the paper's examples, which write constants ``a, b`` unquoted).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import ParseError
from repro.fol.ast import (
    And, Atom, Eq, FALSE, Formula, Not, Or, TRUE, Exists, Forall)
from repro.relational.values import Param, ServiceCall, Var

_SYMBOLS = ("->", "!=", "~>", "<->", "[-]", "(", ")", ",", ".", "~", "&",
            "|", "=", "$")
_KEYWORDS = frozenset({
    "exists", "forall", "true", "false", "mu", "nu", "live"})


@dataclass(frozen=True)
class Token:
    kind: str  # "name" | "number" | "string" | "symbol" | "end"
    text: str
    pos: int


def tokenize(text: str) -> List[Token]:
    """Shared tokenizer for FO and mu-calculus syntax."""
    tokens: List[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char == "'":
            end = text.find("'", index + 1)
            if end < 0:
                raise ParseError("unterminated string constant", text, index)
            tokens.append(Token("string", text[index + 1:end], index))
            index = end + 1
            continue
        if char.isdigit() or (char == "-" and index + 1 < length
                              and text[index + 1].isdigit()
                              and not text.startswith("->", index)):
            end = index + 1
            while end < length and text[end].isdigit():
                end += 1
            tokens.append(Token("number", text[index:end], index))
            index = end
            continue
        if char.isalpha() or char == "_":
            end = index + 1
            while end < length and (text[end].isalnum() or text[end] in "_'"):
                end += 1
            tokens.append(Token("name", text[index:end], index))
            index = end
            continue
        for symbol in _SYMBOLS:
            if text.startswith(symbol, index):
                tokens.append(Token("symbol", symbol, index))
                index += len(symbol)
                break
        else:
            raise ParseError(f"unexpected character {char!r}", text, index)
    tokens.append(Token("end", "", length))
    return tokens


class TokenStream:
    """Cursor over a token list with convenience accessors."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    def peek(self) -> Token:
        return self.tokens[self.index]

    def next(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "end":
            self.index += 1
        return token

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.next()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            expected = text or kind
            raise ParseError(f"expected {expected!r}, found {self.peek().text!r}",
                             self.text, self.peek().pos)
        return token

    def at_end(self) -> bool:
        return self.peek().kind == "end"


class FormulaParser:
    """Recursive-descent parser for FO formulas."""

    def __init__(self, text: str, constants: Iterable[str] = ()):
        self.stream = TokenStream(text)
        self.constants = frozenset(constants)

    # -- entry points ---------------------------------------------------------

    def parse(self) -> Formula:
        formula = self.parse_implication()
        if not self.stream.at_end():
            token = self.stream.peek()
            raise ParseError(f"trailing input {token.text!r}",
                             self.stream.text, token.pos)
        return formula

    # -- grammar ---------------------------------------------------------------

    def parse_implication(self) -> Formula:
        left = self.parse_disjunction()
        if self.stream.accept("symbol", "->"):
            right = self.parse_implication()
            return Or.of(Not(left), right)
        return left

    def parse_disjunction(self) -> Formula:
        parts = [self.parse_conjunction()]
        while self.stream.accept("symbol", "|"):
            parts.append(self.parse_conjunction())
        return Or.of(*parts) if len(parts) > 1 else parts[0]

    def parse_conjunction(self) -> Formula:
        parts = [self.parse_unary()]
        while self.stream.accept("symbol", "&"):
            parts.append(self.parse_unary())
        return And.of(*parts) if len(parts) > 1 else parts[0]

    def parse_unary(self) -> Formula:
        if self.stream.accept("symbol", "~"):
            return Not(self.parse_unary())
        token = self.stream.peek()
        if token.kind == "name" and token.text in ("exists", "forall"):
            self.stream.next()
            names = self.parse_variable_names()
            self.stream.expect("symbol", ".")
            body = self.parse_implication()
            variables = tuple(Var(name) for name in names)
            if token.text == "exists":
                return Exists(variables, body)
            return Forall(variables, body)
        if self.stream.accept("symbol", "("):
            inner = self.parse_implication()
            self.stream.expect("symbol", ")")
            return inner
        if token.kind == "name" and token.text == "true":
            self.stream.next()
            return TRUE
        if token.kind == "name" and token.text == "false":
            self.stream.next()
            return FALSE
        return self.parse_atom_or_comparison()

    def parse_variable_names(self) -> List[str]:
        names = [self.stream.expect("name").text]
        while self.stream.accept("symbol", ","):
            names.append(self.stream.expect("name").text)
        return names

    def parse_atom_or_comparison(self) -> Formula:
        token = self.stream.peek()
        if (token.kind == "name" and token.text not in _KEYWORDS
                and self._lookahead_is_call()):
            name = self.stream.next().text
            terms = self.parse_term_list()
            return Atom(name, tuple(terms))
        left = self.parse_term(allow_calls=False)
        if self.stream.accept("symbol", "="):
            right = self.parse_term(allow_calls=False)
            return Eq(left, right)
        if self.stream.accept("symbol", "!="):
            right = self.parse_term(allow_calls=False)
            return Not(Eq(left, right))
        raise ParseError("expected '=' or '!=' after term",
                         self.stream.text, self.stream.peek().pos)

    def _lookahead_is_call(self) -> bool:
        following = self.stream.tokens[self.stream.index + 1]
        return following.kind == "symbol" and following.text == "("

    def parse_term_list(self) -> List[Any]:
        self.stream.expect("symbol", "(")
        terms: List[Any] = []
        if not self.stream.accept("symbol", ")"):
            terms.append(self.parse_term(allow_calls=False))
            while self.stream.accept("symbol", ","):
                terms.append(self.parse_term(allow_calls=False))
            self.stream.expect("symbol", ")")
        return terms

    def parse_term(self, allow_calls: bool) -> Any:
        """A term: constant, parameter, variable, or (in heads) service call."""
        token = self.stream.peek()
        if token.kind == "string":
            self.stream.next()
            return token.text
        if token.kind == "number":
            self.stream.next()
            return int(token.text)
        if token.kind == "symbol" and token.text == "$":
            self.stream.next()
            name = self.stream.expect("name").text
            return Param(name)
        if token.kind == "name":
            self.stream.next()
            if allow_calls and self._at_symbol("("):
                args = self.parse_call_args()
                return ServiceCall(token.text, tuple(args))
            if token.text in self.constants:
                return token.text
            return Var(token.text)
        raise ParseError(f"expected a term, found {token.text!r}",
                         self.stream.text, token.pos)

    def _at_symbol(self, text: str) -> bool:
        token = self.stream.peek()
        return token.kind == "symbol" and token.text == text

    def parse_call_args(self) -> List[Any]:
        self.stream.expect("symbol", "(")
        args: List[Any] = []
        if not self.stream.accept("symbol", ")"):
            args.append(self.parse_term(allow_calls=False))
            while self.stream.accept("symbol", ","):
                args.append(self.parse_term(allow_calls=False))
            self.stream.expect("symbol", ")")
        return args


def parse_formula(text: str, constants: Iterable[str] = ()) -> Formula:
    """Parse an FO formula from text.

    >>> parse_formula("exists x. R(x) & ~S(x)")
    exists x. ((R(x) & ~(S(x))))
    """
    return FormulaParser(text, constants).parse()


def parse_head_atom(text: str, constants: Iterable[str] = ()) -> Atom:
    """Parse an effect-head atom, where terms may be service calls ``f(x)``."""
    parser = FormulaParser(text, constants)
    name = parser.stream.expect("name").text
    parser.stream.expect("symbol", "(")
    terms: List[Any] = []
    if not parser.stream.accept("symbol", ")"):
        terms.append(parser.parse_term(allow_calls=True))
        while parser.stream.accept("symbol", ","):
            terms.append(parser.parse_term(allow_calls=True))
        parser.stream.expect("symbol", ")")
    if not parser.stream.at_end():
        token = parser.stream.peek()
        raise ParseError(f"trailing input {token.text!r}", text, token.pos)
    return Atom(name, tuple(terms))
