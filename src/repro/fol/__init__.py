"""First-order logic: AST, parser, active-domain evaluation."""

from repro.fol.ast import (
    And, Atom, Eq, FALSE, FalseF, Forall, Formula, Not, Or, TRUE, TrueF,
    Exists, atom, exists, forall, is_positive_existential, neq)
from repro.fol.evaluation import (
    answers, boolean_answer, evaluation_domain, holds)
from repro.fol.parser import parse_formula, parse_head_atom

__all__ = [
    "And", "Atom", "Eq", "Exists", "FALSE", "FalseF", "Forall", "Formula",
    "Not", "Or", "TRUE", "TrueF", "answers", "atom", "boolean_answer",
    "evaluation_domain", "exists", "forall", "holds",
    "is_positive_existential", "neq", "parse_formula", "parse_head_atom",
]
