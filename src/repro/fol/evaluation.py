"""Active-domain evaluation of FO queries.

Implements ``ans(Q, I)`` of the paper (footnote 3): the answers to a query
are the substitutions of its free variables by domain values under which the
instance satisfies the query. Quantifiers and negation range over the
*evaluation domain*: the active domain of the instance, the constants of the
formula, and any extra values the caller supplies (typically ``ADOM(I0)``).

The evaluator is a backtracking join over conjuncts: positive atoms bind
variables by matching tuples, equalities propagate bindings, and negative or
quantified subformulas fall back to domain enumeration for their unbound
variables. This keeps evaluation fast for the CQ-shaped queries that drive
action effects while remaining complete for arbitrary FO.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional

from repro.errors import FormulaError
from repro.fol.ast import (
    And, Atom, Eq, Exists, FalseF, Forall, Formula, Not, Or, TrueF)
from repro.relational.instance import Instance
from repro.relational.values import Param, Var

Valuation = Dict[Var, Any]


@lru_cache(maxsize=16384)
def _formula_constants(formula: Formula) -> FrozenSet[Any]:
    """Memoized ``formula.constants()`` (an AST walk, requested per state)."""
    return formula.constants()


@lru_cache(maxsize=16384)
def _free_vars(formula: Formula) -> FrozenSet[Var]:
    """Memoized ``formula.free_variables()`` — the evaluator asks for the
    free variables of the same subformulas at every conjunct reordering."""
    return formula.free_variables()


@lru_cache(maxsize=16384)
def _domain_cached(instance: Instance, formula: Optional[Formula],
                   extra: FrozenSet[Any]) -> FrozenSet[Any]:
    domain = set(instance.active_domain())
    if formula is not None:
        domain.update(_formula_constants(formula))
    domain.update(extra)
    return frozenset(domain)


def evaluation_domain(
    instance: Instance,
    formula: Optional[Formula] = None,
    extra: Iterable[Any] = (),
) -> FrozenSet[Any]:
    """The set of values quantifiers and free variables range over.

    Memoized per ``(instance, formula, extra)`` when ``extra`` is already a
    frozenset — the common case in action execution, where the same query is
    evaluated against the same instance under ``ADOM(I0)`` repeatedly.
    """
    if isinstance(extra, frozenset):
        return _domain_cached(instance, formula, extra)
    domain = set(instance.active_domain())
    if formula is not None:
        domain.update(_formula_constants(formula))
    domain.update(extra)
    return frozenset(domain)


def clear_domain_caches() -> None:
    """Drop the instance-keyed memos (see
    :func:`repro.core.execution.clear_subproblem_caches`)."""
    _domain_cached.cache_clear()


def _resolve(term: Any, valuation: Valuation) -> Any:
    """Resolve a term to a value, or return the unbound Var itself."""
    if isinstance(term, Var):
        return valuation.get(term, term)
    if isinstance(term, Param):
        raise FormulaError(
            f"unsubstituted action parameter {term!r} during evaluation")
    return term


def holds(
    formula: Formula,
    instance: Instance,
    valuation: Optional[Valuation] = None,
    domain: Optional[FrozenSet[Any]] = None,
) -> bool:
    """Truth of a formula whose free variables are all bound by ``valuation``."""
    valuation = valuation or {}
    if domain is None:
        domain = evaluation_domain(instance, formula, valuation.values())

    unbound = _free_vars(formula) - set(valuation)
    if unbound:
        raise FormulaError(
            f"holds() requires all free variables bound; missing {unbound}")
    return _holds(formula, instance, valuation, domain)


def _holds(formula: Formula, instance: Instance,
           valuation: Valuation, domain: FrozenSet[Any]) -> bool:
    if isinstance(formula, TrueF):
        return True
    if isinstance(formula, FalseF):
        return False
    if isinstance(formula, Atom):
        resolved = tuple(_resolve(term, valuation) for term in formula.terms)
        return resolved in instance.tuples(formula.relation)
    if isinstance(formula, Eq):
        return (_resolve(formula.left, valuation)
                == _resolve(formula.right, valuation))
    if isinstance(formula, Not):
        return not _holds(formula.sub, instance, valuation, domain)
    if isinstance(formula, And):
        return all(_holds(sub, instance, valuation, domain)
                   for sub in formula.subs)
    if isinstance(formula, Or):
        return any(_holds(sub, instance, valuation, domain)
                   for sub in formula.subs)
    if isinstance(formula, Exists):
        # Quantified variables shadow any outer bindings. A variable that
        # does not occur free in the body still needs *some* witness value:
        # over an empty domain the existential is false, not vacuous.
        if not domain and any(var not in _free_vars(formula.sub)
                              for var in formula.variables):
            return False
        inner = {key: value for key, value in valuation.items()
                 if key not in formula.variables}
        for _ in _answers(formula.sub, instance, inner, domain):
            return True
        return False
    if isinstance(formula, Forall):
        negated = Exists(formula.variables, Not(formula.sub))
        return not _holds(negated, instance, valuation, domain)
    raise FormulaError(f"cannot evaluate formula node {formula!r}")


def answers(
    formula: Formula,
    instance: Instance,
    valuation: Optional[Valuation] = None,
    domain: Optional[FrozenSet[Any]] = None,
) -> List[Valuation]:
    """``ans(Q, I)``: substitutions for the free variables satisfying ``Q``.

    Each answer is a dict binding exactly the free variables of the formula
    (plus whatever ``valuation`` already bound). Answers are deduplicated and
    returned in deterministic order.
    """
    valuation = dict(valuation or {})
    if domain is None:
        domain = evaluation_domain(instance, formula, valuation.values())

    free = _free_vars(formula)
    seen = set()
    result: List[Valuation] = []
    for extension in _answers(formula, instance, valuation, domain):
        projected = {var: extension[var] for var in free}
        projected.update(valuation)
        key = frozenset(projected.items())
        if key not in seen:
            seen.add(key)
            result.append(projected)

    from repro.utils import value_sort_key

    def order(binding: Valuation) -> tuple:
        return tuple(value_sort_key(binding[var])
                     for var in sorted(free, key=lambda v: v.name))

    result.sort(key=order)
    return result


def iter_answers(
    formula: Formula,
    instance: Instance,
    valuation: Optional[Valuation] = None,
    domain: Optional[FrozenSet[Any]] = None,
) -> Iterator[Valuation]:
    """Stream satisfying bindings without dedup, projection, or sorting.

    Bindings may repeat and may bind more than the free variables (inner
    join variables leak through); use :func:`answers` when the exact answer
    *set* matters. Effect grounding consumes this directly — the produced
    facts land in a set anyway.
    """
    valuation = dict(valuation or {})
    if domain is None:
        domain = evaluation_domain(instance, formula, valuation.values())
    return _answers(formula, instance, valuation, domain)


def has_answer(
    formula: Formula,
    instance: Instance,
    valuation: Optional[Valuation] = None,
    domain: Optional[FrozenSet[Any]] = None,
) -> bool:
    """True when ``ans(Q, I)`` is non-empty; stops at the first witness.

    Unlike :func:`answers` this never materializes, sorts, or deduplicates
    the answer set — use it for enabledness/legality checks.
    """
    valuation = dict(valuation or {})
    if domain is None:
        domain = evaluation_domain(instance, formula, valuation.values())
    for _ in _answers(formula, instance, valuation, domain):
        return True
    return False


def boolean_answer(formula: Formula, instance: Instance,
                   valuation: Optional[Valuation] = None,
                   domain: Optional[FrozenSet[Any]] = None) -> bool:
    """``ans(Qθ, I) ≡ true`` for a boolean (closed under valuation) query."""
    return holds(formula, instance, valuation, domain)


# ---------------------------------------------------------------------------
# Backtracking join
# ---------------------------------------------------------------------------

def _answers(formula: Formula, instance: Instance,
             valuation: Valuation, domain: FrozenSet[Any]
             ) -> Iterator[Valuation]:
    """Yield extensions of ``valuation`` binding the free variables of
    ``formula`` under which it holds. May yield duplicates."""
    if isinstance(formula, TrueF):
        yield dict(valuation)
        return
    if isinstance(formula, FalseF):
        return
    if isinstance(formula, Atom):
        yield from _match_atom(formula, instance, valuation)
        return
    if isinstance(formula, Eq):
        yield from _match_eq(formula, valuation, domain)
        return
    if isinstance(formula, And):
        yield from _match_conjunction(
            list(formula.subs), instance, valuation, domain)
        return
    if isinstance(formula, Or):
        for sub in formula.subs:
            # Bind the disjunct, then pad the remaining free variables of the
            # whole disjunction over the domain (active-domain semantics).
            others = _free_vars(formula) - _free_vars(sub)
            for extension in _answers(sub, instance, valuation, domain):
                yield from _pad(extension, others, domain)
        return
    if isinstance(formula, Not):
        # Enumerate unbound free variables over the domain, then test.
        unbound = [var for var in _free_vars(formula)
                   if var not in valuation]
        for padded in _pad(valuation, unbound, domain):
            if not _holds(formula.sub, instance, padded, domain):
                yield padded
        return
    if isinstance(formula, Exists):
        # See _holds: a quantified variable vacuous in the body still
        # consumes a domain value, so an empty domain yields no answers.
        if not domain and any(var not in _free_vars(formula.sub)
                              for var in formula.variables):
            return
        inner = {key: value for key, value in valuation.items()
                 if key not in formula.variables}
        for extension in _answers(formula.sub, instance, inner, domain):
            projected = dict(valuation)
            for var in _free_vars(formula.sub):
                if var not in formula.variables:
                    projected[var] = extension[var]
            yield projected
        return
    if isinstance(formula, Forall):
        unbound = [var for var in _free_vars(formula)
                   if var not in valuation]
        for padded in _pad(valuation, unbound, domain):
            if _holds(formula, instance, padded, domain):
                yield padded
        return
    raise FormulaError(f"cannot evaluate formula node {formula!r}")


def _match_atom(atom_: Atom, instance: Instance,
                valuation: Valuation) -> Iterator[Valuation]:
    # Pick candidate tuples through a per-position index when some term is
    # already bound: a dict lookup instead of a scan over the relation. For
    # tiny relations the scan is cheaper than building the index.
    candidates = instance.tuples(atom_.relation)
    if len(candidates) > 4:
        for position, term in enumerate(atom_.terms):
            resolved = _resolve(term, valuation)
            if not isinstance(resolved, Var):
                candidates = instance.index(
                    atom_.relation, position).get(resolved, ())
                break
    for tuple_ in candidates:
        extension = dict(valuation)
        matched = True
        for term, value in zip(atom_.terms, tuple_):
            resolved = _resolve(term, extension)
            if isinstance(resolved, Var):
                extension[resolved] = value
            elif resolved != value:
                matched = False
                break
        if matched:
            yield extension


def _match_eq(eq: Eq, valuation: Valuation,
              domain: FrozenSet[Any]) -> Iterator[Valuation]:
    left = _resolve(eq.left, valuation)
    right = _resolve(eq.right, valuation)
    left_unbound = isinstance(left, Var)
    right_unbound = isinstance(right, Var)
    if not left_unbound and not right_unbound:
        if left == right:
            yield dict(valuation)
        return
    if left_unbound and not right_unbound:
        extension = dict(valuation)
        extension[left] = right
        yield extension
        return
    if right_unbound and not left_unbound:
        extension = dict(valuation)
        extension[right] = left
        yield extension
        return
    # Both unbound: enumerate the domain for one side.
    for value in domain:
        extension = dict(valuation)
        extension[left] = value
        extension[right] = value
        yield extension


def _match_conjunction(subs: List[Formula], instance: Instance,
                       valuation: Valuation, domain: FrozenSet[Any]
                       ) -> Iterator[Valuation]:
    if not subs:
        yield dict(valuation)
        return
    # Greedy ordering: prefer conjuncts that bind variables cheaply (atoms),
    # then equalities, and leave negations/quantifiers for last so their free
    # variables are already bound where possible.
    def cost(sub: Formula) -> tuple:
        unbound = len([v for v in _free_vars(sub) if v not in valuation])
        if isinstance(sub, (TrueF, FalseF)):
            return (0, 0)
        if isinstance(sub, Atom):
            return (1, unbound)
        if isinstance(sub, Eq):
            return (2, unbound)
        return (3, unbound)

    ordered = sorted(subs, key=cost)
    first, rest = ordered[0], ordered[1:]
    for extension in _answers(first, instance, valuation, domain):
        yield from _match_conjunction(rest, instance, extension, domain)


def _pad(valuation: Valuation, variables, domain: FrozenSet[Any]
         ) -> Iterator[Valuation]:
    """All extensions of ``valuation`` assigning ``variables`` over ``domain``."""
    variables = [var for var in variables if var not in valuation]
    if not variables:
        yield dict(valuation)
        return
    first, rest = variables[0], variables[1:]
    for value in domain:
        extension = dict(valuation)
        extension[first] = value
        yield from _pad(extension, rest, domain)
