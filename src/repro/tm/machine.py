"""Deterministic single-tape Turing machines.

The substrate for the undecidability constructions (Theorems 4.1, 4.6, 5.1,
5.5): the DCDS encoding of :mod:`repro.tm.encoding` is validated against
this direct simulator.

Conventions: the tape is left-bounded with a left-end marker ``$`` at cell
0 that must never be overwritten; the blank symbol is ``_``; moves are
``L``, ``R``, ``S``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import ReproError

LEFT_MARKER = "$"
BLANK = "_"

Move = str  # "L" | "R" | "S"
Transition = Tuple[str, str, Move]  # (next state, written symbol, move)


@dataclass(frozen=True)
class Configuration:
    """One instantaneous description of the machine."""

    state: str
    tape: Tuple[str, ...]  # tape[0] == LEFT_MARKER
    head: int

    def rendered(self) -> str:
        cells = []
        for index, symbol in enumerate(self.tape):
            cells.append(f"[{symbol}]" if index == self.head else symbol)
        return f"{self.state}: {''.join(cells)}"

    def trimmed_tape(self) -> Tuple[str, ...]:
        """Tape contents without trailing blanks (for comparisons)."""
        cells = list(self.tape)
        while len(cells) > 1 and cells[-1] == BLANK:
            cells.pop()
        return tuple(cells)


@dataclass(frozen=True)
class TuringMachine:
    """A deterministic Turing machine over a left-bounded tape."""

    states: FrozenSet[str]
    alphabet: FrozenSet[str]  # tape alphabet, not including $; includes _
    delta: Dict[Tuple[str, str], Transition]
    initial_state: str
    halting_states: FrozenSet[str]

    def __post_init__(self):
        if self.initial_state not in self.states:
            raise ReproError("initial state not in state set")
        if not self.halting_states <= self.states:
            raise ReproError("halting states not in state set")
        for (state, symbol), (next_state, written, move) in self.delta.items():
            if state not in self.states or next_state not in self.states:
                raise ReproError(f"transition uses unknown state: "
                                 f"{(state, symbol)}")
            if symbol not in self.alphabet | {LEFT_MARKER}:
                raise ReproError(f"transition reads unknown symbol {symbol!r}")
            if written not in self.alphabet | {LEFT_MARKER}:
                raise ReproError(f"transition writes unknown symbol "
                                 f"{written!r}")
            if symbol == LEFT_MARKER and written != LEFT_MARKER:
                raise ReproError("the left marker must not be overwritten")
            if symbol == LEFT_MARKER and move == "L":
                raise ReproError("cannot move left from the left marker")
            if move not in ("L", "R", "S"):
                raise ReproError(f"unknown move {move!r}")

    @classmethod
    def of(cls, transitions: Dict[Tuple[str, str], Transition],
           initial_state: str, halting_states: Tuple[str, ...],
           extra_symbols: Tuple[str, ...] = ()) -> "TuringMachine":
        """Infer the state set and alphabet from the transition table."""
        states = {initial_state, *halting_states}
        alphabet = {BLANK, *extra_symbols}
        for (state, symbol), (next_state, written, _) in transitions.items():
            states.update((state, next_state))
            for entry in (symbol, written):
                if entry != LEFT_MARKER:
                    alphabet.add(entry)
        return cls(frozenset(states), frozenset(alphabet), dict(transitions),
                   initial_state, frozenset(halting_states))

    def initial_configuration(self, word: str = "") -> Configuration:
        for symbol in word:
            if symbol not in self.alphabet:
                raise ReproError(f"input symbol {symbol!r} not in alphabet")
        tape = (LEFT_MARKER,) + tuple(word) + ((BLANK,) if not word else ())
        return Configuration(self.initial_state, tape, 1)

    def halted(self, configuration: Configuration) -> bool:
        return configuration.state in self.halting_states

    def step(self, configuration: Configuration) -> Configuration:
        """One transition. Raises if halted or the table has no entry."""
        if self.halted(configuration):
            raise ReproError("machine already halted")
        symbol = configuration.tape[configuration.head]
        key = (configuration.state, symbol)
        if key not in self.delta:
            raise ReproError(f"no transition for {key}")
        next_state, written, move = self.delta[key]
        tape = list(configuration.tape)
        tape[configuration.head] = written
        head = configuration.head
        if move == "R":
            head += 1
        elif move == "L":
            head -= 1
            if head < 0:
                raise ReproError("fell off the left end")
        while head >= len(tape):
            tape.append(BLANK)
        return Configuration(next_state, tuple(tape), head)

    def run(self, word: str = "", max_steps: int = 1000
            ) -> List[Configuration]:
        """The run on ``word``, truncated at ``max_steps`` configurations."""
        trace = [self.initial_configuration(word)]
        while len(trace) <= max_steps and not self.halted(trace[-1]):
            key = (trace[-1].state, trace[-1].tape[trace[-1].head])
            if key not in self.delta:
                break  # stuck (treated as a halting run)
            trace.append(self.step(trace[-1]))
        return trace

    def halts(self, word: str = "", max_steps: int = 1000) -> Optional[bool]:
        """True/False when decided within the budget, else ``None``."""
        trace = self.run(word, max_steps)
        final = trace[-1]
        if self.halted(final):
            return True
        if (final.state, final.tape[final.head]) not in self.delta:
            return True  # stuck counts as halting
        return None  # budget exhausted


# -- a small zoo used by tests and benchmarks --------------------------------

def unary_increment_machine() -> TuringMachine:
    """Walks right over 1s, appends a 1, halts."""
    return TuringMachine.of(
        transitions={
            ("scan", "1"): ("scan", "1", "R"),
            ("scan", BLANK): ("done", "1", "S"),
        },
        initial_state="scan",
        halting_states=("done",),
    )


def binary_flipper_machine() -> TuringMachine:
    """Flips every bit of its input, then halts at the first blank."""
    return TuringMachine.of(
        transitions={
            ("flip", "0"): ("flip", "1", "R"),
            ("flip", "1"): ("flip", "0", "R"),
            ("flip", BLANK): ("done", BLANK, "S"),
        },
        initial_state="flip",
        halting_states=("done",),
    )


def looper_machine() -> TuringMachine:
    """Never halts: bounces on one cell forever (tape-bounded loop)."""
    return TuringMachine.of(
        transitions={
            ("ping", BLANK): ("pong", "1", "S"),
            ("pong", "1"): ("ping", BLANK, "S"),
        },
        initial_state="ping",
        halting_states=("halt",),
    )


def right_runner_machine() -> TuringMachine:
    """Never halts and uses unbounded tape: runs right forever."""
    return TuringMachine.of(
        transitions={
            ("run", BLANK): ("run", "1", "R"),
            ("run", "1"): ("run", "1", "R"),
        },
        initial_state="run",
        halting_states=("halt",),
    )
