"""Turing machines and the TM -> DCDS reduction (Theorem 4.1)."""

from repro.tm.encoding import (
    decode_configuration, encode, has_halted, safety_property_not_halted)
from repro.tm.machine import (
    BLANK, Configuration, LEFT_MARKER, TuringMachine,
    binary_flipper_machine, looper_machine, right_runner_machine,
    unary_increment_machine)

__all__ = [
    "BLANK", "Configuration", "LEFT_MARKER", "TuringMachine",
    "binary_flipper_machine", "decode_configuration", "encode",
    "has_halted", "looper_machine", "right_runner_machine",
    "safety_property_not_halted", "unary_increment_machine",
]
