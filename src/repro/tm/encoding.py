"""The TM -> DCDS reduction of Theorem 4.1.

Encodes a deterministic Turing machine as a DCDS with a single always-
enabled action whose runs simulate the machine's computation step for step.
The construction drives every undecidability result in the paper (4.1, 4.6,
5.1, 5.5), and here it doubles as an integration test: the DCDS, executed
with a fresh-cell oracle, must reproduce the simulator's configurations.

Encoding (following the proof, with one simplification):

* ``right/2`` — the tape cell chain, with the second component declared a
  key, seeded with a non-cell source node ``0`` so the chain must stay a
  linear path (the paper's device for axiomatizing a linear order);
* ``sym/2``, ``head/1``, ``state/1``, ``halted/0`` — tape contents, head
  position, control state, halt flag;
* an ``end/1`` marker relation replaces the paper's reserved symbol ``ω``,
  and the tape is *pre-extended* whenever the head sits next to the end
  (via service ``newCell``) — this keeps the per-transition effects
  uniform: a right move never runs off the represented segment.

The simulation is exact for machines that respect the left marker.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core import DCDS, DCDSBuilder, ServiceSemantics
from repro.core.builder import parse_facts
from repro.errors import ReproError
from repro.relational.instance import Instance
from repro.tm.machine import (
    BLANK, Configuration, LEFT_MARKER, TuringMachine)


def encode(tm: TuringMachine, word: str = "",
           semantics: ServiceSemantics = ServiceSemantics.DETERMINISTIC
           ) -> DCDS:
    """Build the DCDS simulating ``tm`` on input ``word``."""
    builder = DCDSBuilder(name=f"tm[{word!r}]")
    builder.schema("right/2", "sym/2", "head/1", "state/1", "halted/0",
                   "end/1")
    builder.key("right", 1)  # second component is a key (proof of Thm 4.1)
    builder.service("newCell/1")

    initial = tm.initial_configuration(word)
    builder.initial(_initial_facts(initial))

    effects: List[str] = []
    # Copy the cell chain and the symbols of all non-head cells.
    effects.append("right(x, y) ~> right(x, y)")
    effects.append("sym(c, s) & ~head(c) ~> sym(c, s)")
    # Pre-extension: when the head sits next to the end marker, mint a new
    # cell; otherwise the end marker just persists.
    effects.append(
        "head(x) & right(x, y) & end(y) ~> "
        f"sym(y, '{BLANK}'), right(y, newCell(y)), end(newCell(y))")
    effects.append(
        "end(y) & ~(exists x. head(x) & right(x, y)) ~> end(y)")
    # One effect per transition-table entry.
    for (state, symbol), (next_state, written, move) in sorted(
            tm.delta.items()):
        guard = f"head(x) & state('{state}') & sym(x, '{symbol}')"
        writes = f"sym(x, '{written}'), state('{next_state}')"
        if move == "R":
            effects.append(
                f"{guard} & right(x, y) ~> {writes}, head(y)")
        elif move == "L":
            effects.append(
                f"{guard} & right(y, x) & ~(y = 0) ~> {writes}, head(y)")
        else:
            effects.append(f"{guard} ~> {writes}, head(x)")
    # Halting states: freeze the control state and raise the flag.
    for halting in sorted(tm.halting_states):
        effects.append(
            f"state('{halting}') ~> state('{halting}'), halted()")
        effects.append(
            f"state('{halting}') & head(x) ~> head(x)")
        effects.append(
            f"state('{halting}') & head(x) & sym(x, s) ~> sym(x, s)")

    builder.action("step", *effects)
    builder.rule("true", "step")
    return builder.build(semantics)


def _initial_facts(configuration: Configuration) -> str:
    """The initial instance for a configuration.

    Cells are integers ``1..n``; the reserved source node ``0`` seeds the
    key trick; ``end`` marks cell ``n+1``.
    """
    facts = ["right(0, 0)", "right(0, 1)"]
    n = len(configuration.tape)
    for cell in range(1, n):
        facts.append(f"right({cell}, {cell + 1})")
    facts.append(f"right({n}, {n + 1})")
    for cell, symbol in enumerate(configuration.tape, start=0):
        if cell == 0:
            facts.append(f"sym(1, '{LEFT_MARKER}')")
        else:
            facts.append(f"sym({cell + 1}, '{symbol}')")
    facts.append(f"end({n + 1})")
    facts.append(f"head({configuration.head + 1})")
    facts.append(f"state('{configuration.state}')")
    return ", ".join(facts)


def decode_configuration(instance: Instance) -> Optional[Configuration]:
    """Read a TM configuration back out of a DCDS state.

    Returns ``None`` for malformed states (useful in tests asserting that
    well-formedness is preserved along runs).
    """
    states = instance.tuples("state")
    heads = instance.tuples("head")
    if len(states) != 1 or len(heads) != 1:
        return None
    state = next(iter(states))[0]
    head_cell = next(iter(heads))[0]

    successor: Dict[Any, Any] = {}
    for source, target in instance.tuples("right"):
        if source == 0:
            continue
        if source in successor:
            return None  # not a linear chain
        successor[source] = target
    symbols = {cell: symbol for cell, symbol in instance.tuples("sym")}

    tape: List[str] = []
    head_index = None
    cell = 1
    seen = set()
    while cell in symbols:
        if cell in seen:
            return None  # cycle
        seen.add(cell)
        tape.append(symbols[cell])
        if cell == head_cell:
            head_index = len(tape) - 1
        cell = successor.get(cell)
        if cell is None:
            break
    if head_index is None or not tape or tape[0] != LEFT_MARKER:
        return None
    return Configuration(state, tuple(tape), head_index)


def has_halted(instance: Instance) -> bool:
    """Is the ``halted`` flag raised in this state?"""
    return bool(instance.tuples("halted"))


def safety_property_not_halted():
    """The propositional LTL safety property ``G ¬halted`` of Theorem 4.1,
    as the µ-calculus formula ``nu X. (~halted() & [-]X)``."""
    from repro.mucalc import parse_mu

    return parse_mu("nu X. (~halted() & [-] X)")
