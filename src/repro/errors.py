"""Exception hierarchy for the DCDS verifier.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class. Errors that correspond to an undecidability
theorem of the paper carry a ``theorem`` attribute naming it.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class SchemaError(ReproError):
    """A relation, arity, or attribute reference is inconsistent."""


class InstanceError(ReproError):
    """A database instance violates its schema."""


class ConstraintViolation(ReproError):
    """An instance violates an equality constraint of the data layer."""


class FormulaError(ReproError):
    """A first-order or mu-calculus formula is malformed."""


class ParseError(FormulaError):
    """Raised by the text parsers with position information."""

    def __init__(self, message: str, text: str = "", pos: int = -1):
        self.text = text
        self.pos = pos
        if pos >= 0:
            context = text[max(0, pos - 20):pos + 20]
            message = f"{message} at position {pos} (near {context!r})"
        super().__init__(message)


class FragmentError(FormulaError):
    """A formula does not belong to the requested mu-calculus fragment."""


class MonotonicityError(FormulaError):
    """A fixpoint variable occurs under an odd number of negations."""


class ProcessError(ReproError):
    """An action, effect, or condition-action rule is malformed."""


class ExecutionError(ReproError):
    """Dynamic error while executing an action."""


class IllegalParameters(ExecutionError):
    """A parameter substitution is not legal for an action in a state."""


class AbstractionDiverged(ReproError):
    """An abstraction loop exceeded its state fuse.

    For deterministic services this is the observable symptom of a
    run-unbounded DCDS (Theorem 4.6 shows run-boundedness is undecidable, so a
    fuse is the best possible behaviour); for nondeterministic services, of a
    state-unbounded DCDS (Theorem 5.5).
    """

    def __init__(self, message: str, growth_trace: tuple[int, ...] = (),
                 partial_states: int = 0):
        super().__init__(message)
        self.growth_trace = growth_trace
        self.partial_states = partial_states


class WorkerCrashError(ReproError):
    """A parallel worker died, hung past its dispatch timeout, or a batch
    exhausted its retry budget.

    Carries the worker slot (``worker``), why the link was declared lost
    (``reason``: ``"died"``/``"hung"``/``"send-failed"``/
    ``"retries-exhausted"``), the worker process exit code when one exists,
    and how many dispatched batches were in flight on the link.
    """

    def __init__(self, message: str, worker: int = -1, reason: str = "",
                 exitcode: int | None = None, batches_lost: int = 0):
        super().__init__(message)
        self.worker = worker
        self.reason = reason
        self.exitcode = exitcode
        self.batches_lost = batches_lost


class WireIntegrityError(ReproError):
    """A wire frame failed its CRC32 checksum or was truncated/misframed.

    ``link`` is the worker slot whose session decoded the frame (``None``
    outside the parallel transport — e.g. a corrupted checkpoint record,
    which :mod:`repro.engine.checkpoint` re-raises as
    :class:`CheckpointError`).
    """

    def __init__(self, message: str, link: int | None = None):
        super().__init__(message)
        self.link = link


class CheckpointError(ReproError):
    """A checkpoint file is missing, torn, corrupt, or belongs to a
    different specification/configuration than the resuming run."""


class UndecidableFragment(ReproError):
    """The requested verification task falls in an undecidable cell of Table 1."""

    def __init__(self, message: str, theorem: str = ""):
        super().__init__(message)
        self.theorem = theorem


class VerificationError(ReproError):
    """Model checking failed for a structural reason (not a counterexample)."""
