"""The end-to-end verification pipeline — Table 1 made executable.

:func:`verify` routes a (DCDS, µ-formula) pair through the decidable cells
of Table 1:

===================== ========== ============ ==========================
Services              Fragment   Precondition Route
===================== ========== ============ ==========================
deterministic         µLA (µLP)  weakly       deterministic abstraction
                                 acyclic      (Thm 4.3/4.4) + checker
nondeterministic      µLP        GR(+)-       RCYCL (Thm 5.4) + checker
                                 acyclic
mixed (§6)            µLP        GR(+) after  det->nondet rewrite
                                 rewrite      (Thm 6.1) + RCYCL
===================== ========== ============ ==========================

Everything else raises :class:`UndecidableFragment` citing the theorem that
dooms it — unless ``force=True``, in which case the construction runs under
its fuse anyway (it may succeed: the syntactic conditions are sufficient,
not necessary).

Checking itself runs on the compiled layer of :mod:`repro.mucalc.engine`;
``on_the_fly=True`` additionally fuses exploration and checking for
safety/reachability-shaped formulas (``AG phi`` / ``EF phi`` with a
state-local body): the state space is only built until a witness or
violation decides the verdict. Either way the report's ``checking_stats``
records how the verdict was reached.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro import env
from repro.analysis.dataflow_graph import dataflow_graph
from repro.analysis.dependency_graph import dependency_graph
from repro.core.dcds import DCDS, ServiceSemantics
from repro.engine.symmetry import resolve_symmetry
from repro.errors import UndecidableFragment, VerificationError
from repro.mucalc.ast import MuFormula
from repro.mucalc.checker import ModelChecker
from repro.mucalc.engine.onthefly import OnTheFlyVerifier, recognize_shape
from repro.mucalc.syntax import Fragment, classify, formula_constants
from repro.mucalc.witness import Certificate, Violation, Witness, extract
from repro.reductions.det_to_nondet import det_to_nondet
from repro.semantics.abstract_det import build_det_abstraction
from repro.semantics.rcycl import rcycl
from repro.semantics.transition_system import TransitionSystem
from repro.utils import sorted_values


@dataclass
class VerificationReport:
    """Everything :func:`verify` learned on the way to a verdict.

    ``abstraction_stats`` merges the structural stats of the constructed
    transition system (states, edges, totality, ...) with the engine's
    exploration counters (states/sec, frontier peak, expansion counts),
    the integer-coded kernel's counters under ``"kernel"`` (plan
    evaluations, interned facts/instances, reference fallbacks), and — for
    sharded builds — the worker-pool counters under ``"parallel"``,
    including the wire codec's IPC traffic (``ipc_bytes_sent`` /
    ``ipc_bytes_received`` / ``states_shipped``) and the coordinator's
    deserialize/apply times (``coordinator_decode_sec`` /
    ``coordinator_apply_sec``).
    ``checking_stats`` records the checking side: compiled-evaluator
    counters (fixpoint iterations, resets, peak extension size, memo hits)
    or, on the on-the-fly route, the early-stop reason and how many states
    were checked before the verdict was decided; its ``"witness"`` entry
    records whether and why (not) a certificate was extracted.
    """

    dcds_name: str
    formula: MuFormula
    fragment: Fragment
    route: str
    static_condition: str
    abstraction_stats: Dict[str, Any]
    holds: bool
    transition_system: Optional[TransitionSystem] = None
    checking_stats: Dict[str, Any] = field(default_factory=dict)
    #: Resolved exploration symmetry mode: ``"exact"`` or ``"quotient"``
    #: (quotient mode verifies against the symmetry-reduced state space,
    #: persistence-preserving bisimilar to the exact one by Lemma C.2).
    symmetry: str = "exact"
    #: Minimal certifying run for a *positive* EF-shaped verdict, replayable
    #: through :mod:`repro.mucalc.certify`; ``None`` when the formula shape
    #: or polarity admits no finite certificate (see
    #: ``checking_stats["witness"]["outcome"]``) or ``REPRO_NO_WITNESS=1``.
    witness: Optional[Certificate] = None
    #: Minimal violating run for a *negative* AG-shaped verdict (dual).
    violation: Optional[Certificate] = None

    def __repr__(self) -> str:
        verdict = "HOLDS" if self.holds else "FAILS"
        return (f"VerificationReport({self.dcds_name}: {verdict}, "
                f"fragment={self.fragment.value}, route={self.route}, "
                f"static={self.static_condition}, "
                f"|Theta|={self.abstraction_stats.get('states')})")


def _merged_stats(ts: TransitionSystem) -> Dict[str, Any]:
    """Structural stats plus the engine's construction-time counters."""
    return {**ts.stats(), **ts.exploration_stats}


def verify(dcds: DCDS, formula: MuFormula, max_states: int = 20000,
           force: bool = False, keep_ts: bool = True,
           on_the_fly: bool = False,
           workers: Optional[int] = None,
           symmetry: Optional[str] = None,
           checkpoint=None,
           memory_budget: Optional[int] = None) -> VerificationReport:
    """Verify ``dcds |= formula`` through the decidable routes of Table 1.

    With ``on_the_fly=True``, safety/reachability-shaped formulas fuse the
    state-space construction with the checker and stop on the first
    witness or refutation; other formulas fall back to the offline
    compiled checker.

    ``workers=N`` shards the deterministic-abstraction construction across
    an ``N``-process pool (:class:`repro.engine.ParallelExplorer`); the
    built state space — and therefore the verdict — is bit-identical to the
    sequential build. The RCYCL route stays sequential regardless (its
    used-value candidate pool is discovery-order dependent), so ``workers``
    is ignored there; the pool counters of a sharded build appear under
    ``abstraction_stats["parallel"]``.

    ``symmetry="quotient"`` verifies against the symmetry-reduced state
    space: the deterministic abstraction is explored quotient-by-
    construction (:class:`repro.engine.SymmetryReducer`), merging states
    isomorphic up to renaming of non-initial values (Lemma C.2) before
    they are expanded. The quotient is persistence-preserving bisimilar
    to the exact system, so quotient mode is gated to µLP formulas whose
    constants are all known to the specification — anything else raises
    :class:`~repro.errors.VerificationError`. The RCYCL route ignores the
    request (plain-instance states admit no sound quotient; recycling is
    the nondeterministic symmetry mechanism — see
    :mod:`repro.engine.symmetry`). Default ``"exact"``; environment
    default ``REPRO_SYMMETRY``, kill switch ``REPRO_NO_SYMMETRY=1``.

    ``checkpoint=<path>`` makes the deterministic-abstraction
    construction crash-safe: progress is periodically persisted
    (:mod:`repro.engine.checkpoint`) and a rerun with the same
    ``checkpoint=`` resumes from the last durable chunk instead of
    starting over — the resumed state space, and therefore the verdict,
    is bit-identical to an undisturbed build. Like ``workers`` and
    ``symmetry``, the RCYCL route ignores the request (its exploration is
    discovery-order dependent).

    ``memory_budget=<bytes>`` runs the deterministic-abstraction
    construction out-of-core (:mod:`repro.engine.store`): coded states
    spill to disk pages, only a budgeted hot set stays live, and the
    verdict is bit-identical to the unbudgeted run. The store's counters
    appear under ``abstraction_stats["store"]``. ``None`` falls back to
    ``REPRO_MEMORY_BUDGET``; ``REPRO_NO_SPILL=1`` is the kill switch.
    The RCYCL route ignores it, like ``workers``."""
    fragment = classify(formula)
    symmetry = resolve_symmetry(symmetry)

    if dcds.has_mixed_semantics():
        return _verify_mixed(dcds, formula, fragment, max_states, force,
                             keep_ts, on_the_fly, symmetry)
    if dcds.semantics is ServiceSemantics.DETERMINISTIC:
        return _verify_det(dcds, formula, fragment, max_states, force,
                           keep_ts, on_the_fly, workers, symmetry,
                           checkpoint, memory_budget)
    return _verify_nondet(dcds, formula, fragment, max_states, force,
                          keep_ts, on_the_fly, symmetry)


def _check_quotient_adequacy(dcds: DCDS, formula: MuFormula,
                             fragment: Fragment) -> None:
    """The Lemma C.2 adequacy gate for quotient-mode verification.

    The isomorphism quotient is *persistence-preserving* bisimilar to the
    exact system — it preserves µLP (Theorem 3.2) and nothing more — and
    its canonical renamings fix only the specification's known constants,
    so a formula naming any other value would be evaluated against renamed
    states.
    """
    if fragment is not Fragment.MU_LP:
        raise VerificationError(
            f"symmetry='quotient' verifies only µLP properties: the "
            f"isomorphism quotient is persistence-preserving bisimilar to "
            f"the exact system (Lemma C.2 / Theorem 3.2), which does not "
            f"preserve {fragment.value}; use symmetry='exact' or restrict "
            f"the property to µLP")
    foreign = formula_constants(formula) - dcds.known_constants()
    if foreign:
        raise VerificationError(
            f"symmetry='quotient' requires every formula constant to be "
            f"fixed by the quotient (ADOM(I0) and process constants); "
            f"foreign constants: {sorted_values(foreign)!r}")


def _certify(ts: TransitionSystem, formula: MuFormula, holds: bool,
             checking: Dict[str, Any],
             checker: Optional[ModelChecker] = None
             ) -> Optional[Certificate]:
    """Witness-layer hook: certify the verdict when the shape admits it.

    Extraction is a pure function of the (possibly partial) transition
    system — the on-the-fly route's early-stopped state space always
    contains the certifying run, since the explorer records the edge into
    a state before the observer can stop on it. The offline checker's
    converged root fixpoint cell, when available, bounds the search.
    Records an entry under ``checking["witness"]`` either way.
    """
    if env.witness_disabled():
        checking["witness"] = {"enabled": False}
        return None
    started = time.perf_counter()
    engine = checker.engine_for(formula) if checker is not None else None
    outcome = extract(ts, formula, holds, engine)
    certificate = outcome.certificate
    checking["witness"] = {
        "enabled": True,
        "outcome": outcome.reason,
        "steps": len(certificate.steps) if certificate is not None else 0,
        "extraction_sec": time.perf_counter() - started,
    }
    return certificate


def _check(dcds: DCDS, formula: MuFormula, build, on_the_fly: bool):
    """Run one route's construction + checking, possibly fused.

    ``build`` maps an optional Explorer observer to the constructed
    transition system. Returns ``(ts, holds, checking_stats,
    certificate)``."""
    shape = recognize_shape(formula) if on_the_fly else None
    if shape is not None:
        verifier = OnTheFlyVerifier(shape)
        ts = build(verifier.observe)
        holds = verifier.verdict()
        checking = verifier.stats_dict()
        return ts, holds, checking, _certify(ts, formula, holds, checking)
    ts = build(None)
    checker = ModelChecker(ts, extra_domain=dcds.known_constants())
    holds = checker.models(formula)
    checking = dict(checker.last_checking_stats)
    return ts, holds, checking, _certify(ts, formula, holds, checking,
                                         checker)


def _verify_det(dcds: DCDS, formula: MuFormula, fragment: Fragment,
                max_states: int, force: bool, keep_ts: bool,
                on_the_fly: bool = False,
                workers: Optional[int] = None,
                symmetry: str = "exact",
                checkpoint=None,
                memory_budget: Optional[int] = None) -> VerificationReport:
    if symmetry == "quotient":
        _check_quotient_adequacy(dcds, formula, fragment)
    if fragment is Fragment.MU_L and not force:
        raise UndecidableFragment(
            "full µL admits no faithful finite abstraction even for "
            "run-bounded DCDSs with deterministic services",
            theorem="Theorem 4.5")
    graph = dependency_graph(dcds)
    weakly_acyclic = graph.is_weakly_acyclic()
    if not weakly_acyclic and not force:
        raise UndecidableFragment(
            f"DCDS is not weakly acyclic (witness special edge "
            f"{graph.violating_special_edge()}); run-boundedness cannot be "
            f"certified and is undecidable to check",
            theorem="Theorem 4.6 / 4.8")
    ts, holds, checking, certificate = _check(
        dcds, formula,
        lambda observer: build_det_abstraction(
            dcds, max_states=max_states, observer=observer,
            workers=workers, symmetry=symmetry, checkpoint=checkpoint,
            memory_budget=memory_budget),
        on_the_fly)
    return VerificationReport(
        dcds.name, formula, fragment, "det-abstraction",
        "weakly-acyclic" if weakly_acyclic else "forced",
        _merged_stats(ts), holds, ts if keep_ts else None, checking,
        symmetry=symmetry,
        witness=certificate if isinstance(certificate, Witness) else None,
        violation=certificate if isinstance(certificate, Violation)
        else None)


def _verify_nondet(dcds: DCDS, formula: MuFormula, fragment: Fragment,
                   max_states: int, force: bool, keep_ts: bool,
                   on_the_fly: bool = False,
                   symmetry: str = "exact") -> VerificationReport:
    if fragment is not Fragment.MU_LP and not force:
        theorem = "Theorem 5.2" if fragment is Fragment.MU_LA \
            else "Theorem 5.1"
        raise UndecidableFragment(
            f"verification of {fragment.value} over nondeterministic "
            f"services is undecidable even for state-bounded DCDSs; "
            f"restrict the property to µLP",
            theorem=theorem)
    graph = dataflow_graph(dcds)
    if graph.is_gr_acyclic():
        condition = "gr-acyclic"
    elif graph.is_gr_plus_acyclic():
        condition = "gr-plus-acyclic"
    elif force:
        condition = "forced"
    else:
        raise UndecidableFragment(
            f"DCDS is not GR(+)-acyclic (witness "
            f"{graph.gr_plus_violation()!r}); state-boundedness cannot be "
            f"certified and is undecidable to check",
            theorem="Theorem 5.5 / 5.7")
    # Quotient mode is a deterministic-route optimization: RCYCL's states
    # are plain instances, which admit no sound state quotient (merging
    # conflates value-persists with value-replaced transitions — see
    # repro.engine.symmetry), and RCYCL's value *recycling* already is the
    # paper's symmetry mechanism for nondeterministic services. The
    # request is therefore ignored here, like ``workers``.
    ts, holds, checking, certificate = _check(
        dcds, formula,
        lambda observer: rcycl(
            dcds, max_states=max_states, observer=observer),
        on_the_fly)
    return VerificationReport(
        dcds.name, formula, fragment, "rcycl", condition, _merged_stats(ts),
        holds, ts if keep_ts else None, checking, symmetry="exact",
        witness=certificate if isinstance(certificate, Witness) else None,
        violation=certificate if isinstance(certificate, Violation)
        else None)


def _verify_mixed(dcds: DCDS, formula: MuFormula, fragment: Fragment,
                  max_states: int, force: bool, keep_ts: bool,
                  on_the_fly: bool = False,
                  symmetry: str = "exact") -> VerificationReport:
    deterministic_functions = [
        function.name for function in dcds.process.functions
        if dcds.is_deterministic(function.name)]
    rewritten = det_to_nondet(dcds, only_functions=deterministic_functions)
    report = _verify_nondet(rewritten, formula, fragment, max_states, force,
                            keep_ts, on_the_fly, symmetry)
    report.route = f"mixed->({report.route})"
    report.dcds_name = dcds.name
    return report
