"""History- and persistence-preserving bisimulations (Sections 3.1–3.2).

Both notions relate states *together with* a partial bijection ``h`` between
the two systems' data domains:

* **history-preserving** (µLA-invariant, Thm 3.1): ``h`` induces an
  isomorphism of the two current databases and successor moves must extend
  ``h`` — names of *all* values ever seen are preserved forever;
* **persistence-preserving** (µLP-invariant, Thm 3.2): ``h`` is an
  isomorphism of the current databases and successor moves need only agree
  on the values that *persist* (``h`` restricted to the intersection of the
  current and successor active domains).

Two checkers are provided:

* :func:`bounded_bisimilar` — the step-bounded game, usable against
  truncated concrete explorations (states at the horizon are not expanded);
* :func:`bisimilar` — the full greatest-fixpoint computation over finite
  transition systems, by on-the-fly closure of the candidate-triple graph
  followed by refinement.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.engine.fingerprint import fingerprints_may_be_isomorphic
from repro.errors import ReproError
from repro.relational.instance import Instance
from repro.relational.isomorphism import iter_isomorphisms
from repro.semantics.transition_system import State, TransitionSystem

HItems = FrozenSet[Tuple[object, object]]


class BisimMode(enum.Enum):
    HISTORY = "history"
    PERSISTENCE = "persistence"


def _initial_bijections(db1: Instance, db2: Instance,
                        mode: BisimMode) -> Iterator[Dict]:
    # Fingerprints are isomorphism-invariant: unequal fingerprints refute
    # every candidate bijection before the backtracking search starts.
    if not fingerprints_may_be_isomorphic(db1, db2):
        return
    yield from iter_isomorphisms(db1, db2)


def _extensions(h: Dict, db1_current: Instance, db1_next: Instance,
                db2_next: Instance, mode: BisimMode) -> Iterator[Dict]:
    """Candidate ``h'`` for a move, per the mode's extension discipline.

    Returns full mappings for the *next* pair: in history mode the union
    ``h ∪ iso`` (a partial bijection over everything seen so far); in
    persistence mode just the new isomorphism (``h`` is forgotten except on
    persisting values).
    """
    if not fingerprints_may_be_isomorphic(db1_next, db2_next):
        return
    adom_next = db1_next.active_domain()
    if mode is BisimMode.HISTORY:
        partial = {value: h[value] for value in adom_next if value in h}
        image = set(h.values())
        for iso in iter_isomorphisms(db1_next, db2_next, partial=partial):
            # Injectivity with the history: a value not in dom(h) must not
            # map onto a name already used by the history.
            collision = any(
                source not in h and target in image
                for source, target in iso.items())
            if collision:
                continue
            extended = dict(h)
            extended.update(iso)
            yield extended
    else:
        persisting = db1_current.active_domain() & adom_next
        partial = {value: h[value] for value in persisting if value in h}
        yield from iter_isomorphisms(db1_next, db2_next, partial=partial)


def _local_ok(h: Dict, db1: Instance, db2: Instance) -> bool:
    """``h`` (restricted to the active domains) induces an isomorphism."""
    if not (db1.active_domain() <= set(h)):
        return False
    return db1.rename(h) == db2


# ---------------------------------------------------------------------------
# Bounded game
# ---------------------------------------------------------------------------

def bounded_bisimilar(
    ts1: TransitionSystem, ts2: TransitionSystem, depth: int,
    mode: BisimMode = BisimMode.HISTORY,
    s1: Optional[State] = None, s2: Optional[State] = None,
) -> bool:
    """Bisimilarity up to ``depth`` rounds of the game.

    Sound for comparing a *truncated* concrete exploration against a full
    abstraction: if the systems are bisimilar, they are bounded-bisimilar at
    every depth; a bounded failure refutes full bisimilarity (provided the
    compared region is not truncated shallower than ``depth``).
    """
    start1 = ts1.initial if s1 is None else s1
    start2 = ts2.initial if s2 is None else s2
    memo: Dict[Tuple[State, State, HItems, int], bool] = {}

    def game(state1: State, state2: State, h: Dict, remaining: int) -> bool:
        key = (state1, state2, frozenset(h.items()), remaining)
        if key in memo:
            return memo[key]
        db1, db2 = ts1.db(state1), ts2.db(state2)
        if not _local_ok(h, db1, db2):
            memo[key] = False
            return False
        if remaining == 0:
            memo[key] = True
            return True
        memo[key] = True  # provisional, for cyclic revisits within budget
        result = True
        for next1 in ts1.sorted_successors(state1):
            if not any(
                    game(next1, next2, h_next, remaining - 1)
                    for next2 in ts2.sorted_successors(state2)
                    for h_next in _extensions(h, db1, ts1.db(next1),
                                              ts2.db(next2), mode)):
                result = False
                break
        if result:
            for next2 in ts2.sorted_successors(state2):
                if not any(
                        game(next1, next2, h_next, remaining - 1)
                        for next1 in ts1.sorted_successors(state1)
                        for h_next in _extensions(h, db1, ts1.db(next1),
                                                  ts2.db(next2), mode)):
                    result = False
                    break
        memo[key] = result
        return result

    return any(
        game(start1, start2, h0, depth)
        for h0 in _initial_bijections(ts1.db(start1), ts2.db(start2), mode))


# ---------------------------------------------------------------------------
# Full greatest fixpoint
# ---------------------------------------------------------------------------

def bisimilar(
    ts1: TransitionSystem, ts2: TransitionSystem,
    mode: BisimMode = BisimMode.HISTORY,
    max_triples: int = 200000,
    reduce_fixed: Optional[frozenset] = None,
) -> bool:
    """Full bisimilarity between two *finite* transition systems.

    Computes the greatest fixpoint over the candidate-triple graph
    ``(s1, h, s2)``, discovered on the fly from the initial isomorphisms.
    The triple space is finite (partial bijections over the two finite value
    sets); ``max_triples`` is a safety fuse.

    ``reduce_fixed`` routes the game onto quotient transition systems:
    both inputs are first replaced by their isomorphism quotients fixing
    the given values (:func:`repro.semantics.quotient
    .isomorphism_quotient`), collapsing the candidate-triple space. This
    changes the question to *quotient-level* bisimilarity — sound for
    comparing two constructions of the same state space, which conflate
    classes identically; a quotient is not in general bisimilar to its
    own original (see :mod:`repro.engine.symmetry`). Persistence mode
    only: states merged by Lemma C.2 are at least pairwise
    persistence-bisimilar, so the quotient never conflates
    history-distinguishable behaviours it should keep apart for µLP-level
    comparisons, while history mode could not tolerate any merging.
    """
    if reduce_fixed is not None:
        if mode is not BisimMode.PERSISTENCE:
            raise ReproError(
                "symmetry pre-reduction (reduce_fixed) is only sound for "
                "persistence-preserving bisimilarity: the isomorphism "
                "quotient of Lemma C.2 does not preserve history")
        from repro.semantics.quotient import isomorphism_quotient
        ts1 = isomorphism_quotient(ts1, reduce_fixed)[0]
        ts2 = isomorphism_quotient(ts2, reduce_fixed)[0]
    if ts1.truncated_states or ts2.truncated_states:
        raise ReproError(
            "full bisimilarity needs fully expanded systems; "
            "use bounded_bisimilar for truncated explorations")

    Triple = Tuple[State, HItems, State]
    initial_triples: List[Triple] = [
        (ts1.initial, frozenset(h.items()), ts2.initial)
        for h in _initial_bijections(
            ts1.db(ts1.initial), ts2.db(ts2.initial), mode)]
    if not initial_triples:
        return False

    # Closure: discover all triples reachable through candidate moves.
    moves_forward: Dict[Triple, Dict[State, Set[Triple]]] = {}
    moves_backward: Dict[Triple, Dict[State, Set[Triple]]] = {}
    discovered: Set[Triple] = set()
    frontier: List[Triple] = []

    def discover(triple: Triple) -> None:
        if triple not in discovered:
            if len(discovered) >= max_triples:
                raise ReproError(
                    f"bisimulation triple space exceeded {max_triples}")
            discovered.add(triple)
            frontier.append(triple)

    for triple in initial_triples:
        h = dict(triple[1])
        if _local_ok(h, ts1.db(triple[0]), ts2.db(triple[2])):
            discover(triple)

    while frontier:
        triple = frontier.pop()
        state1, h_items, state2 = triple
        h = dict(h_items)
        db1 = ts1.db(state1)
        forward: Dict[State, Set[Triple]] = {}
        for next1 in ts1.sorted_successors(state1):
            options: Set[Triple] = set()
            for next2 in ts2.sorted_successors(state2):
                for h_next in _extensions(h, db1, ts1.db(next1),
                                          ts2.db(next2), mode):
                    if _local_ok(h_next, ts1.db(next1), ts2.db(next2)):
                        candidate = (next1, frozenset(h_next.items()), next2)
                        options.add(candidate)
                        discover(candidate)
            forward[next1] = options
        backward: Dict[State, Set[Triple]] = {}
        for next2 in ts2.sorted_successors(state2):
            options = set()
            for next1 in ts1.sorted_successors(state1):
                for h_next in _extensions(h, db1, ts1.db(next1),
                                          ts2.db(next2), mode):
                    if _local_ok(h_next, ts1.db(next1), ts2.db(next2)):
                        candidate = (next1, frozenset(h_next.items()), next2)
                        options.add(candidate)
                        discover(candidate)
            backward[next2] = options
        moves_forward[triple] = forward
        moves_backward[triple] = backward

    # Refinement: kill triples whose move obligations cannot be met.
    alive: Set[Triple] = set(discovered)
    changed = True
    while changed:
        changed = False
        for triple in list(alive):
            forward = moves_forward[triple]
            backward = moves_backward[triple]
            ok = all(options & alive for options in forward.values()) and \
                all(options & alive for options in backward.values())
            if not ok:
                alive.discard(triple)
                changed = True

    return any(triple in alive for triple in initial_triples
               if triple in discovered)
