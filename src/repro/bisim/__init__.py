"""Bisimulations over data-labeled transition systems."""

from repro.bisim.core import BisimMode, bisimilar, bounded_bisimilar

__all__ = ["BisimMode", "bisimilar", "bounded_bisimilar"]
