"""Visualization: DOT export of transition systems and analysis graphs."""

from repro.viz.dot import (
    certificate_to_dot, dataflow_graph_to_dot, dependency_graph_to_dot,
    transition_system_to_dot)

__all__ = ["certificate_to_dot", "dataflow_graph_to_dot",
           "dependency_graph_to_dot", "transition_system_to_dot"]
