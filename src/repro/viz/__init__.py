"""Visualization: DOT export of transition systems and analysis graphs."""

from repro.viz.dot import (
    dataflow_graph_to_dot, dependency_graph_to_dot, transition_system_to_dot)

__all__ = ["dataflow_graph_to_dot", "dependency_graph_to_dot",
           "transition_system_to_dot"]
