"""Graphviz DOT export for transition systems and analysis graphs.

Pure text generation (no graphviz dependency); the output reproduces the
visual conventions of the paper's figures: special edges are starred/dashed,
states are labeled with their database.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.dataflow_graph import DataflowGraph
from repro.analysis.dependency_graph import DependencyGraph
from repro.semantics.transition_system import TransitionSystem


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def transition_system_to_dot(ts: TransitionSystem,
                             max_states: Optional[int] = None,
                             highlight: Optional[object] = None) -> str:
    """Render a transition system (Figures 2–4, 6, 7 style).

    ``highlight`` accepts a :class:`~repro.mucalc.witness.Certificate` (or
    any object with a ``states`` tuple and ``steps`` carrying
    ``action``/``state``): its run is drawn in red with thick edges, the
    terminal state double-bordered. Highlighted states are always
    included, even past a ``max_states`` truncation.
    """
    path_states: tuple = ()
    path_edges = set()
    if highlight is not None:
        path_states = tuple(highlight.states)
        for position in range(1, len(highlight.steps)):
            step = highlight.steps[position]
            path_edges.add((path_states[position - 1], step.action,
                            step.state))
    lines = [f'digraph "{_escape(ts.name or "ts")}" {{',
             "  rankdir=TB;",
             '  node [shape=box, fontsize=10];']
    states = sorted(ts.states, key=repr)
    if max_states is not None:
        states = states[:max_states]
        for state in path_states:
            if state not in set(states):
                states.append(state)
    included = set(states)
    on_path = set(path_states)
    index = {state: f"s{i}" for i, state in enumerate(states)}
    for state in states:
        label = _escape(repr(ts.db(state)))
        style = ', style=bold' if state == ts.initial else ""
        trunc = ', color=gray' if state in ts.truncated_states else ""
        mark = ""
        if state in on_path:
            mark = ', color=red, penwidth=2'
            if path_states and state == path_states[-1]:
                mark = ', color=red, penwidth=2, peripheries=2'
        lines.append(
            f'  {index[state]} [label="{label}"{style}{trunc}{mark}];')
    # sorted_edges: edge storage is a hash set, so plain edges() would make
    # the rendering differ between runs.
    for source, label, target in ts.sorted_edges():
        if source in included and target in included:
            attributes = []
            if label:
                attributes.append(f'label="{_escape(label)}"')
            if (source, label, target) in path_edges:
                attributes.append("color=red, penwidth=2")
            rendered = f' [{", ".join(attributes)}]' if attributes else ""
            lines.append(f"  {index[source]} -> {index[target]}{rendered};")
    lines.append("}")
    return "\n".join(lines)


def certificate_to_dot(ts: TransitionSystem, certificate,
                       max_states: Optional[int] = None) -> str:
    """Convenience: the transition system with a certificate's run
    highlighted (``report.witness`` / ``report.violation``)."""
    return transition_system_to_dot(ts, max_states=max_states,
                                    highlight=certificate)


def dependency_graph_to_dot(graph: DependencyGraph) -> str:
    """Render a dependency graph (Figures 5, 10 style): positions as nodes,
    special edges starred."""
    lines = [f'digraph "{_escape(graph.dcds_name or "deps")}" {{',
             '  node [shape=ellipse, fontsize=10];']
    index = {}
    for i, node in enumerate(sorted(graph.nodes, key=repr)):
        index[node] = f"p{i}"
        relation, position = node
        lines.append(f'  p{i} [label="{_escape(relation)},{position + 1}"];')
    for source, target, special in graph.edges():
        attributes = ' [label="*", style=dashed]' if special else ""
        lines.append(f"  {index[source]} -> {index[target]}{attributes};")
    lines.append("}")
    return "\n".join(lines)


def dataflow_graph_to_dot(graph: DataflowGraph) -> str:
    """Render a dataflow graph (Figures 8, 9 style)."""
    lines = [f'digraph "{_escape(graph.dcds_name or "dataflow")}" {{',
             '  node [shape=ellipse, fontsize=10];']
    index = {}
    for i, node in enumerate(sorted(graph.nodes)):
        index[node] = f"n{i}"
        lines.append(f'  n{i} [label="{_escape(node)}"];')
    for edge in graph.edges:
        attributes = ' [label="*", style=dashed]' if edge.special else ""
        lines.append(
            f"  {index[edge.source]} -> {index[edge.target]}{attributes};")
    lines.append("}")
    return "\n".join(lines)
