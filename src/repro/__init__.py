"""repro — Verification of Relational Data-Centric Dynamic Systems.

An executable reproduction of Bagheri Hariri, Calvanese, De Giacomo,
Deutsch, Montali: *Verification of Relational Data-Centric Dynamic Systems
with External Services* (PODS 2013).

Quickstart::

    from repro import DCDSBuilder, parse_mu, verify

    builder = DCDSBuilder(name="demo", constants={"a"})
    builder.schema("P/1", "Q/2", "R/1")
    builder.initial("P(a), Q(a, a)")
    builder.service("f/1").service("g/1")
    builder.action("alpha",
                   "Q(a, a) & P(x) ~> R(x)",
                   "P(x) ~> P(x), Q(f(x), g(x))")
    builder.rule("true", "alpha")
    dcds = builder.build()

    report = verify(dcds, parse_mu("mu Z. (R('a') | <-> Z)"))
    assert report.holds

See :mod:`repro.gallery` for every example in the paper and
:mod:`repro.pipeline` for the Table 1 routing logic.
"""

from repro.analysis import (
    dataflow_graph, dependency_graph, is_gr_acyclic, is_gr_plus_acyclic,
    is_weakly_acyclic, positive_approximate, probe_run_bounded,
    probe_state_bounded)
from repro.bisim import BisimMode, bisimilar, bounded_bisimilar
from repro.core import (
    DCDS, DCDSBuilder, DataLayer, EqualityConstraint, ProcessLayer,
    ServiceSemantics)
from repro.errors import (
    AbstractionDiverged, ConstraintViolation, FragmentError, ReproError,
    UndecidableFragment)
from repro.fol import parse_formula
from repro.mucalc import (
    Fragment, ModelChecker, check, classify, parse_mu)
from repro.pipeline import VerificationReport, verify
from repro.relational import (
    DatabaseSchema, Fact, Instance, RelationSchema, fact)
from repro.semantics import (
    DeterministicOracle, NondeterministicOracle, TransitionSystem,
    build_det_abstraction, explore_concrete, isomorphism_quotient, rcycl,
    simulate)

__version__ = "1.0.0"

__all__ = [
    "AbstractionDiverged", "BisimMode", "ConstraintViolation", "DCDS",
    "DCDSBuilder", "DataLayer", "DatabaseSchema", "DeterministicOracle",
    "EqualityConstraint", "Fact", "Fragment", "FragmentError", "Instance",
    "ModelChecker", "NondeterministicOracle", "ProcessLayer",
    "RelationSchema", "ReproError", "ServiceSemantics", "TransitionSystem",
    "UndecidableFragment", "VerificationReport", "bisimilar",
    "bounded_bisimilar", "build_det_abstraction", "check", "classify",
    "dataflow_graph", "dependency_graph", "explore_concrete", "fact",
    "is_gr_acyclic", "is_gr_plus_acyclic", "is_weakly_acyclic",
    "isomorphism_quotient", "parse_formula", "parse_mu",
    "positive_approximate", "probe_run_bounded", "probe_state_bounded",
    "rcycl", "simulate", "verify",
]
