"""Arbitrary FO integrity constraints via equality constraints (Section 6).

Any FO sentence ``IC`` (active-domain semantics) can be enforced on every
state of a DCDS with the trick of Section 6: add an auxiliary relation
``aux`` holding one tuple ``(a, b)`` of distinct constants, copy it in every
action, and add the equality constraint ``~IC & aux(x, y) -> x = y``. A
state violating ``IC`` would force ``a = b`` — impossible — so constraint-
violating successors simply do not exist.
"""

from __future__ import annotations

from repro.core.data_layer import DataLayer, EqualityConstraint
from repro.core.dcds import DCDS
from repro.core.process_layer import Action, EffectSpec, ProcessLayer
from repro.fol.ast import And, Atom, Formula, Not, TRUE
from repro.relational.instance import Fact, Instance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import Var

AUX = "auxIC"
AUX_LEFT = "auxA"
AUX_RIGHT = "auxB"


def with_integrity_constraint(dcds: DCDS, constraint: Formula,
                              name: str = "IC") -> DCDS:
    """Enforce the FO sentence ``constraint`` on every reachable state."""
    if constraint.free_variables():
        raise ValueError("integrity constraints must be FO sentences")

    if AUX in dcds.schema:
        schema = dcds.schema
        initial = dcds.data.initial
        actions = dcds.process.actions
    else:
        schema = DatabaseSchema(
            dcds.schema.relations + (RelationSchema(AUX, 2),))
        initial = Instance(tuple(dcds.data.initial.facts)
                           + (Fact(AUX, (AUX_LEFT, AUX_RIGHT)),))
        copy_effect = EffectSpec(
            Atom(AUX, (Var("aux~x"), Var("aux~y"))), TRUE,
            (Atom(AUX, (Var("aux~x"), Var("aux~y"))),))
        actions = tuple(
            Action(action.name, action.params,
                   action.effects + (copy_effect,))
            for action in dcds.process.actions)

    x, y = Var("ic~x"), Var("ic~y")
    equality = EqualityConstraint(
        And.of(Not(constraint), Atom(AUX, (x, y))), ((x, y),), name=name)

    data = DataLayer(schema, dcds.data.constraints + (equality,), initial)
    process = ProcessLayer(dcds.process.functions, actions,
                           dcds.process.rules)
    return DCDS(data, process, dcds.semantics, f"{dcds.name}+{name}")
