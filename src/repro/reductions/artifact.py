"""Artifact-centric business processes compiled into DCDSs (Section 6).

The paper argues DCDSs and the artifact model are expressively equivalent
and sketches the direction artifact -> DCDS:

* each artifact type ``T`` (a tuple schema with an ``id`` attribute) becomes
  a relation with ``id`` declared unique via an equality constraint;
* action pre-conditions become condition-action rules;
* post-conditions, rewritten to Skolem normal form, become effects whose
  external inputs (the ∃FO variables over the infinite domain) are
  nondeterministic service calls.

This module implements that compilation for a structured artifact dialect:
post-conditions are given as guarded templates (query over the current
instance + head atoms), with :class:`ExternalInput` markers for environment
inputs. Disjunctive post-conditions are expressed as several templates (the
paper notes the extra expressivity can be shifted to the rules).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ProcessError
from repro.core.data_layer import DataLayer, key_constraint
from repro.core.dcds import DCDS, ServiceSemantics
from repro.core.process_layer import (
    Action, CARule, EffectSpec, ProcessLayer, ServiceFunction)
from repro.fol.ast import Atom, Formula, TRUE
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import Param, ServiceCall, Var


@dataclass(frozen=True)
class ExternalInput:
    """A placeholder for a value supplied by the environment.

    ``ExternalInput("price")`` in a post-condition head compiles to a
    nondeterministic service call ``in_price(...)`` whose arguments are the
    ``depends_on`` terms (so inputs may be correlated with artifact data).
    """

    name: str
    depends_on: Tuple[Any, ...] = ()

    def __repr__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True)
class ArtifactType:
    """An artifact type: named tuple schema whose first attribute is the id."""

    name: str
    attributes: Tuple[str, ...]

    def __post_init__(self):
        if not self.attributes or self.attributes[0] != "id":
            raise ProcessError(
                f"artifact type {self.name!r} must have 'id' as its first "
                f"attribute")

    @property
    def arity(self) -> int:
        return len(self.attributes)


@dataclass(frozen=True)
class PostTemplate:
    """One conjunct of a post-condition: guard over the current instance,
    head atoms over the successor (with possible external inputs)."""

    guard: Formula
    head: Tuple[Atom, ...]


@dataclass(frozen=True)
class ArtifactAction:
    """An artifact action with FO pre-condition and template post-condition."""

    name: str
    params: Tuple[Param, ...]
    pre: Formula
    post: Tuple[PostTemplate, ...]


@dataclass(frozen=True)
class ArtifactSystem:
    """An artifact system: types, an underlying database, and actions."""

    types: Tuple[ArtifactType, ...]
    database: DatabaseSchema
    actions: Tuple[ArtifactAction, ...]
    initial: Instance
    name: str = "artifact-system"


def compile_to_dcds(system: ArtifactSystem) -> DCDS:
    """Compile an artifact system to a DCDS with nondeterministic services."""
    relations = tuple(
        RelationSchema(artifact.name, artifact.arity, artifact.attributes)
        for artifact in system.types) + system.database.relations
    schema = DatabaseSchema(relations)

    constraints = []
    for artifact in system.types:
        constraints.extend(
            key_constraint(artifact.name, artifact.arity, (0,),
                           name=f"id:{artifact.name}"))

    services: Dict[Tuple[str, int], ServiceFunction] = {}
    actions: List[Action] = []
    rules: List[CARule] = []

    for artifact_action in system.actions:
        effects = []
        for template in artifact_action.post:
            head = tuple(
                _compile_atom(atom_, artifact_action.name, services)
                for atom_ in template.head)
            from repro.core.builder import split_body

            q_plus, q_minus = split_body(template.guard)
            effects.append(EffectSpec(q_plus, q_minus, head))
        actions.append(Action(artifact_action.name, artifact_action.params,
                              tuple(effects)))
        rules.append(CARule(artifact_action.pre, artifact_action.name))

    data = DataLayer(schema, tuple(constraints), system.initial)
    process = ProcessLayer(tuple(services.values()), tuple(actions),
                           tuple(rules))
    return DCDS(data, process, ServiceSemantics.NONDETERMINISTIC,
                system.name)


def _compile_atom(atom_: Atom, action_name: str,
                  services: Dict[Tuple[str, int], ServiceFunction]) -> Atom:
    terms = []
    for term in atom_.terms:
        if isinstance(term, ExternalInput):
            function_name = f"in_{term.name}"
            arity = len(term.depends_on)
            services.setdefault((function_name, arity),
                                ServiceFunction(function_name, arity))
            terms.append(ServiceCall(function_name, tuple(term.depends_on)))
        else:
            terms.append(term)
    return Atom(atom_.relation, tuple(terms))
