"""Theorem 6.2: nondeterministic services simulated by deterministic ones.

The trick is timestamping: a deterministic service called with an extra,
never-repeating timestamp argument is free to return different values for
otherwise identical calls. The rewrite:

* adds relations ``succ/2`` and ``now/1`` and a deterministic service
  ``newTs/1`` generating the next timestamp;
* adds to every action the effects
  ``now(x) ~> now(newTs(x)), succ(x, newTs(x))`` and
  ``succ(x, y) ~> succ(x, y)``;
* declares the second component of ``succ`` a key, which (together with the
  seed ``succ(0,0), succ(0,1), now(1)``) forces ``succ`` to stay a linear
  order — the same device as the Turing-machine tape in Theorem 4.1;
* rewrites every service call ``f(t...)`` into ``f_d(t..., x)`` where ``x``
  is the *current* timestamp, bound by adding ``now(x)`` to the effect's
  positive query.

The paper's sketch stamps calls with the freshly generated timestamp
``new(x)``; that nests Skolem terms, which the DCDS syntax (Section 2.2)
does not allow. Stamping with the current timestamp is equivalent: within
one transition all occurrences of the same original call share one stamp —
exactly the N-EXECS rule that a call is invoked once per transition — and
across transitions the stamp differs, so the deterministic service is free
to answer differently.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.data_layer import DataLayer, functional_dependency
from repro.core.dcds import DCDS, ServiceSemantics
from repro.core.process_layer import (
    Action, CARule, EffectSpec, ProcessLayer, ServiceFunction)
from repro.fol.ast import And, Atom, TRUE
from repro.relational.instance import Fact, Instance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import ServiceCall, Var

NOW = "now"
SUCC = "succ"
NEW_TS = "newTs"
_TS_VAR = Var("ts~now")


def detname(function_name: str) -> str:
    """The deterministic counterpart of a nondeterministic service."""
    return f"{function_name}_d"


def nondet_to_det(dcds: DCDS) -> DCDS:
    """Rewrite a nondeterministic-service DCDS per Theorem 6.2."""
    extra_relations = (RelationSchema(SUCC, 2), RelationSchema(NOW, 1))
    schema = DatabaseSchema(dcds.schema.relations + extra_relations)

    constraints = list(dcds.data.constraints)
    # Key on the second component of succ rules out cycles in the timestamp
    # chain (proof of Theorem 6.2).
    constraints.append(functional_dependency(
        SUCC, 2, (1,), 0, name="succ-key"))

    initial = Instance(tuple(dcds.data.initial.facts) + (
        Fact(SUCC, (0, 0)), Fact(SUCC, (0, 1)), Fact(NOW, (1,))))

    functions = [ServiceFunction(detname(f.name), f.arity + 1,
                                 deterministic=True)
                 for f in dcds.process.functions]
    functions.append(ServiceFunction(NEW_TS, 1, deterministic=True))

    timestamp_call = ServiceCall(NEW_TS, (_TS_VAR,))
    clock_effects = (
        # now(x) ~> now(newTs(x)) & succ(x, newTs(x))
        EffectSpec(Atom(NOW, (_TS_VAR,)), TRUE,
                   (Atom(NOW, (timestamp_call,)),
                    Atom(SUCC, (_TS_VAR, timestamp_call)))),
        # succ(x, y) ~> succ(x, y)
        EffectSpec(Atom(SUCC, (Var("ts~a"), Var("ts~b"))), TRUE,
                   (Atom(SUCC, (Var("ts~a"), Var("ts~b"))),)),
    )

    new_actions = []
    for action in dcds.process.actions:
        new_effects = []
        for effect in action.effects:
            rewritten_head, used_timestamp = _rewrite_head(effect)
            q_plus = effect.q_plus
            if used_timestamp:
                q_plus = And.of(q_plus, Atom(NOW, (_TS_VAR,)))
            new_effects.append(
                EffectSpec(q_plus, effect.q_minus, rewritten_head))
        new_actions.append(Action(action.name, action.params,
                                  tuple(new_effects) + clock_effects))

    data = DataLayer(schema, tuple(constraints), initial)
    process = ProcessLayer(tuple(functions), tuple(new_actions),
                           dcds.process.rules)
    return DCDS(data, process, ServiceSemantics.DETERMINISTIC,
                f"{dcds.name}->det")


def _rewrite_head(effect: EffectSpec) -> Tuple[Tuple[Atom, ...], bool]:
    """Replace each call ``f(t...)`` by ``f_d(t..., ts)`` for the current
    timestamp variable ``ts`` (bound by joining ``now(ts)`` into ``q+``)."""
    used = False
    rewritten: List[Atom] = []
    for atom_ in effect.head:
        terms = []
        for term in atom_.terms:
            if isinstance(term, ServiceCall):
                used = True
                terms.append(ServiceCall(
                    detname(term.function), term.args + (_TS_VAR,)))
            else:
                terms.append(term)
        rewritten.append(Atom(atom_.relation, tuple(terms)))
    return tuple(rewritten), used
