"""Reductions between DCDS classes (Section 6)."""

from repro.reductions.artifact import (
    ArtifactAction, ArtifactSystem, ArtifactType, ExternalInput,
    PostTemplate, compile_to_dcds)
from repro.reductions.det_to_nondet import (
    det_to_nondet, memory_relation_name, project_to_original)
from repro.reductions.integrity import with_integrity_constraint
from repro.reductions.nondet_to_det import detname, nondet_to_det

__all__ = [
    "ArtifactAction", "ArtifactSystem", "ArtifactType", "ExternalInput",
    "PostTemplate", "compile_to_dcds", "det_to_nondet", "detname",
    "memory_relation_name", "nondet_to_det", "project_to_original",
    "with_integrity_constraint",
]
