"""Theorem 6.1: deterministic services simulated by nondeterministic ones.

For each service ``f/n`` add a relation ``R_f/(n+1)`` recording every call
result. Each effect that issues ``f(t...)`` additionally records
``R_f(t..., f(t...))``; every action copies all ``R_f`` relations; a
functional dependency ``args -> result`` on ``R_f`` forces any evaluation
disagreeing with a recorded result to violate the constraints — i.e. the
nondeterministic services are coerced into behaving deterministically.

Properties (Theorem 6.1): the projection of the rewritten system's
transition system onto the original schema coincides with the original one,
and run-boundedness of the original implies state-boundedness of the
rewrite... within the reachable fragment actually bounded by the run.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.data_layer import DataLayer, functional_dependency
from repro.core.dcds import DCDS, ServiceSemantics
from repro.core.process_layer import (
    Action, CARule, EffectSpec, ProcessLayer, ServiceFunction)
from repro.fol.ast import Atom, TRUE
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import ServiceCall, Var


def memory_relation_name(function_name: str) -> str:
    """The name of the call-memory relation for a service function."""
    return f"Rmem_{function_name}"


def det_to_nondet(dcds: DCDS, only_functions=None) -> DCDS:
    """Rewrite a deterministic-service DCDS per Theorem 6.1.

    ``only_functions`` optionally restricts the memory-relation treatment to
    a subset of service functions — used for the *mixed semantics* of
    Section 6, where only the deterministic services need to be coerced.
    """
    functions = dcds.process.functions
    if only_functions is None:
        treated = [f for f in functions]
    else:
        wanted = set(only_functions)
        treated = [f for f in functions if f.name in wanted]
    memory_relations = [
        RelationSchema(memory_relation_name(f.name), f.arity + 1)
        for f in treated]
    schema = DatabaseSchema(
        dcds.schema.relations + tuple(memory_relations))

    constraints = list(dcds.data.constraints)
    for function in treated:
        constraints.append(functional_dependency(
            memory_relation_name(function.name), function.arity + 1,
            tuple(range(function.arity)), function.arity,
            name=f"det:{function.name}"))

    copy_effects = []
    for function in treated:
        relation = memory_relation_name(function.name)
        variables = tuple(Var(f"m{i}") for i in range(function.arity + 1))
        copy_effects.append(EffectSpec(
            Atom(relation, variables), TRUE, (Atom(relation, variables),)))

    treated_names = {function.name for function in treated}
    new_actions = []
    for action in dcds.process.actions:
        new_effects = []
        for effect in action.effects:
            recording_atoms: List[Atom] = list(effect.head)
            for atom_ in effect.head:
                for term in atom_.terms:
                    if isinstance(term, ServiceCall) \
                            and term.function in treated_names:
                        relation = memory_relation_name(term.function)
                        recording_atoms.append(
                            Atom(relation, term.args + (term,)))
            new_effects.append(EffectSpec(
                effect.q_plus, effect.q_minus, tuple(recording_atoms)))
        new_actions.append(Action(
            action.name, action.params,
            tuple(new_effects) + tuple(copy_effects)))

    # All services behave nondeterministically in the rewrite; drop any
    # per-function overrides.
    plain_functions = tuple(
        ServiceFunction(f.name, f.arity, None) for f in functions)
    data = DataLayer(schema, tuple(constraints), dcds.data.initial)
    process = ProcessLayer(plain_functions, tuple(new_actions),
                           dcds.process.rules)
    return DCDS(data, process, ServiceSemantics.NONDETERMINISTIC,
                f"{dcds.name}->nondet")


def project_to_original(ts, original: DCDS):
    """Project a transition system of the rewrite onto the original schema.

    Returns a new transition system whose state databases are restricted to
    the original relations (states are merged when their projections and
    outgoing structure coincide is *not* attempted — this is the raw
    projection used by the Theorem 6.1 equivalence checks).
    """
    from repro.semantics.transition_system import TransitionSystem

    names = original.schema.names()
    projected = TransitionSystem(original.schema, ts.initial,
                                 name=f"project[{ts.name}]")
    for state in ts.states:
        projected.add_state(state, ts.db(state).restrict(names))
    for source, label, target in ts.edges():
        projected.add_edge(source, target, label)
    for state in ts.truncated_states:
        projected.mark_truncated(state)
    return projected
