"""Static analysis: acyclicity conditions and boundedness probes."""

from repro.analysis.boundedness import (
    ProbeResult, Verdict, probe_run_bounded, probe_state_bounded)
from repro.analysis.dataflow_graph import (
    DataflowGraph, FlowEdge, GRWitness, TRUE_NODE, dataflow_graph,
    is_gr_acyclic, is_gr_plus_acyclic)
from repro.analysis.dependency_graph import (
    DependencyGraph, dependency_graph, is_weakly_acyclic)
from repro.analysis.positive_approximate import positive_approximate

__all__ = [
    "DataflowGraph", "DependencyGraph", "FlowEdge", "GRWitness",
    "ProbeResult", "TRUE_NODE", "Verdict", "dataflow_graph",
    "dependency_graph", "is_gr_acyclic", "is_gr_plus_acyclic",
    "is_weakly_acyclic", "positive_approximate", "probe_run_bounded",
    "probe_state_bounded",
]
