"""Dataflow graph, GR-acyclicity, GR+-acyclicity (Section 5.4, App. C.4).

For nondeterministic services the relevant sufficient condition for
state-boundedness is *GR-acyclicity* ("generate-recall acyclicity") over the
dataflow graph: nodes are relation names (plus the pseudo-node ``true`` for
effects whose body has no atoms, as in Figure 9); for every effect of the
positive approximate, every body atom ``R`` and head atom ``Q`` and head
position ``i``:

* ordinary edge ``R -> Q`` when the term at ``i`` is a constant or variable;
* special edge ``R -> Q`` when the term at ``i`` is a service call.

Edges carry unique ids and the set of actions they correspond to (needed by
the GR+ relaxation). GR-acyclicity forbids a path ``pi1 pi2 pi3`` where
``pi1, pi3`` are simple cycles and ``pi2`` contains a special edge not in
``pi1`` — a "generate cycle" feeding a "recall cycle". GR+-acyclicity allows
such a path when ``pi2`` contains an edge that is never simultaneously
active with any subsequent edge of ``pi2 pi3`` (checked via disjointness of
the edges' action sets), so the recall cycle is flushed between waves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.core.dcds import DCDS
from repro.fol.ast import TrueF
from repro.relational.values import Param, ServiceCall, Var

TRUE_NODE = "true"


@dataclass(frozen=True)
class FlowEdge:
    """One dataflow edge ``(R1, id, R2, special)`` with its action set."""

    source: str
    target: str
    special: bool
    edge_id: int
    actions: FrozenSet[str]

    def __repr__(self) -> str:
        marker = "*" if self.special else ""
        return (f"{self.source} -{marker}-> {self.target} "
                f"[#{self.edge_id} {sorted(self.actions)}]")


@dataclass
class GRWitness:
    """Evidence that the GR condition fails: a generate->recall chain."""

    special_edge: FlowEdge
    generate_cycle: Tuple[FlowEdge, ...]
    recall_cycle: Tuple[FlowEdge, ...]
    connecting_path: Tuple[FlowEdge, ...]

    def __repr__(self) -> str:
        return (f"GRWitness(special={self.special_edge!r}, "
                f"pi1={[e.edge_id for e in self.generate_cycle]}, "
                f"pi2={[e.edge_id for e in self.connecting_path]}, "
                f"pi3={[e.edge_id for e in self.recall_cycle]})")


@dataclass
class DataflowGraph:
    """The dataflow multigraph plus the acyclicity verdicts."""

    edges: List[FlowEdge]
    nodes: Set[str]
    dcds_name: str = ""
    _path_budget: int = 200000

    def special_edges(self) -> List[FlowEdge]:
        return [edge for edge in self.edges if edge.special]

    def _nx(self, exclude: Optional[FlowEdge] = None) -> nx.MultiDiGraph:
        graph = nx.MultiDiGraph()
        graph.add_nodes_from(self.nodes)
        for edge in self.edges:
            if exclude is not None and edge.edge_id == exclude.edge_id:
                continue
            graph.add_edge(edge.source, edge.target, key=edge.edge_id)
        return graph

    @staticmethod
    def _cycle_nodes(graph: nx.MultiDiGraph) -> Set[str]:
        """Nodes lying on some cycle (nontrivial SCC or self-loop)."""
        on_cycle: Set[str] = set()
        for component in nx.strongly_connected_components(graph):
            if len(component) > 1:
                on_cycle |= component
        for source, target in graph.edges():
            if source == target:
                on_cycle.add(source)
        return on_cycle

    # -- GR-acyclicity -----------------------------------------------------------

    def is_gr_acyclic(self) -> bool:
        return self.gr_violation() is None

    def gr_violation(self) -> Optional[FlowEdge]:
        """A special edge witnessing non-GR-acyclicity, if any.

        Edge ``e = (u, v)`` is a witness when (i) some cycle avoiding ``e``
        reaches ``u`` (the generate cycle pi1, with e in pi2 disjoint from
        pi1's edges) and (ii) ``v`` reaches some cycle (the recall cycle
        pi3).
        """
        full = self._nx()
        full_cycle_nodes = self._cycle_nodes(full)
        for edge in self.special_edges():
            without = self._nx(exclude=edge)
            generators = self._cycle_nodes(without)
            if not generators:
                continue
            # (i) u reachable from a cycle that avoids e (path may use e).
            reaches_u = any(
                origin == edge.source or nx.has_path(full, origin, edge.source)
                for origin in generators)
            if not reaches_u:
                continue
            # (ii) v reaches a recall cycle.
            feeds_cycle = any(
                edge.target == sink or nx.has_path(full, edge.target, sink)
                for sink in full_cycle_nodes)
            if feeds_cycle:
                return edge
        return None

    # -- GR+-acyclicity -----------------------------------------------------------

    def is_gr_plus_acyclic(self) -> bool:
        return self.gr_plus_violation() is None

    def gr_plus_violation(self) -> Optional[GRWitness]:
        """Search for a pi1 pi2 pi3 chain with *no* escape edge in pi2.

        An escape edge (App. C.4) is an edge of pi2 whose action set is
        disjoint from the action sets of all subsequent edges of pi2 and all
        edges of pi3 — executing it disables everything that would keep the
        recall cycle's values alive, flushing the cycle between waves.

        Enumeration is over edge-simple cycles and connecting paths with a
        work budget; the graphs produced by DCDS process layers are small
        (one node per relation), so the search is exact in practice.
        """
        budget = [self._path_budget]
        cycles = list(self._simple_cycles(budget))
        by_start: Dict[str, List[Tuple[FlowEdge, ...]]] = {}
        for cycle in cycles:
            for edge in cycle:
                by_start.setdefault(edge.source, []).append(cycle)

        for special in self.special_edges():
            for pi1 in cycles:
                pi1_ids = {edge.edge_id for edge in pi1}
                if special.edge_id in pi1_ids:
                    continue
                for start in {edge.source for edge in pi1}:
                    witness = self._search_pi2(
                        start, special, pi1, by_start, budget)
                    if witness is not None:
                        return witness
        return None

    def _search_pi2(self, start: str, special: FlowEdge,
                    pi1: Tuple[FlowEdge, ...],
                    cycles_by_node: Dict[str, List[Tuple[FlowEdge, ...]]],
                    budget: List[int]) -> Optional[GRWitness]:
        """DFS over edge-simple paths from ``start`` that traverse
        ``special``; on reaching a node with a recall cycle, test the escape
        condition."""
        out_edges: Dict[str, List[FlowEdge]] = {}
        for edge in self.edges:
            out_edges.setdefault(edge.source, []).append(edge)

        def escape_exists(path: Sequence[FlowEdge],
                          pi3: Tuple[FlowEdge, ...]) -> bool:
            pi3_actions: FrozenSet[str] = frozenset()
            for edge in pi3:
                pi3_actions |= edge.actions
            suffix_actions = pi3_actions
            # Walk pi2 backwards accumulating the actions of later edges.
            for index in range(len(path) - 1, -1, -1):
                edge = path[index]
                if not (edge.actions & suffix_actions):
                    return True
                suffix_actions |= edge.actions
            return False

        def dfs(node: str, path: List[FlowEdge], used: Set[int],
                seen_special: bool) -> Optional[GRWitness]:
            if budget[0] <= 0:
                return None
            budget[0] -= 1
            if seen_special and path:
                for pi3 in cycles_by_node.get(node, ()):  # recall cycles here
                    if not escape_exists(path, pi3):
                        return GRWitness(special, pi1, pi3, tuple(path))
            for edge in out_edges.get(node, ()):  # extend pi2
                if edge.edge_id in used:
                    continue
                path.append(edge)
                used.add(edge.edge_id)
                result = dfs(edge.target, path,
                             used, seen_special or
                             edge.edge_id == special.edge_id)
                used.discard(edge.edge_id)
                path.pop()
                if result is not None:
                    return result
            return None

        return dfs(start, [], set(), False)

    def _simple_cycles(self, budget: List[int]
                       ) -> Iterator[Tuple[FlowEdge, ...]]:
        """Edge-simple cycles of the multigraph (as edge tuples)."""
        out_edges: Dict[str, List[FlowEdge]] = {}
        for edge in self.edges:
            out_edges.setdefault(edge.source, []).append(edge)
        emitted: Set[Tuple[int, ...]] = set()

        def canonical(cycle: Tuple[FlowEdge, ...]) -> Tuple[int, ...]:
            ids = [edge.edge_id for edge in cycle]
            smallest = min(range(len(ids)), key=lambda i: ids[i])
            rotated = tuple(ids[smallest:] + ids[:smallest])
            return rotated

        def dfs(origin: str, node: str, path: List[FlowEdge],
                used: Set[int]) -> Iterator[Tuple[FlowEdge, ...]]:
            if budget[0] <= 0:
                return
            budget[0] -= 1
            for edge in out_edges.get(node, ()):
                if edge.edge_id in used:
                    continue
                if edge.target == origin:
                    cycle = tuple(path + [edge])
                    key = canonical(cycle)
                    if key not in emitted:
                        emitted.add(key)
                        yield cycle
                    continue
                # Keep cycles node-simple (except the closing node) to bound
                # the enumeration; recall/generate cycles are simple cycles
                # in the paper's definition.
                if any(previous.target == edge.target for previous in path):
                    continue
                path.append(edge)
                used.add(edge.edge_id)
                yield from dfs(origin, edge.target, path, used)
                used.discard(edge.edge_id)
                path.pop()

        for origin in sorted(self.nodes):
            yield from dfs(origin, origin, [], set())

    # -- reporting ---------------------------------------------------------------

    def describe(self) -> str:
        lines = [f"Dataflow graph of {self.dcds_name!r}: "
                 f"{len(self.nodes)} nodes, {len(self.edges)} edges"]
        for edge in sorted(self.edges, key=lambda e: e.edge_id):
            lines.append(f"  {edge!r}")
        gr = "GR-acyclic" if self.is_gr_acyclic() \
            else f"NOT GR-acyclic (witness {self.gr_violation()!r})"
        lines.append(f"  verdict: {gr}")
        if not self.is_gr_acyclic():
            plus = "GR+-acyclic" if self.is_gr_plus_acyclic() \
                else "NOT GR+-acyclic"
            lines.append(f"  relaxed verdict: {plus}")
        return "\n".join(lines)


def dataflow_graph(dcds: DCDS) -> DataflowGraph:
    """Build the dataflow graph from the DCDS (positive-approximate view)."""
    nodes: Set[str] = set()
    edges: List[FlowEdge] = []
    edge_counter = 0

    # One edge per (effect, body atom, head atom, position), each with a
    # unique id, exactly as in the paper's definition — parallel edges are
    # meaningful (Example 5.3 has two special self-loops on R).
    for action in dcds.process.actions:
        for effect in action.effects:
            body_relations = sorted(
                {atom_.relation for atom_ in effect.q_plus.atoms()})
            if not body_relations:
                body_relations = [TRUE_NODE]  # effects guarded by ``true``
            for atom_ in effect.head:
                for term in atom_.terms:
                    special = isinstance(term, ServiceCall)
                    for source in body_relations:
                        nodes.add(source)
                        nodes.add(atom_.relation)
                        edges.append(FlowEdge(
                            source, atom_.relation, special, edge_counter,
                            frozenset({action.name})))
                        edge_counter += 1

    # The paper's built-in perpetual copy of the nullary ``true`` relation
    # (Appendix E): a self-loop active in every action.
    if TRUE_NODE in nodes:
        all_actions = frozenset(
            action.name for action in dcds.process.actions)
        edges.append(FlowEdge(TRUE_NODE, TRUE_NODE, False, edge_counter,
                              all_actions))
    return DataflowGraph(edges, nodes, dcds.name)


def is_gr_acyclic(dcds: DCDS) -> bool:
    """Convenience: the Theorem 5.6 precondition."""
    return dataflow_graph(dcds).is_gr_acyclic()


def is_gr_plus_acyclic(dcds: DCDS) -> bool:
    """Convenience: the Theorem 5.7 precondition (GR+ relaxation)."""
    graph = dataflow_graph(dcds)
    return graph.is_gr_acyclic() or graph.is_gr_plus_acyclic()
