"""Semantic boundedness probes.

Run-boundedness (Theorem 4.6) and state-boundedness (Theorem 5.5) are
undecidable, so no checker can exist. These probes run the corresponding
abstraction construction under a fuse and report either a *proof* of
boundedness (the construction saturated — the abstract system is finite, so
the DCDS is run-/state-bounded over its reachable fragment) or *evidence* of
unboundedness (monotone growth up to the fuse), never a definite negative.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import AbstractionDiverged
from repro.core.dcds import DCDS, ServiceSemantics
from repro.semantics.abstract_det import build_det_abstraction
from repro.semantics.rcycl import rcycl_partial
from repro.semantics.transition_system import TransitionSystem


class Verdict(enum.Enum):
    BOUNDED = "bounded"
    DIVERGENCE_SUSPECTED = "divergence-suspected"


@dataclass
class ProbeResult:
    """Outcome of a boundedness probe."""

    verdict: Verdict
    bound: Optional[int]                 # witness bound when BOUNDED
    growth_trace: Tuple[int, ...]        # per-level growth evidence
    states_explored: int
    transition_system: Optional[TransitionSystem] = None

    @property
    def is_bounded(self) -> bool:
        return self.verdict is Verdict.BOUNDED

    def __repr__(self) -> str:
        if self.is_bounded:
            return (f"ProbeResult(bounded, bound={self.bound}, "
                    f"states={self.states_explored})")
        return (f"ProbeResult(divergence suspected, "
                f"states={self.states_explored}, "
                f"growth={self.growth_trace[:8]}...)")


def probe_run_bounded(dcds: DCDS, max_states: int = 5000) -> ProbeResult:
    """Probe run-boundedness via the deterministic abstraction (§4.2).

    Saturation of the abstraction proves the DCDS run-bounded with bound
    equal to the largest value-history of any abstract state.
    """
    deterministic = dcds if dcds.semantics is ServiceSemantics.DETERMINISTIC \
        else dcds.with_semantics(ServiceSemantics.DETERMINISTIC)
    try:
        ts = build_det_abstraction(deterministic, max_states=max_states)
    except AbstractionDiverged as diverged:
        return ProbeResult(Verdict.DIVERGENCE_SUSPECTED, None,
                           diverged.growth_trace, diverged.partial_states)
    bound = max((len(state.known_values()) for state in ts.states), default=0)
    growth = tuple(len(level) for level in ts.depth_levels())
    return ProbeResult(Verdict.BOUNDED, bound, growth, len(ts), ts)


def probe_state_bounded(dcds: DCDS, max_states: int = 5000,
                        max_iterations: int = 500000) -> ProbeResult:
    """Probe state-boundedness via RCYCL (§5.3).

    Saturation proves state-boundedness with bound equal to the largest
    active domain of any reachable abstract state.
    """
    nondet = dcds if dcds.semantics is ServiceSemantics.NONDETERMINISTIC \
        else dcds.with_semantics(ServiceSemantics.NONDETERMINISTIC)
    result = rcycl_partial(nondet, max_states=max_states,
                           max_iterations=max_iterations)
    ts = result.transition_system
    sizes = tuple(
        max((len(ts.db(state).active_domain()) for state in level), default=0)
        for level in ts.depth_levels())
    if result.diverged:
        return ProbeResult(Verdict.DIVERGENCE_SUSPECTED, None, sizes, len(ts),
                           ts)
    bound = ts.max_state_size()
    return ProbeResult(Verdict.BOUNDED, bound, sizes, len(ts), ts)
