"""Dependency graph and weak acyclicity (Section 4.3, deterministic services).

Nodes are positions ``(relation, i)``; for every effect ``q+ ~> E`` of the
positive approximate and every variable ``x``:

* ``x`` at position ``(R1, j)`` in ``q+`` and at position ``(R2, k)`` in the
  head yields an *ordinary* edge ``(R1,j) -> (R2,k)``;
* ``x`` at ``(R1, j)`` in ``q+`` and inside a service call stored at
  ``(R2, k)`` yields a *special* edge.

A DCDS is weakly acyclic when no cycle goes through a special edge — the
sufficient condition for run-boundedness (Theorem 4.7), imported from chase
termination in data exchange [Fagin et al.].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import networkx as nx

from repro.core.dcds import DCDS
from repro.relational.values import (
    Param, ServiceCall, Var, term_variables)

Position = Tuple[str, int]


def _normalize(term, param_map: Dict[Param, Var]):
    """Rewrite parameters into the free variables of the positive approximate."""
    if isinstance(term, Param):
        return param_map.setdefault(term, Var(f"p~{term.name}"))
    if isinstance(term, ServiceCall):
        return ServiceCall(term.function, tuple(
            _normalize(arg, param_map) for arg in term.args))
    return term


@dataclass
class DependencyGraph:
    """The edge-labeled position graph plus the weak-acyclicity verdict."""

    graph: nx.MultiDiGraph
    dcds_name: str = ""

    @property
    def nodes(self) -> FrozenSet[Position]:
        return frozenset(self.graph.nodes)

    def edges(self) -> List[Tuple[Position, Position, bool]]:
        return [(source, target, bool(data["special"]))
                for source, target, data in self.graph.edges(data=True)]

    def ordinary_edges(self) -> List[Tuple[Position, Position]]:
        return [(s, t) for s, t, special in self.edges() if not special]

    def special_edges(self) -> List[Tuple[Position, Position]]:
        return [(s, t) for s, t, special in self.edges() if special]

    def is_weakly_acyclic(self) -> bool:
        """No cycle through a special edge: for every special edge
        ``u -> v``, ``u`` must not be reachable from ``v``."""
        return self.violating_special_edge() is None

    def violating_special_edge(self) -> Optional[Tuple[Position, Position]]:
        for source, target in self.special_edges():
            if target == source or nx.has_path(self.graph, target, source):
                return (source, target)
        return None

    def ranks(self) -> Dict[Position, int]:
        """The rank of each position: max number of special edges on any
        incoming path (finite iff weakly acyclic; used in the proof of
        Theorem 4.7 to bound the polynomial)."""
        if not self.is_weakly_acyclic():
            raise ValueError("ranks are only defined for weakly acyclic graphs")
        # Longest path in the condensation weighted by special edges.
        condensed = nx.condensation(self.graph)
        member_of = condensed.graph["mapping"]
        rank: Dict[Position, int] = {node: 0 for node in self.graph.nodes}
        for component in nx.topological_sort(condensed):
            members = condensed.nodes[component]["members"]
            base = max((rank[node] for node in members), default=0)
            for node in members:
                rank[node] = base
            for node in members:
                for _, target, data in self.graph.out_edges(node, data=True):
                    weight = 1 if data["special"] else 0
                    candidate = rank[node] + weight
                    if candidate > rank[target]:
                        rank[target] = candidate
        return rank

    def describe(self) -> str:
        lines = [f"Dependency graph of {self.dcds_name!r}: "
                 f"{len(self.nodes)} positions, "
                 f"{self.graph.number_of_edges()} edges"]
        for source, target, special in sorted(
                self.edges(), key=lambda item: (repr(item[0]), repr(item[1]),
                                                item[2])):
            marker = "*" if special else " "
            lines.append(f"  {source} -{marker}-> {target}")
        verdict = "weakly acyclic" if self.is_weakly_acyclic() \
            else f"NOT weakly acyclic (witness {self.violating_special_edge()})"
        lines.append(f"  verdict: {verdict}")
        return "\n".join(lines)


def dependency_graph(dcds: DCDS) -> DependencyGraph:
    """Build the dependency graph of the DCDS's positive approximate.

    Works directly on the original specification (parameters are treated as
    the free variables they become in ``S+``; negative filters are ignored).
    """
    graph = nx.MultiDiGraph()
    for relation in dcds.schema:
        for position in range(relation.arity):
            graph.add_node((relation.name, position))

    for action in dcds.process.actions:
        param_map: Dict[Param, Var] = {}
        for effect in action.effects:
            body_positions = _variable_positions(effect, param_map)
            for atom_ in effect.head:
                for position, term in enumerate(atom_.terms):
                    normalized = _normalize(term, param_map)
                    target = (atom_.relation, position)
                    if isinstance(normalized, Var):
                        for source in body_positions.get(normalized, ()):
                            _add_edge(graph, source, target, special=False)
                    elif isinstance(normalized, ServiceCall):
                        argument_vars: Set[Var] = set()
                        for argument in normalized.args:
                            argument_vars.update(term_variables(argument))
                        for variable in argument_vars:
                            for source in body_positions.get(variable, ()):
                                _add_edge(graph, source, target, special=True)
    return DependencyGraph(graph, dcds.name)


def _variable_positions(effect, param_map) -> Dict[Var, Set[Position]]:
    """Positions of each variable within the atoms of ``q+`` (parameters
    included, as their positive-approximate variables)."""
    positions: Dict[Var, Set[Position]] = {}
    for atom_ in effect.q_plus.atoms():
        for index, term in enumerate(atom_.terms):
            normalized = _normalize(term, param_map)
            if isinstance(normalized, Var):
                positions.setdefault(normalized, set()).add(
                    (atom_.relation, index))
    return positions


def _add_edge(graph: nx.MultiDiGraph, source: Position, target: Position,
              special: bool) -> None:
    # Deduplicate structurally identical edges (same endpoints + kind).
    for _, existing_target, data in graph.out_edges(source, data=True):
        if existing_target == target and data["special"] == special:
            return
    graph.add_edge(source, target, special=special)


def is_weakly_acyclic(dcds: DCDS) -> bool:
    """Convenience: the Theorem 4.8 precondition."""
    return dependency_graph(dcds).is_weakly_acyclic()
