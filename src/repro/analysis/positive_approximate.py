"""The positive approximate ``S+`` of a DCDS (Section 4.3).

``S+`` abstracts away everything that can only *restrict* behaviour:

* equality constraints are dropped;
* every condition-action rule becomes ``true |-> alpha+``;
* every action loses its parameters (they become free variables of ``q+``)
  and every effect loses its negative filter ``Q−``.

Both acyclicity analyses are defined over the positive approximate; the key
property (Lemma 4.1) is that run-boundedness of ``S+`` implies
run-boundedness of ``S``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.data_layer import DataLayer
from repro.core.dcds import DCDS
from repro.core.process_layer import (
    Action, CARule, EffectSpec, ProcessLayer)
from repro.fol.ast import TRUE, Formula
from repro.relational.values import Param, Var


def _param_as_var(param: Param) -> Var:
    """The free variable standing in for a dropped parameter."""
    return Var(f"p~{param.name}")


def positive_approximate(dcds: DCDS) -> DCDS:
    """Build ``S+`` from ``S``."""
    new_actions = []
    new_rules = []
    for action in dcds.process.actions:
        substitution = {param: _param_as_var(param)
                        for param in action.params}
        new_effects = []
        for effect in action.effects:
            q_plus = effect.q_plus.substitute(substitution)
            head = tuple(atom_.substitute(substitution)
                         for atom_ in effect.head)
            new_effects.append(EffectSpec(q_plus, TRUE, head))
        new_actions.append(
            Action(f"{action.name}+", (), tuple(new_effects)))
        new_rules.append(CARule(TRUE, f"{action.name}+"))

    data = dcds.data.without_constraints()
    process = ProcessLayer(dcds.process.functions, tuple(new_actions),
                           tuple(new_rules))
    return DCDS(data, process, dcds.semantics, f"{dcds.name}+")
