"""Process-environment kill switches, consolidated.

Every accelerator tier of the engine has an environment kill switch so CI
(and a user chasing a miscompare) can force the slower-but-authoritative
path without touching code. The parsing used to be scattered across the
consuming modules; it lives here now, one helper per switch, with the
semantics the switches always had:

============================ ==============================================
``REPRO_NO_KERNEL=1``        disable the integer-coded relational kernel
                             (read when a kernel first attaches to a DCDS)
``REPRO_NO_VECTOR=1``        disable the columnar numpy backend
``REPRO_NO_NUMPY=1``         pretend numpy is not installed (test hook)
``REPRO_NO_BATCH=1``         disable the frontier-batch tier (per-frontier
                             grounding falls back to per-state calls)
``REPRO_SYMMETRY=<mode>``    process default for the exploration symmetry
                             mode (``exact``/``quotient``)
``REPRO_NO_SYMMETRY=1``      force ``symmetry="exact"`` everywhere
``REPRO_NO_WITNESS=1``       skip witness/counterexample certificate
                             extraction in ``pipeline.verify``
``REPRO_NO_SPILL=1``         disable the paged state store: any
                             ``memory_budget=`` is ignored and the
                             exploration keeps everything in RAM
``REPRO_MEMORY_BUDGET=<n>``  process default for ``memory_budget=``
                             (bytes; ``k``/``m``/``g`` suffixes allowed)
``REPRO_FAULTS=<spec>``      seeded fault-injection plan for the parallel
                             engine (``kind:worker@nth[:arg]`` events,
                             comma-separated; parsed by
                             ``repro.engine.faults.FaultPlan``)
============================ ==============================================

A switch is *on* when its variable is set to any non-empty string (``"0"``
included — the value is never interpreted); unset or empty means off.

Read-per-call semantics: these helpers go back to ``os.environ`` on every
invocation — nothing is cached at import time — so tests can flip a switch
between two builds without reloading modules. The one deliberate exception
is documented where it happens: ``REPRO_NO_KERNEL`` binds when a kernel
first attaches to a DCDS (see :func:`repro.relational.kernel.kernel_for`),
not on every hot call.
"""

from __future__ import annotations

import os


def _flag(name: str) -> bool:
    """True when the variable is set to a non-empty string."""
    return bool(os.environ.get(name))


def kernel_disabled() -> bool:
    """``REPRO_NO_KERNEL``: run the reference relational layer only."""
    return _flag("REPRO_NO_KERNEL")


def vector_disabled() -> bool:
    """``REPRO_NO_VECTOR``: keep the interpreted kernel joins in charge."""
    return _flag("REPRO_NO_VECTOR")


def numpy_hidden() -> bool:
    """``REPRO_NO_NUMPY``: simulate an environment without numpy."""
    return _flag("REPRO_NO_NUMPY")


def batch_disabled() -> bool:
    """``REPRO_NO_BATCH``: per-state grounding only (no frontier batching).

    Kill switch of the frontier-batch tier: the block-batched explorer
    driver reverts to the one-state-at-a-time loop and the kernel's
    batch-warm entry points become no-ops.
    """
    return _flag("REPRO_NO_BATCH")


def symmetry_default() -> str:
    """``REPRO_SYMMETRY``: the process-wide default symmetry mode.

    Returns ``"exact"`` when unset/empty; validation against the known
    modes stays with :func:`repro.engine.symmetry.resolve_symmetry`.
    """
    return os.environ.get("REPRO_SYMMETRY") or "exact"


def symmetry_disabled() -> bool:
    """``REPRO_NO_SYMMETRY``: force exact exploration everywhere."""
    return _flag("REPRO_NO_SYMMETRY")


def witness_disabled() -> bool:
    """``REPRO_NO_WITNESS``: verdicts only, no certificate extraction.

    Kill switch of the witness layer: :func:`repro.pipeline.verify` skips
    witness/violation extraction entirely (``report.witness`` /
    ``report.violation`` stay ``None``). Verdicts, routes, and every
    exploration/checking statistic are unaffected — the switch must be
    behaviorally invisible outside the certificate fields.
    """
    return _flag("REPRO_NO_WITNESS")


def spill_disabled() -> bool:
    """``REPRO_NO_SPILL``: keep every state and memo in RAM.

    Kill switch of the paged state store: with it set, a
    ``memory_budget=`` passed to ``verify``/``build_det_abstraction``/
    ``explore_concrete`` (or the ``REPRO_MEMORY_BUDGET`` default) is
    ignored and the exploration runs exactly as before the storage layer
    existed — same objects, same stats, no ``store`` entry in
    ``abstraction_stats``.
    """
    return _flag("REPRO_NO_SPILL")


#: Multipliers for ``REPRO_MEMORY_BUDGET`` suffixes.
_BUDGET_UNITS = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def memory_budget_default():
    """``REPRO_MEMORY_BUDGET``: process-wide default memory budget.

    Returns the budget in bytes (``int``) or ``None`` when unset/empty.
    The value is a decimal byte count with an optional case-insensitive
    ``k``/``m``/``g`` binary suffix (``"64m"`` = 64 MiB). Unlike the
    boolean switches, the value is interpreted — an unparsable one
    raises ``ValueError`` rather than silently running unbounded.
    """
    raw = os.environ.get("REPRO_MEMORY_BUDGET", "").strip()
    if not raw:
        return None
    unit = _BUDGET_UNITS.get(raw[-1].lower())
    if unit is not None:
        return int(raw[:-1]) * unit
    return int(raw)


def faults_spec() -> str:
    """``REPRO_FAULTS``: the raw fault-injection spec, ``""`` when unset.

    Unlike the boolean switches above, the *value* carries the plan —
    ``kind:worker@nth[:arg]`` events, comma-separated, e.g.
    ``"kill:1@2,corrupt:0@3,seed:7"``. Parsing and the event vocabulary
    live in :class:`repro.engine.faults.FaultPlan`; this helper only
    reads the variable (per call, never cached) so the chaos tests can
    flip plans between builds without reloading modules.
    """
    return os.environ.get("REPRO_FAULTS", "")
