"""A student-registry DCDS illustrating the µLA/µLP properties of §3.

Examples 3.1–3.3 of the paper state properties about students (``Stud``)
eventually graduating (``Grad``) but give no process; this gallery entry
supplies a minimal one:

* ``enroll``  — a fresh student id arrives from the environment;
* ``study``   — the enrolled student persists;
* ``graduate``— the student receives a mark from the environment;
* ``archive`` — the record is cleared and the registry is idle again.

The system is state-bounded (at most one student and one grade at a time)
and GR+-acyclic but not GR-acyclic: enrollment is a generate cycle through
``true`` feeding the ``Stud`` recall cycle, but the generating action
(``enroll``) is never simultaneously active with the recalling one
(``study``), which is exactly the GR+ escape.
"""

from __future__ import annotations

from repro.core import DCDS, DCDSBuilder, ServiceSemantics
from repro.mucalc import (
    MuFormula, QF, diamond_live, exists_live, forall_live, parse_mu)
from repro.mucalc.ast import Box, Diamond, MAnd, MNot, MOr, Mu, Nu, PredVar
from repro.fol import atom
from repro.relational.values import Var

IDLE = "idle"
ENROLLED = "enrolled"
GRADUATED = "graduated"


def student_registry(
    semantics: ServiceSemantics = ServiceSemantics.NONDETERMINISTIC) -> DCDS:
    """Build the student-registry DCDS."""
    builder = DCDSBuilder(name="students")
    builder.schema("Status/1", "Stud/1", "Grad/2")
    builder.initial(f"Status('{IDLE}')")
    builder.service("newStud/0").service("mark/1")
    builder.action(
        "enroll",
        f"true ~> Status('{ENROLLED}'), Stud(newStud())")
    builder.action(
        "study",
        "Stud(x) ~> Stud(x)",
        f"true ~> Status('{ENROLLED}')")
    builder.action(
        "graduate",
        "Stud(x) ~> Grad(x, mark(x))",
        f"true ~> Status('{GRADUATED}')")
    builder.action(
        "archive",
        f"true ~> Status('{IDLE}')")
    builder.rule(f"Status('{IDLE}')", "enroll")
    builder.rule(f"Status('{ENROLLED}')", "study")
    builder.rule(f"Status('{ENROLLED}')", "graduate")
    builder.rule(f"Status('{GRADUATED}')", "archive")
    return builder.build(semantics)


def property_eventual_graduation_mu_la() -> MuFormula:
    """Example 3.2 (µLA): along every path, it is always true that every
    live student has *some* evolution eventually graduating her::

        nu X. (A x. (live(x) & Stud(x) ->
                     mu Y. ((E y. live(y) & Grad(x, y)) | <-> Y)) & [-] X)
    """
    return parse_mu(
        "nu X. ((A x. (live(x) & Stud(x) -> "
        "mu Y. ((E y. live(y) & Grad(x, y)) | <-> Y))) & [-] X)")


def property_eventual_graduation_mu_lp() -> MuFormula:
    """Example 3.3, first variant (µLP): ... some evolution in which the
    student *persists* until graduating::

        nu X. (A x. (live(x) & Stud(x) ->
                     mu Y. ((E y. live(y) & Grad(x, y))
                            | <-> (live(x) & Y))) & [-] X)
    """
    return parse_mu(
        "nu X. ((A x. (live(x) & Stud(x) -> "
        "mu Y. ((E y. live(y) & Grad(x, y)) | <-> (live(x) & Y)))) "
        "& [-] X)")


def property_graduation_or_dropout_mu_lp() -> MuFormula:
    """Example 3.3, second variant: either the student is not persisted, or
    she eventually graduates (``<->(live(x) -> Y)`` form)."""
    return parse_mu(
        "nu X. ((A x. (live(x) & Stud(x) -> "
        "mu Y. ((E y. live(y) & Grad(x, y)) | <-> (live(x) -> Y)))) "
        "& [-] X)")


def property_n_distinct_students(n: int) -> MuFormula:
    """Example 3.1 / Theorem 4.5 shape (full µL, *not* µLA): there exist
    ``n`` pairwise distinct values each eventually denoting a student.

    Formulas of this family defeat every finite abstraction, which is why
    full µL verification cannot be reduced to finite-state model checking.
    """
    from repro.fol.ast import Eq, Not as FNot
    from repro.mucalc.ast import MExists

    variables = tuple(Var(f"x{i}") for i in range(1, n + 1))
    distinct = [QF(FNot(Eq(variables[i], variables[j])))
                for i in range(n) for j in range(i + 1, n)]
    eventually_student = []
    for variable in variables:
        z = f"Z_{variable.name}"
        eventually_student.append(
            Mu(z, MOr.of(QF(atom("Stud", variable)), Diamond(PredVar(z)))))
    body = MAnd.of(*(distinct + eventually_student)) if distinct else \
        MAnd.of(*eventually_student)
    return MExists(variables, body)


def property_no_student_while_idle() -> MuFormula:
    """A safety property: the registry never holds a student while idle."""
    return parse_mu(
        f"nu X. (~(Status('{IDLE}') & (E x. live(x) & Stud(x))) & [-] X)")
