"""The Appendix E travel-reimbursement DCDS: request system and audit system.

Both come in two fidelities:

* ``slim=False`` (default) — the exact relational shape of the paper
  (``Hotel/5``, ``Flight/5`` in the request system; ``Travel/3``,
  ``Hotel/7``, ``Flight/7`` in the audit system). This is the model whose
  dataflow/dependency graphs reproduce Figures 9 and 10. Building its
  abstract transition system is combinatorially infeasible (eleven service
  calls per request — the paper never materializes it either).

* ``slim=True`` — a behaviourally faithful reduction (one payload field per
  relation) with the same control-flow skeleton, few enough service calls
  per action for RCYCL / the deterministic abstraction to run, so the
  Appendix E properties can actually be model-checked.

The request system's monitor decision (``MAKEDECISION``) is constrained to
the four legal statuses via the Section 6 integrity-constraint trick: an
equality constraint whose right-hand side equates two distinct constants,
making any successor with an illegal status violate the constraint.
"""

from __future__ import annotations

from repro.core import DCDS, DCDSBuilder, ServiceSemantics
from repro.mucalc import MuFormula, parse_mu

READY_FOR_REQUEST = "readyForRequest"
READY_TO_VERIFY = "readyToVerify"
READY_TO_UPDATE = "readyToUpdate"
REQUEST_CONFIRMED = "requestConfirmed"

_STATUSES = (READY_FOR_REQUEST, READY_TO_VERIFY, READY_TO_UPDATE,
             REQUEST_CONFIRMED)


def _status_domain_constraint() -> str:
    """Every Status value is one of the four legal statuses (§6 trick)."""
    legal = " | ".join(f"s = '{status}'" for status in _STATUSES)
    return f"Status(s) & ~({legal}) -> 'illegal0' = 'illegal1'"


def _decision_constraint() -> str:
    """The monitor's decision is confirm-or-update (Appendix E: MAKEDECISION
    "returns 'requestConfirmed' if the request is accepted, and returns
    'readyToUpdate' if the request needs to be updated").

    ``Decision`` records the fresh decision each VerifyRequest; successors
    where the service returned anything else violate this constraint and
    therefore do not exist.
    """
    return (f"Decision(d) & ~(d = '{READY_TO_UPDATE}' | "
            f"d = '{REQUEST_CONFIRMED}') -> 'illegal0' = 'illegal1'")


def request_system(
    slim: bool = False,
    semantics: ServiceSemantics = ServiceSemantics.NONDETERMINISTIC) -> DCDS:
    """The Appendix E request system (Figure 9).

    Not GR-acyclic (the input services feed the Travel/Hotel/Flight copy
    cycles) but GR+-acyclic (``InitiateRequest``'s generating edges are
    never active simultaneously with the copying actions), hence
    state-bounded and µLP-verifiable (Theorem 5.7).
    """
    if slim:
        return _slim_request_system(semantics)
    builder = DCDSBuilder(name="request-system")
    builder.schema("Status/1", "Travel/1", "Hotel/5", "Flight/5",
                   "Decision/1")
    builder.initial(f"Status('{READY_FOR_REQUEST}')")
    builder.constraint(_status_domain_constraint())
    builder.constraint(_decision_constraint())
    for service in ("inEName/0", "inHName/0", "inHDate/0", "inHPrice/0",
                    "inHCurrency/0", "inHPInUSD/0", "inFDate/0", "inFNum/0",
                    "inFPrice/0", "inFCurrency/0", "inFPUSD/0",
                    "makeDecision/0"):
        builder.service(service)
    builder.action(
        "InitiateRequest",
        f"true ~> Status('{READY_TO_VERIFY}')",
        "true ~> Travel(inEName())",
        "true ~> Hotel(inHName(), inHDate(), inHPrice(), inHCurrency(), "
        "inHPInUSD())",
        "true ~> Flight(inFDate(), inFNum(), inFPrice(), inFCurrency(), "
        "inFPUSD())")
    builder.action(
        "VerifyRequest",
        "true ~> Status(makeDecision()), Decision(makeDecision())",
        "Travel(n) ~> Travel(n)",
        "Hotel(x1, x2, x3, x4, x5) ~> Hotel(x1, x2, x3, x4, x5)",
        "Flight(x1, x2, x3, x4, x5) ~> Flight(x1, x2, x3, x4, x5)")
    builder.action(
        "UpdateRequest",
        f"true ~> Status('{READY_TO_VERIFY}')",
        "Travel(n) ~> Travel(n)",
        "true ~> Hotel(inHName(), inHDate(), inHPrice(), inHCurrency(), "
        "inHPInUSD())",
        "true ~> Flight(inFDate(), inFNum(), inFPrice(), inFCurrency(), "
        "inFPUSD())")
    builder.action(
        "AcceptRequest",
        f"Status('{REQUEST_CONFIRMED}') ~> Status('{READY_FOR_REQUEST}')")
    builder.rule(f"Status('{READY_FOR_REQUEST}')", "InitiateRequest")
    builder.rule(f"Status('{READY_TO_VERIFY}')", "VerifyRequest")
    builder.rule(f"Status('{READY_TO_UPDATE}')", "UpdateRequest")
    builder.rule(f"Status('{REQUEST_CONFIRMED}')", "AcceptRequest")
    return builder.build(semantics)


def _slim_request_system(semantics: ServiceSemantics) -> DCDS:
    """One payload field per relation; same control skeleton."""
    builder = DCDSBuilder(name="request-system-slim")
    builder.schema("Status/1", "Travel/1", "Expense/1", "Decision/1")
    builder.initial(f"Status('{READY_FOR_REQUEST}')")
    builder.constraint(_status_domain_constraint())
    builder.constraint(_decision_constraint())
    builder.service("inEName/0").service("inExpense/0")
    builder.service("makeDecision/0")
    builder.action(
        "InitiateRequest",
        f"true ~> Status('{READY_TO_VERIFY}')",
        "true ~> Travel(inEName())",
        "true ~> Expense(inExpense())")
    builder.action(
        "VerifyRequest",
        "true ~> Status(makeDecision()), Decision(makeDecision())",
        "Travel(n) ~> Travel(n)",
        "Expense(x) ~> Expense(x)")
    builder.action(
        "UpdateRequest",
        f"true ~> Status('{READY_TO_VERIFY}')",
        "Travel(n) ~> Travel(n)",
        "true ~> Expense(inExpense())")
    builder.action(
        "AcceptRequest",
        f"Status('{REQUEST_CONFIRMED}') ~> Status('{READY_FOR_REQUEST}')")
    builder.rule(f"Status('{READY_FOR_REQUEST}')", "InitiateRequest")
    builder.rule(f"Status('{READY_TO_VERIFY}')", "VerifyRequest")
    builder.rule(f"Status('{READY_TO_UPDATE}')", "UpdateRequest")
    builder.rule(f"Status('{REQUEST_CONFIRMED}')", "AcceptRequest")
    return builder.build(semantics)


PASSED = "passedTrue"
FAILED = "passedFalse"
PENDING = "pendingCheck"
CHECK_PRICE = "checkPrice"
CHECK_TRAVEL = "checkTravel"


def audit_system(
    slim: bool = False,
    semantics: ServiceSemantics = ServiceSemantics.DETERMINISTIC,
    requests: int = 1) -> DCDS:
    """The Appendix E audit system (Figure 10): weakly acyclic, uses the
    deterministic service ``convertAndCheck``.

    ``requests`` controls how many logged travel requests populate the
    initial instance (the output of the logging subsystem).
    """
    if slim:
        return _slim_audit_system(semantics, requests)
    builder = DCDSBuilder(name="audit-system")
    builder.schema("Status/1", "Travel/3", "Hotel/7", "Flight/7")
    facts = [f"Status('{CHECK_PRICE}')"]
    for index in range(requests):
        trip = f"t{index}"
        facts.append(f"Travel('{trip}', 'emp{index}', '{PENDING}')")
        facts.append(
            f"Hotel('{trip}', 'hotel{index}', 'date{index}', 'price{index}',"
            f" 'cur{index}', 'usd{index}', '{PENDING}')")
        facts.append(
            f"Flight('{trip}', 'fn{index}', 'date{index}', 'price{index}',"
            f" 'cur{index}', 'usd{index}', '{PENDING}')")
    builder.initial(", ".join(facts))
    builder.service("convertAndCheck/4", deterministic=True)
    builder.action(
        "CheckPrice",
        f"true ~> Status('{CHECK_TRAVEL}')",
        "Travel(i, n, v) ~> Travel(i, n, v)",
        "Hotel(x1, x2, date, price, currency, usd, x7) ~> "
        "Hotel(x1, x2, date, price, currency, usd, "
        "convertAndCheck(date, price, currency, usd))",
        "Flight(x1, x2, date, price, currency, usd, x7) ~> "
        "Flight(x1, x2, date, price, currency, usd, "
        "convertAndCheck(date, price, currency, usd))")
    builder.action(
        "CheckTravel",
        f"true ~> Status('{CHECK_PRICE}')",
        "Travel(i, n, v) & Hotel(i, y1, y2, y3, y4, y5, ph) & "
        "Flight(i, z1, z2, z3, z4, z5, pf) & ~(ph = 'ok' & pf = 'ok') "
        f"~> Travel(i, n, '{FAILED}')",
        "Travel(i, n, v) & Hotel(i, y1, y2, y3, y4, y5, 'ok') & "
        f"Flight(i, z1, z2, z3, z4, z5, 'ok') ~> Travel(i, n, '{PASSED}')",
        "Hotel(x1, x2, x3, x4, x5, x6, x7) ~> "
        "Hotel(x1, x2, x3, x4, x5, x6, x7)",
        "Flight(x1, x2, x3, x4, x5, x6, x7) ~> "
        "Flight(x1, x2, x3, x4, x5, x6, x7)")
    builder.rule(f"Status('{CHECK_PRICE}')", "CheckPrice")
    builder.rule(f"Status('{CHECK_TRAVEL}')", "CheckTravel")
    return builder.build(semantics)


def _slim_audit_system(semantics: ServiceSemantics, requests: int) -> DCDS:
    builder = DCDSBuilder(name="audit-system-slim")
    builder.schema("Status/1", "Travel/3", "Hotel/3", "Flight/3")
    facts = [f"Status('{CHECK_PRICE}')"]
    for index in range(requests):
        trip = f"t{index}"
        facts.append(f"Travel('{trip}', 'emp{index}', '{PENDING}')")
        facts.append(f"Hotel('{trip}', 'hprice{index}', '{PENDING}')")
        facts.append(f"Flight('{trip}', 'fprice{index}', '{PENDING}')")
    builder.initial(", ".join(facts))
    builder.service("check/1", deterministic=True)
    builder.action(
        "CheckPrice",
        f"true ~> Status('{CHECK_TRAVEL}')",
        "Travel(i, n, v) ~> Travel(i, n, v)",
        "Hotel(i, price, p) ~> Hotel(i, price, check(price))",
        "Flight(i, price, p) ~> Flight(i, price, check(price))")
    builder.action(
        "CheckTravel",
        f"true ~> Status('{CHECK_PRICE}')",
        "Travel(i, n, v) & Hotel(i, y, ph) & Flight(i, z, pf) & "
        f"~(ph = 'ok' & pf = 'ok') ~> Travel(i, n, '{FAILED}')",
        "Travel(i, n, v) & Hotel(i, y, 'ok') & Flight(i, z, 'ok') "
        f"~> Travel(i, n, '{PASSED}')",
        "Hotel(x1, x2, x3) ~> Hotel(x1, x2, x3)",
        "Flight(x1, x2, x3) ~> Flight(x1, x2, x3)")
    builder.rule(f"Status('{CHECK_PRICE}')", "CheckPrice")
    builder.rule(f"Status('{CHECK_TRAVEL}')", "CheckTravel")
    return builder.build(semantics)


# ---------------------------------------------------------------------------
# Appendix E properties
# ---------------------------------------------------------------------------

def property_request_eventually_decided() -> MuFormula:
    """Appendix E liveness (µLP): once a request is initiated, it stays
    until the monitor decides, and the decision is readyToUpdate or
    requestConfirmed::

        AG(forall n. Travel(n) -> A(Travel(n) U decided))
    """
    return parse_mu(
        "nu X. ((A n. (live(n) & Travel(n) -> "
        f"mu Y. (Status('{READY_TO_UPDATE}') | Status('{REQUEST_CONFIRMED}')"
        " | (<-> true & [-] (live(n) & Travel(n) & Y))))) & [-] X)")


def property_no_unpriced_acceptance_slim() -> MuFormula:
    """Appendix E safety (slim shape): a request without expense data is
    never accepted — ``G ~(confirmed & Expense(bottom))``."""
    return parse_mu(
        f"nu X. (~(Status('{REQUEST_CONFIRMED}') & Expense('bottom')) "
        "& [-] X)")


def property_audit_failure_propagates_slim() -> MuFormula:
    """Appendix E audit property (µLA, slim shape): a travel with a failed
    hotel or flight check eventually has its ``passed`` flag set false."""
    return parse_mu(
        "nu X. ((A i, n. (live(i) & live(n) & "
        "(E v, y. live(v) & live(y) & Travel(i, n, v) & "
        "(Hotel(i, y, 'notok') | Flight(i, y, 'notok'))) -> "
        f"mu Y. (Travel(i, n, '{FAILED}') | <-> Y))) & [-] X)")
