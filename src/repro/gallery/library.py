"""A library loan system: parametric actions through the full pipeline.

The paper's actions carry parameters bound by condition-action rules
(``Q |-> alpha(p...)``); the running examples of Sections 4–5 are all
parameterless, so this gallery entry exercises the parametric machinery:

* ``checkout(b, m)`` — guarded by ``Book(b) & Member(m)``: the book leaves
  the shelf, a loan record is created, and a receipt is stamped by the
  external ``stamp`` service (dropped at the next step — no recall);
* ``take_back(b, m)`` — guarded by ``Loaned(b, m)``: the loan ends and the
  book returns to the shelf.

The system is GR-acyclic (receipts are generated but never recalled) and
state-bounded, so µLP verification over the RCYCL abstraction is certified
by Theorem 5.7.
"""

from __future__ import annotations

from repro.core import DCDS, DCDSBuilder, ServiceSemantics
from repro.mucalc import MuFormula, parse_mu


def library_system(books: int = 2, members: int = 1,
                   semantics: ServiceSemantics =
                   ServiceSemantics.NONDETERMINISTIC) -> DCDS:
    """Build the loan system with the given shelf and membership sizes."""
    builder = DCDSBuilder(name=f"library[{books},{members}]")
    builder.schema("Book/1", "Member/1", "Loaned/2", "Receipt/2")
    facts = [f"Book('b{i}')" for i in range(books)]
    facts += [f"Member('m{j}')" for j in range(members)]
    builder.initial(", ".join(facts))
    builder.service("stamp/1")
    builder.action(
        "checkout(b, m)",
        "Book(x) & ~(x = $b) ~> Book(x)",         # the book leaves the shelf
        "Member(y) ~> Member(y)",
        "Loaned(u, v) ~> Loaned(u, v)",
        "true ~> Loaned($b, $m), Receipt($b, stamp($b))")
    builder.action(
        "take_back(b, m)",
        "Book(x) ~> Book(x)",
        "Member(y) ~> Member(y)",
        "Loaned(u, v) & ~(u = $b) ~> Loaned(u, v)",
        "true ~> Book($b)")
    builder.rule("Book($b) & Member($m)", "checkout")
    builder.rule("Loaned($b, $m)", "take_back")
    return builder.build(semantics)


def property_loaned_books_off_shelf() -> MuFormula:
    """Safety (µLP): a loaned book is never simultaneously on the shelf."""
    return parse_mu(
        "nu X. (~(E b. live(b) & Book(b) & (E m. live(m) & Loaned(b, m)))"
        " & [-] X)")


def property_loans_returnable() -> MuFormula:
    """Liveness (µLP): every live loan can be ended with the book back on
    the shelf, while the book id persists."""
    return parse_mu(
        "nu X. ((A b. (live(b) & (E m. live(m) & Loaned(b, m)) -> "
        "mu Y. (Book(b) | <-> (live(b) & Y)))) & [-] X)")


def property_some_book_always_trackable() -> MuFormula:
    """Invariant (µLP): every book is always either on the shelf or loaned
    (book values persist forever in this system)."""
    return parse_mu(
        "nu X. ((A b. (live(b) & (Book(b) | (E m. live(m) & Loaned(b, m)))"
        " -> (Book(b) | (E m. live(m) & Loaned(b, m))))) & [-] X)")
