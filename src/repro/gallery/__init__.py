"""Gallery: every DCDS the paper uses, as ready-made specifications.

========================= ======================== ==========================
Constructor               Paper reference          Key property
========================= ======================== ==========================
``example_41``            Example 4.1, Fig 3, 5(a) weakly acyclic, run-bounded
``example_42``            Example 4.2, Fig 2, 5(a) + equality constraint
``example_43``            Example 4.3, Fig 4, 5(b) NOT weakly acyclic;
                                                   GR-acyclic as nondet (Fig 7)
``example_52``            Example 5.2, Fig 6, 8(b) NOT GR(+)-acyclic,
                                                   state-unbounded
``example_53``            Example 5.3, Fig 8(c)    NOT GR(+)-acyclic
``theorem_45_witness``    Theorem 4.5 proof        defeats finite µL abstraction
``student_registry``      Examples 3.1–3.3         µLA/µLP property showcase
``request_system``        Appendix E, Fig 9        GR+-acyclic (not GR)
``audit_system``          Appendix E, Fig 10       weakly acyclic
``library_system``        (original)               parametric actions,
                                                   GR-acyclic, state-bounded
========================= ======================== ==========================
"""

from repro.gallery.basic import (
    example_41, example_42, example_43, example_52, example_53,
    theorem_45_witness)
from repro.gallery.library import library_system
from repro.gallery.student import student_registry
from repro.gallery.travel import audit_system, request_system

__all__ = [
    "audit_system", "example_41", "example_42", "example_43", "example_52",
    "example_53", "library_system", "request_system", "student_registry",
    "theorem_45_witness",
]
