"""The running examples of Sections 4 and 5."""

from __future__ import annotations

from repro.core import DCDSBuilder, DCDS, ServiceSemantics


def example_41(semantics: ServiceSemantics = ServiceSemantics.DETERMINISTIC
               ) -> DCDS:
    """Example 4.1: ``alpha : {Q(a,a) & P(x) ~> R(x);
    P(x) ~> P(x), Q(f(x), g(x))}``.

    Weakly acyclic (Fig 5(a)), hence run-bounded; its abstract transition
    system is Figure 3(b) (10 states).
    """
    builder = DCDSBuilder(name="example41", constants={"a"})
    builder.schema("P/1", "Q/2", "R/1")
    builder.initial("P(a), Q(a, a)")
    builder.service("f/1").service("g/1")
    builder.action("alpha",
                   "Q(a, a) & P(x) ~> R(x)",
                   "P(x) ~> P(x), Q(f(x), g(x))")
    builder.rule("true", "alpha")
    return builder.build(semantics)


def example_42(semantics: ServiceSemantics = ServiceSemantics.DETERMINISTIC
               ) -> DCDS:
    """Example 4.2: Example 4.1 plus the equality constraint
    ``P(x) & Q(y,z) -> x = y``, which pins ``f(a) = a``.

    Abstract transition system: Figure 2(b) (4 states).
    """
    builder = DCDSBuilder(name="example42", constants={"a"})
    builder.schema("P/1", "Q/2", "R/1")
    builder.initial("P(a), Q(a, a)")
    builder.constraint("P(x) & Q(y, z) -> x = y")
    builder.service("f/1").service("g/1")
    builder.action("alpha",
                   "Q(a, a) & P(x) ~> R(x)",
                   "P(x) ~> P(x), Q(f(x), g(x))")
    builder.rule("true", "alpha")
    return builder.build(semantics)


def example_43(semantics: ServiceSemantics = ServiceSemantics.DETERMINISTIC
               ) -> DCDS:
    """Example 4.3: ``alpha : {R(x) ~> Q(f(x)); Q(x) ~> R(x)}``.

    NOT weakly acyclic (Fig 5(b)): under deterministic services the chain
    ``a, f(a), f(f(a)), ...`` makes it run-unbounded and the deterministic
    abstraction diverges (Fig 4). Under nondeterministic services it *is*
    state-bounded and GR-acyclic; RCYCL yields the finite system of
    Figure 7(b) (Example 5.1).
    """
    builder = DCDSBuilder(name="example43", constants={"a"})
    builder.schema("R/1", "Q/1")
    builder.initial("R(a)")
    builder.service("f/1")
    builder.action("alpha",
                   "R(x) ~> Q(f(x))",
                   "Q(x) ~> R(x)")
    builder.rule("true", "alpha")
    return builder.build(semantics)


def example_52(semantics: ServiceSemantics = ServiceSemantics.NONDETERMINISTIC
               ) -> DCDS:
    """Example 5.2: ``alpha : {R(x) ~> R(x); R(x) ~> Q(f(x));
    Q(x) ~> Q(x)}``.

    NOT GR-acyclic (Fig 8(b)): the R self-loop generates, the Q self-loop
    recalls, so fresh values accumulate and the system is state-unbounded
    (Fig 6) — RCYCL diverges.
    """
    builder = DCDSBuilder(name="example52", constants={"a"})
    builder.schema("R/1", "Q/1")
    builder.initial("R(a)")
    builder.service("f/1")
    builder.action("alpha",
                   "R(x) ~> R(x)",
                   "R(x) ~> Q(f(x))",
                   "Q(x) ~> Q(x)")
    builder.rule("true", "alpha")
    return builder.build(semantics)


def example_53(semantics: ServiceSemantics = ServiceSemantics.NONDETERMINISTIC
               ) -> DCDS:
    """Example 5.3: ``alpha : {R(x) ~> R(f(x)), R(g(x))}``.

    NOT GR-acyclic (Fig 8(c)): two special self-loops on R; the number of R
    tuples can double at every step even though no value is recalled.
    """
    builder = DCDSBuilder(name="example53", constants={"a"})
    builder.schema("R/1")
    builder.initial("R(a)")
    builder.service("f/1").service("g/1")
    builder.action("alpha", "R(x) ~> R(f(x)), R(g(x))")
    builder.rule("true", "alpha")
    return builder.build(semantics)


def theorem_45_witness() -> DCDS:
    """The DCDS from the proof of Theorem 4.5.

    ``rho = {R(x) |-> alpha(x)}`` with ``alpha(p) : {true ~> Q(f(p))}``.
    Run-bounded (bound 3), but the µL properties ``Phi_n`` (there exist n
    distinct values stored in Q across successors) defeat every finite
    abstraction.
    """
    builder = DCDSBuilder(name="theorem45", constants={"a"})
    builder.schema("R/1", "Q/1")
    builder.initial("R(a)")
    builder.service("f/1")
    builder.action("alpha(p)", "true ~> Q(f($p))")
    builder.rule("R($p)", "alpha")
    return builder.build(ServiceSemantics.DETERMINISTIC)
