"""The storage layer: paged state store, budgeted caches, out-of-core TS.

Everything an exploration produces used to stay resident: every state
object, every kernel memo, every intern table. This module bounds that
with one *memory budget* shared by three accounts:

``hot``
    A budgeted LRU of live state objects. The authoritative copy of every
    state is a *canonical frame* — the ``RW1`` record of
    :mod:`repro.engine.frames` holding the state's coded facts and call
    map, self-contained via a definition list against the store-creation
    term-table snapshot — appended to read-only page files and keyed by
    the dense state id that discovery order already assigns. Cold states
    are rehydrated from their page on demand.
``memos``
    The kernel's fact/instance/DO memos
    (:meth:`~repro.relational.kernel.RelationalKernel.attach_memo_budget`)
    wrapped in :class:`BudgetedDict`: pure caches whose eviction only
    costs recomputation, never correctness.
``interner``
    The symmetry :class:`~repro.engine.interning.StateInterner`'s
    exact-hit instance cache (class identity itself stays resident — a
    dropped *cache* entry recomputes, a dropped *class* would fork one).

Alongside the accounts, the *index* (per-state digest + page ref, edge
arrays, label intern) is charged but not evictable — it is the part of
the result that must stay addressable, and the recorded budget
high-water mark includes it honestly.

Bit-identity argument
---------------------
The paged backend never changes what the exploration computes, only
where it lives. States are deduplicated by the canonical frame: equal
states produce byte-identical frames (facts sorted by the run-independent
``TermTable.sort_key``, definitions emitted in reference order,
``sys.intern``-ed strings so pickle's memoization is process-independent),
so digest + byte-confirm equality coincides with state equality. The
frontier holds ``(state id, depth)`` pairs and rehydrates in pop order,
so interning order, edge order, growth traces, and observer replay are
exactly the sequential ones. Evicted memo entries recompute through the
same pure evaluators that filled them. ``tests/test_differential.py``
rebuilds every case under a tight budget and asserts bit-identity.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import sys
import tempfile
import weakref
from array import array
from collections import OrderedDict
from typing import (
    Any, Dict, Iterator, List, MutableMapping, Optional, Tuple)

from repro import env
from repro.engine import frames
from repro.engine.generators import DetState
from repro.engine.wire import WireCodec
from repro.errors import ReproError
from repro.relational.coding import CodedInstance
from repro.relational.instance import Instance
from repro.semantics.transition_system import State, TransitionSystem

#: Default page-file rotation size. Pages are append-only and mmap-read;
#: 1 MiB keeps the open-file count tiny while bounding how much one
#: mmap covers.
PAGE_BYTES = 1 << 20

#: Hot-entry cost model: a rehydrated state object graph is roughly this
#: many times its compressed frame (measured on the gallery workloads),
#: floored so tiny states still pay their object headers.
HOT_BYTES_FACTOR = 12
HOT_BYTES_FLOOR = 512

#: Budget shares per account. ``index`` is charged, never evicted (it is
#: the addressable result); the evictable accounts shed their own LRU
#: tails when they outgrow their share *or* the summed charge would
#: exceed the enforcement target.
DEFAULT_SHARES = {"hot": 0.45, "memos": 0.30, "interner": 0.10,
                  "index": 0.15}

#: The budget enforces against this fraction of the stated cap. The
#: structural estimator cannot see CPython container overallocation,
#: allocator slack, or transient encode/decode buffers — the reserved
#: headroom absorbs them so the *measured* storage peak lands within
#: the budget the caller actually stated.
ENFORCE_FRACTION = 0.8


def resolve_memory_budget(explicit: Optional[int]) -> Optional[int]:
    """The effective budget: explicit arg, else ``REPRO_MEMORY_BUDGET``,
    gated by the ``REPRO_NO_SPILL`` kill switch. ``None`` means RAM."""
    if env.spill_disabled():
        return None
    budget = explicit if explicit is not None \
        else env.memory_budget_default()
    if budget is None:
        return None
    if budget <= 0:
        raise ReproError(f"memory_budget must be positive, got {budget}")
    return budget


# ---------------------------------------------------------------------------
# Approximate sizing (budget accounting is structural, not exact)
# ---------------------------------------------------------------------------

_SAMPLE = 32


def approx_nbytes(obj: Any, _depth: int = 3) -> int:
    """A cheap structural estimate of an object's resident bytes.

    Budget accounting needs *relative* honesty (big entries must charge
    more than small ones), not byte-exactness: containers are sampled to
    ``_SAMPLE`` elements and extrapolated, recursion is depth-bounded,
    and unknown objects get a flat charge. Deliberately no ``sys.
    getsizeof`` recursion — this runs on every cache insert.
    """
    if obj is None or obj is True or obj is False:
        return 8
    kind = type(obj)
    if kind is int:
        return 32
    if kind is float:
        return 24
    if kind is str:
        return 56 + len(obj)
    if kind is bytes:
        return 33 + len(obj)
    if kind is CodedInstance:
        return obj.nbytes()
    if kind in (tuple, list):
        total = 56 + 8 * len(obj)
        if _depth > 0 and obj:
            sample = obj[:_SAMPLE]
            inner = sum(approx_nbytes(item, _depth - 1) for item in sample)
            total += inner * len(obj) // len(sample)
        return total
    if kind in (set, frozenset):
        total = 216 + 8 * len(obj)
        if _depth > 0 and obj:
            sample = list(obj)[:_SAMPLE] if len(obj) > _SAMPLE else obj
            inner = sum(approx_nbytes(item, _depth - 1) for item in sample)
            total += inner * len(obj) // max(1, len(sample))
        return total
    if kind is dict or isinstance(obj, dict):
        total = 64 + 16 * len(obj)
        if _depth > 0 and obj:
            items = list(obj.items())[:_SAMPLE]
            inner = sum(approx_nbytes(key, _depth - 1)
                        + approx_nbytes(value, _depth - 1)
                        for key, value in items)
            total += inner * len(obj) // len(items)
        return total
    if isinstance(obj, Instance):
        return 64 + 120 * len(obj)
    if isinstance(obj, DetState):
        return 64 + approx_nbytes(obj.instance, _depth) \
            + approx_nbytes(obj.call_map, _depth)
    return 128


# ---------------------------------------------------------------------------
# The shared budget and the budgeted LRU dict
# ---------------------------------------------------------------------------

class MemoryBudget:
    """One byte budget shared by named accounts.

    Each account charges/releases approximate byte costs; an account is
    *over* when its charge exceeds its share of the enforcement target
    (``ENFORCE_FRACTION`` of the stated total), at which point its owner
    (a :class:`BudgetedDict`, the store's hot LRU) sheds its own
    least-recently-used entries. Shedders also watch the *summed* charge:
    growth in a non-evictable account (the index, the edge arrays)
    squeezes the evictable caches so the total stays under the target.
    The high-water mark is the peak of the summed charges — what the
    bench compares against process peak memory.
    """

    def __init__(self, total: int,
                 shares: Optional[Dict[str, float]] = None):
        self.total = int(total)
        self.enforce_total = int(self.total * ENFORCE_FRACTION)
        self.shares = dict(DEFAULT_SHARES if shares is None else shares)
        self.charged: Dict[str, int] = {name: 0 for name in self.shares}
        self.evictions: Dict[str, int] = {name: 0 for name in self.shares}
        self.high_water = 0
        self._level = 0

    def limit(self, account: str) -> int:
        return int(self.enforce_total * self.shares.get(account, 0.0))

    def charge(self, account: str, amount: int) -> None:
        self.charged[account] = self.charged.get(account, 0) + amount
        level = self._level = self._level + amount
        if level > self.high_water:
            self.high_water = level

    def release(self, account: str, amount: int) -> None:
        self.charged[account] = self.charged.get(account, 0) - amount
        self._level -= amount

    def over(self, account: str) -> bool:
        return self.charged.get(account, 0) > self.limit(account)

    def note_eviction(self, account: str) -> None:
        self.evictions[account] = self.evictions.get(account, 0) + 1

    def stats_dict(self) -> Dict[str, Any]:
        return {
            "budget": self.total,
            "budget_enforce_target": self.enforce_total,
            "budget_high_water": self.high_water,
            "charged": dict(self.charged),
            "evictions": dict(self.evictions),
        }


class BudgetedDict(MutableMapping):
    """A dict-shaped LRU cache charged to a :class:`MemoryBudget` account.

    Drop-in for the kernel's memo dicts: lookups refresh recency,
    inserts charge an approximate cost and then shed this dict's own
    least-recently-used entries while the account is over its share.
    Eviction is always safe for the wrapped users — every budgeted memo
    is a pure cache whose entries recompute to equal values.

    Cost accounting is *sampled*: entries within one memo are shaped
    alike, so the cost function runs on every ``_COST_SAMPLE_EVERY``-th
    insert and the others charge a moving average of the sampled costs.
    This keeps inserts O(1) on the kernel's hottest memos while staying
    relatively honest across accounts (each entry still releases exactly
    what it charged).

    Recency bookkeeping is *pressure-gated*: ``move_to_end`` on every
    hit is pure overhead while the account sits far under its share, so
    hits only refresh LRU order once the account passes half its limit
    (``_lru_live``, refreshed on every insert). Below that, insertion
    order approximates recency — and nothing is close to evicting
    anyway. Shedding happens *before* the triggering insert is charged,
    so the summed charge never overshoots the enforcement target.
    """

    __slots__ = ("_data", "_costs", "budget", "account", "_cost_fn",
                 "_tick", "_avg_cost", "_limit", "_lru_live")

    _COST_SAMPLE_EVERY = 16

    def __init__(self, budget: MemoryBudget, account: str,
                 data: Optional[dict] = None, cost_fn=None):
        self.budget = budget
        self.account = account
        self._cost_fn = cost_fn or (
            lambda key, value: approx_nbytes(key) + approx_nbytes(value))
        self._data: "OrderedDict[Any, Any]" = OrderedDict()
        self._costs: Dict[Any, int] = {}
        self._tick = 0
        self._avg_cost: Optional[int] = None
        self._limit = budget.limit(account)
        self._lru_live = False
        if data:
            for key, value in data.items():
                self[key] = value

    _MISSING = object()

    def __getitem__(self, key):
        value = self._data[key]
        if self._lru_live:
            self._data.move_to_end(key)
        return value

    # MutableMapping's get/contains go through __getitem__ with a
    # try/except, which makes every memo *miss* raise internally — far
    # too slow for the kernel's hottest caches. Answer from the backing
    # dict directly.
    def get(self, key, default=None):
        found = self._data.get(key, self._MISSING)
        if found is self._MISSING:
            return default
        if self._lru_live:
            self._data.move_to_end(key)
        return found

    def __contains__(self, key):
        return key in self._data

    def __setitem__(self, key, value) -> None:
        budget = self.budget
        account = self.account
        old = self._costs.pop(key, None)
        if old is not None:
            budget.release(account, old)
            del self._data[key]
        tick = self._tick
        self._tick = tick + 1
        if tick % self._COST_SAMPLE_EVERY == 0 or self._avg_cost is None:
            cost = self._cost_fn(key, value)
            avg = self._avg_cost
            self._avg_cost = cost if avg is None else (3 * avg + cost) // 4
        else:
            cost = self._avg_cost
        charged = budget.charged.get(account, 0)
        limit = self._limit
        if (charged + cost > limit
                or budget._level + cost > budget.enforce_total):
            self._shed(cost)
        self._data[key] = value
        self._costs[key] = cost
        budget.charge(account, cost)
        self._lru_live = 2 * budget.charged[account] >= limit

    def __delitem__(self, key) -> None:
        del self._data[key]
        self.budget.release(self.account, self._costs.pop(key))

    def __iter__(self) -> Iterator:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def _shed(self, incoming: int = 0) -> None:
        budget = self.budget
        account = self.account
        data = self._data
        costs = self._costs
        charged = budget.charged
        limit = self._limit
        while len(data) > 1 and (
                charged.get(account, 0) + incoming > limit
                or budget._level + incoming > budget.enforce_total):
            key, _ = data.popitem(last=False)
            budget.release(account, costs.pop(key))
            budget.note_eviction(account)

    def clear(self) -> None:
        self.budget.release(self.account, sum(self._costs.values()))
        self._data.clear()
        self._costs.clear()

    def unwrap(self) -> dict:
        """Contents as a plain dict, releasing every charge."""
        found = dict(self._data)
        self.clear()
        return found


# ---------------------------------------------------------------------------
# Page files: append-only RW1 frames, mmap/pread reads
# ---------------------------------------------------------------------------

class _PageSet:
    """Append-only page files under one directory.

    ``append`` returns ``(page, offset, length)``; pages rotate at
    ``page_bytes``. Closed pages are read through ``mmap``; the active
    page is flushed and read with ``os.pread`` — both paths return the
    exact frame bytes that were appended.
    """

    def __init__(self, directory: str, page_bytes: int = PAGE_BYTES):
        self.directory = directory
        self.page_bytes = page_bytes
        self._maps: Dict[int, Any] = {}
        self._handle = None
        self._page = -1
        self._offset = 0
        self.pages_written = 0
        self.bytes_written = 0
        self.reads = 0
        self.bytes_read = 0
        self._dirty = False

    def _path(self, page: int) -> str:
        return os.path.join(self.directory, f"page-{page:05d}.rw1")

    def _rotate(self) -> None:
        if self._handle is not None:
            self._handle.close()
        self._page += 1
        self._offset = 0
        self._handle = open(self._path(self._page), "w+b")
        self.pages_written += 1

    def append(self, frame: bytes) -> Tuple[int, int, int]:
        if self._handle is None or self._offset >= self.page_bytes:
            self._rotate()
        ref = (self._page, self._offset, len(frame))
        self._handle.write(frame)
        self._offset += len(frame)
        self.bytes_written += len(frame)
        self._dirty = True
        return ref

    def read(self, page: int, offset: int, length: int) -> bytes:
        self.reads += 1
        self.bytes_read += length
        if page == self._page:
            if self._dirty:
                self._handle.flush()
                self._dirty = False
            return os.pread(self._handle.fileno(), length, offset)
        found = self._maps.get(page)
        if found is None:
            import mmap
            with open(self._path(page), "rb") as handle:
                found = mmap.mmap(handle.fileno(), 0,
                                  access=mmap.ACCESS_READ)
            self._maps[page] = found
        return bytes(found[offset:offset + length])

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        for mapped in self._maps.values():
            mapped.close()
        self._maps.clear()


# ---------------------------------------------------------------------------
# The canonical per-state frame codec
# ---------------------------------------------------------------------------

class StateCodec(WireCodec):
    """Self-contained canonical frames for single states.

    Unlike the session wire codec (token/delta streams whose encoding
    depends on dispatch history), every frame here is a pure function of
    the state and the store-creation snapshot: facts sorted by the
    run-independent ``TermTable.sort_key``, post-snapshot terms carried
    as by-value definitions in reference order, strings ``sys.intern``-ed
    so pickle's identity memo behaves identically in every process.
    Equal states therefore produce byte-identical frames — dedup by
    digest + byte compare *is* state equality — and frames written by a
    crashed run stay canonical after a checkpoint resume.
    """

    def _ref(self, code: int, defs: List[Any],
             def_index: Dict[int, int]) -> int:
        if code < self.snapshot_size:
            return code
        found = def_index.get(code)
        if found is None:
            table = self.kernel.table
            term = table.term(code)
            if table.is_call(code):
                arg_refs = tuple(
                    self._ref(table.code(arg), defs, def_index)
                    for arg in term.args)
                payload = ("c", sys.intern(term.function), arg_refs)
            else:
                value = sys.intern(term) if type(term) is str else term
                payload = ("v", value)
            found = len(defs)
            defs.append(payload)
            def_index[code] = found
        return self.snapshot_size + found

    def _canonical_facts(self, instance: Instance):
        # Facts recur across states, so the (sort-key-of-relation,
        # sort-keys-of-codes) tuple is memoized per coded fact — the
        # cache is bounded by the distinct facts of the run, like the
        # kernel's own coded-fact memos.
        keys = self.__dict__.setdefault("_fact_sort_keys", {})
        sort_key = self.kernel.table.sort_key

        def fact_key(fact):
            found = keys.get(fact)
            if found is None:
                found = (sort_key(fact[0]),
                         tuple(sort_key(code) for code in fact[1]))
                keys[fact] = found
            return found

        return sorted(self.kernel.coded_fact_set(instance), key=fact_key)

    def encode_state(self, state: State) -> bytes:
        if isinstance(state, DetState):
            kind, instance, call_map = "d", state.instance, state.call_map
        else:
            kind, instance, call_map = "i", state, ()
        defs: List[Any] = []
        def_index: Dict[int, int] = {}
        ref = self._ref
        facts = tuple(
            (ref(relation, defs, def_index),
             tuple(ref(code, defs, def_index) for code in codes))
            for relation, codes in self._canonical_facts(instance))
        coded_map = self._encode_map(call_map, defs, def_index)
        return frames.dumps((kind, facts, coded_map, defs))

    def decode_state(self, frame: bytes) -> State:
        kind, facts, coded_map, defs = frames.loads(frame)
        resolved = self._resolve_defs(defs)
        resolve = self._resolve
        coded_facts = frozenset(
            (resolve(relation, resolved),
             tuple(resolve(code, resolved) for code in codes))
            for relation, codes in facts)
        instance = self.kernel._intern_coded_instance(coded_facts)
        if kind == "i":
            return instance
        return DetState(instance, self._decode_map(coded_map, resolved))


# ---------------------------------------------------------------------------
# State stores
# ---------------------------------------------------------------------------

class StateStore:
    """The store interface: dense state ids from discovery order."""

    backend = "abstract"

    def intern(self, state: State) -> Tuple[int, bool]:
        """``(state id, is_new)``; ids are dense in discovery order."""
        raise NotImplementedError

    def fetch(self, sid: int) -> State:
        raise NotImplementedError

    def contains(self, state: State) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def stats_dict(self) -> Dict[str, Any]:
        return {"backend": self.backend, "states": len(self)}


class RamStore(StateStore):
    """The default backend: everything stays a live object (today's
    behavior — the explorer's plain path is this store, inlined)."""

    backend = "ram"

    def __init__(self) -> None:
        self._states: List[State] = []
        self._ids: Dict[State, int] = {}

    def intern(self, state: State) -> Tuple[int, bool]:
        found = self._ids.get(state)
        if found is not None:
            return found, False
        sid = len(self._states)
        self._states.append(state)
        self._ids[state] = sid
        return sid, True

    def fetch(self, sid: int) -> State:
        return self._states[sid]

    def contains(self, state: State) -> bool:
        return state in self._ids

    def __len__(self) -> int:
        return len(self._states)


class PagedStore(StateStore):
    """States as canonical frames in append-only pages + a hot LRU.

    Only fingerprints stay unconditionally resident: a 16-byte digest
    and a page ref per state (the ``index`` account). Live objects pass
    through the budgeted ``hot`` LRU and rehydrate from their page on
    demand. ``adopt_frame`` ingests frames already written by the
    checkpoint layer without re-encoding.

    Frame encoding is *lazy*: a newly interned state stays a hot live
    object and its canonical frame is produced only when something
    actually needs the bytes — eviction under budget pressure (the
    spill), ``raw_frame`` (checkpointing, dedup byte-confirmation), or a
    digest probe while adopted checkpoint frames are not yet hash-mapped.
    Under an ample budget nothing evicts, so the store's steady-state
    cost is hash-map bookkeeping, not per-state encodes. Dedup through
    ``hash(state)`` + object equality *is* state equality, so laziness
    never changes what gets interned.
    """

    backend = "paged"

    def __init__(self, kernel, budget: MemoryBudget,
                 directory: Optional[str] = None,
                 page_bytes: int = PAGE_BYTES):
        self.kernel = kernel
        self.budget = budget
        self.codec = StateCodec(kernel, len(kernel.table))
        self._own_dir = directory is None
        self.directory = directory or tempfile.mkdtemp(
            prefix="repro-store-")
        self._pages = _PageSet(self.directory, page_bytes)
        self._digests: Dict[bytes, int] = {}
        self._by_hash: Dict[int, Any] = {}  # hash(state) -> sid | [sids]
        self._page_of = array("q")  # -1 while the frame is unwritten
        self._offset_of = array("q")
        self._length_of = array("q")
        self._hashed = bytearray()  # per sid: in _by_hash yet?
        self._unhashed = 0  # adopted frames not yet hash-mapped
        self._frame_len_est = 256  # EMA of flushed frame lengths
        self._hot: "OrderedDict[int, State]" = OrderedDict()
        self._hot_costs: Dict[int, int] = {}
        self._hot_limit = budget.limit("hot")
        self._hot_lru_live = False
        self.rehydrations = 0
        self.dedup_checks = 0
        self.frontier_cold_peak = 0
        self._finalizer = weakref.finalize(
            self, _release_store, self._pages,
            self.directory if self._own_dir else None)

    # -- internals ---------------------------------------------------------

    def rebase_snapshot(self, snapshot_size: int) -> None:
        """Re-anchor the codec on a restored checkpoint's snapshot size
        (must happen before any state is interned)."""
        if len(self):
            raise ReproError(
                "cannot rebase a store that already holds states")
        self.codec.snapshot_size = snapshot_size

    def _hot_insert(self, sid: int, state: State, frame_len: int) -> None:
        cost = max(HOT_BYTES_FLOOR, HOT_BYTES_FACTOR * frame_len)
        budget = self.budget
        hot = self._hot
        charged = budget.charged
        limit = self._hot_limit
        # Shed *before* charging — against both the hot share and the
        # summed total, so index/edge growth squeezes the hot cache and
        # the charged level never overshoots the enforcement target.
        while len(hot) > 1 and (
                charged.get("hot", 0) + cost > limit
                or budget._level + cost > budget.enforce_total):
            old_sid, old_state = hot.popitem(last=False)
            if self._page_of[old_sid] < 0:
                # The spill: the evicted state's canonical frame is
                # encoded here, under budget pressure, not at intern.
                self._flush(old_sid, old_state)
            budget.release("hot", self._hot_costs.pop(old_sid))
            budget.note_eviction("hot")
        hot[sid] = state
        self._hot_costs[sid] = cost
        budget.charge("hot", cost)
        self._hot_lru_live = 2 * charged["hot"] >= limit

    def _reserve(self) -> int:
        sid = len(self._page_of)
        self._page_of.append(-1)
        self._offset_of.append(0)
        self._length_of.append(0)
        self._hashed.append(1)
        # Index charge: digest bytes object (~49) + dict slot (~104) +
        # the three array cells (24) — honest CPython sizes, so the
        # recorded charge tracks what the index really costs.
        self.budget.charge("index", 176)
        return sid

    def _write(self, sid: int, frame: bytes, digest: bytes) -> None:
        if digest in self._digests:
            raise ReproError(
                "state digest collision in the paged store (two "
                "distinct states share a 128-bit fingerprint)")
        page, offset, length = self._pages.append(frame)
        self._page_of[sid] = page
        self._offset_of[sid] = offset
        self._length_of[sid] = length
        self._digests[digest] = sid
        self._frame_len_est = (3 * self._frame_len_est + length) // 4

    def _flush(self, sid: int, state: State) -> bytes:
        frame = self.codec.encode_state(state)
        self._write(sid, frame,
                    hashlib.blake2b(frame, digest_size=16).digest())
        return frame

    def raw_frame(self, sid: int) -> bytes:
        if self._page_of[sid] < 0:
            # Unwritten implies hot (eviction always flushes first).
            return self._flush(sid, self._hot[sid])
        return self._pages.read(self._page_of[sid], self._offset_of[sid],
                                self._length_of[sid])

    def _hash_insert(self, state_hash: int, sid: int) -> None:
        bucket = self._by_hash.get(state_hash)
        if bucket is None:
            self._by_hash[state_hash] = sid
            self.budget.charge("index", 132)
        elif type(bucket) is list:
            bucket.append(sid)
            self.budget.charge("index", 64)
        else:
            self._by_hash[state_hash] = [bucket, sid]
            self.budget.charge("index", 196)
        if not self._hashed[sid]:
            self._hashed[sid] = 1
            self._unhashed -= 1

    def _hash_candidates(self, state: State):
        bucket = self._by_hash.get(hash(state))
        if bucket is None:
            return ()
        return bucket if type(bucket) is list else (bucket,)

    # -- the store interface ----------------------------------------------

    def intern(self, state: State) -> Tuple[int, bool]:
        # Dedup fast path: hash + object equality is exactly state
        # equality, and every live-interned state is hash-mapped, so a
        # duplicate candidate never pays a canonical-frame encode.
        state_hash = hash(state)
        for sid in self._hash_candidates(state):
            if self.fetch(sid) == state:
                self.dedup_checks += 1
                return sid, False
        if self._unhashed:
            # Adopted checkpoint frames not yet rehydrated can only be
            # matched through the digest map, so this path (eagerly
            # encoding the candidate) stays on until every adopted frame
            # has been fetched and hash-mapped.
            frame = self.codec.encode_state(state)
            digest = hashlib.blake2b(frame, digest_size=16).digest()
            found = self._digests.get(digest)
            if found is not None:
                self.dedup_checks += 1
                if self.raw_frame(found) != frame:
                    raise ReproError(
                        "state digest collision in the paged store (two "
                        "distinct states share a 128-bit fingerprint)")
                self._hash_insert(state_hash, found)
                return found, False
            sid = self._reserve()
            self._write(sid, frame, digest)
            self._hash_insert(state_hash, sid)
            self._hot_insert(sid, state, len(frame))
            return sid, True
        sid = self._reserve()
        self._hash_insert(state_hash, sid)
        self._hot_insert(sid, state, self._frame_len_est)
        return sid, True

    def adopt_frame(self, frame: bytes) -> Tuple[int, bool]:
        """Ingest an already-canonical frame (checkpoint resume) without
        re-encoding; the decoded object stays cold until fetched."""
        digest = hashlib.blake2b(frame, digest_size=16).digest()
        found = self._digests.get(digest)
        if found is not None:
            return found, False
        sid = self._reserve()
        self._write(sid, frame, digest)
        self._hashed[sid] = 0
        self._unhashed += 1
        return sid, True

    def fetch(self, sid: int) -> State:
        found = self._hot.get(sid)
        if found is not None:
            if self._hot_lru_live:
                self._hot.move_to_end(sid)
            return found
        frame = self.raw_frame(sid)
        state = self.codec.decode_state(frame)
        self.rehydrations += 1
        if not self._hashed[sid]:
            self._hash_insert(hash(state), sid)
        self._hot_insert(sid, state, len(frame))
        return state

    def contains(self, state: State) -> bool:
        for sid in self._hash_candidates(state):
            found = self._hot.get(sid)
            if found is None:
                found = self.codec.decode_state(self.raw_frame(sid))
            if found == state:
                return True
        if self._unhashed:
            frame = self.codec.encode_state(state)
            digest = hashlib.blake2b(frame, digest_size=16).digest()
            found = self._digests.get(digest)
            return found is not None and self.raw_frame(found) == frame
        return False

    def __len__(self) -> int:
        return len(self._page_of)

    def note_frontier_cold(self, cold: int) -> None:
        if cold > self.frontier_cold_peak:
            self.frontier_cold_peak = cold

    def hot_count(self) -> int:
        return len(self._hot)

    def stats_dict(self) -> Dict[str, Any]:
        found = {
            "backend": self.backend,
            "states": len(self),
            "pages_written": self._pages.pages_written,
            "bytes_written": self._pages.bytes_written,
            "page_reads": self._pages.reads,
            "bytes_read": self._pages.bytes_read,
            "rehydrations": self.rehydrations,
            "dedup_checks": self.dedup_checks,
            "hot_states": len(self._hot),
            "unflushed_states": sum(
                1 for page in self._page_of if page < 0),
            "frontier_cold_peak": self.frontier_cold_peak,
        }
        found.update(self.budget.stats_dict())
        return found

    def close(self) -> None:
        self._finalizer()


def _release_store(pages: _PageSet, directory: Optional[str]) -> None:
    pages.close()
    if directory is not None:
        shutil.rmtree(directory, ignore_errors=True)


# ---------------------------------------------------------------------------
# A transition system backed by the store
# ---------------------------------------------------------------------------

def _instance_of(state: State) -> Instance:
    return state.instance if isinstance(state, DetState) else state


def _lazy_field(backing: str):
    """Property pair for the base dataclass fields: reads materialize,
    writes (the dataclass ``__init__``, restorers) go to the backing."""

    def get(self):
        if not self.__dict__.get("_materialized", True):
            self._materialize()
        return self.__dict__[backing]

    def set(self, value):
        self.__dict__[backing] = value

    return property(get, set)


class StoredTransitionSystem(TransitionSystem):
    """A :class:`TransitionSystem` whose states live in a state store.

    During exploration only the id-level core is resident: the store's
    fingerprints/pages, columnar edge arrays with interned labels, and a
    truncated-id set. Every inherited object-level accessor transparently
    *materializes* first — rehydrating all states in discovery order into
    the base ``_db``/``_edges``, which is bit-identical to the in-RAM
    build by construction. Id-level overrides (``__len__``, ``stats``,
    ``edge_count``, ``values`` …) answer without materializing, so a
    ``keep_ts=False`` verification never inflates the full object graph.
    """

    _db = _lazy_field("_db_data")
    _edges = _lazy_field("_edges_data")
    truncated_states = _lazy_field("_trunc_data")

    def __init__(self, schema, initial: State, store: StateStore,
                 name: str = ""):
        self.__dict__["_materialized"] = True  # plain until store set
        TransitionSystem.__init__(self, schema, initial, name=name)
        self.store = store
        self.__dict__["_materialized"] = False
        self._truncated_ids: set = set()
        self._edge_src = array("q")
        self._edge_dst = array("q")
        self._edge_label = array("q")
        self._labels: List[Optional[str]] = []
        self._label_codes: Dict[Optional[str], int] = {}
        self._cur_src = -1
        self._cur_seen: set = set()
        self._edge_budget = getattr(store, "budget", None)

    # -- id-level construction (used by the explorer) ----------------------

    def intern_state(self, state: State, instance: Optional[Instance] = None
                     ) -> Tuple[int, bool]:
        sid, is_new = self.store.intern(state)
        if is_new:
            (instance if instance is not None
             else _instance_of(state)).validate(self.schema)
        return sid, is_new

    def add_edge_id(self, source: int, target: int,
                    label: Optional[str]) -> None:
        code = self._label_codes.get(label)
        if code is None:
            code = len(self._labels)
            self._label_codes[label] = code
            self._labels.append(label)
        if source != self._cur_src:
            # Sources are expanded once, in id order — edges arrive
            # grouped by source, so set-dedup (base ``_edges`` is a set)
            # only needs the current group.
            self._cur_src = source
            self._cur_seen = set()
        key = (code, target)
        if key in self._cur_seen:
            return
        self._cur_seen.add(key)
        self._edge_src.append(source)
        self._edge_dst.append(target)
        self._edge_label.append(code)
        if self._edge_budget is not None:
            # Three 8-byte array cells: the edge arrays grow with the
            # result and are charged (not evictable) like the index.
            self._edge_budget.charge("index", 24)

    def mark_truncated_id(self, sid: int) -> None:
        self._truncated_ids.add(sid)

    def fetch(self, sid: int) -> State:
        return self.store.fetch(sid)

    # -- materialization ---------------------------------------------------

    def _materialize(self) -> None:
        self.__dict__["_materialized"] = True
        store = self.store
        db = self.__dict__["_db_data"]
        edges = self.__dict__["_edges_data"]
        states = [store.fetch(sid) for sid in range(len(store))]
        for state in states:
            db[state] = _instance_of(state)
            edges.setdefault(state, set())
        labels = self._labels
        for position in range(len(self._edge_src)):
            edges[states[self._edge_src[position]]].add(
                (labels[self._edge_label[position]],
                 states[self._edge_dst[position]]))
        self.__dict__["_trunc_data"].update(
            states[sid] for sid in self._truncated_ids)

    @property
    def materialized(self) -> bool:
        return self.__dict__["_materialized"]

    # -- id-level accessors (no materialization) ---------------------------

    def __len__(self) -> int:
        if self.materialized:
            return len(self.__dict__["_db_data"])
        return len(self.store)

    def __contains__(self, state: State) -> bool:
        if self.materialized:
            return state in self.__dict__["_db_data"]
        return self.store.contains(state)

    def db(self, state: State) -> Instance:
        if not self.materialized and isinstance(state, (DetState, Instance)):
            # The instance is derivable from the state itself — exactly
            # what add_state stores for these state shapes.
            return _instance_of(state)
        return super().db(state)

    def edge_count(self) -> int:
        if self.materialized:
            return super().edge_count()
        return len(self._edge_src)

    def is_total(self) -> bool:
        if self.materialized:
            return super().is_total()
        with_edges = len(set(self._edge_src))
        return with_edges == len(self.store)

    def _stream_instances(self) -> Iterator[Instance]:
        store = self.store
        for sid in range(len(store)):
            yield _instance_of(store.fetch(sid))

    def values(self):
        if self.materialized:
            return super().values()
        found: set = set()
        for instance in self._stream_instances():
            found |= instance.active_domain()
        return frozenset(found)

    adom = values

    def max_state_size(self) -> int:
        if self.materialized:
            return super().max_state_size()
        return max((len(instance.active_domain())
                    for instance in self._stream_instances()), default=0)

    def stats_truncated(self) -> int:
        if self.materialized:
            return len(self.__dict__["_trunc_data"])
        return len(self._truncated_ids)

    def stats(self) -> Dict[str, Any]:
        if self.materialized:
            return super().stats()
        # One streaming pass through the bounded hot LRU — a
        # keep_ts=False verification reads these without ever holding
        # the full object graph.
        values: set = set()
        max_adom = 0
        for instance in self._stream_instances():
            adom = instance.active_domain()
            values |= adom
            if len(adom) > max_adom:
                max_adom = len(adom)
        return {
            "states": len(self),
            "edges": self.edge_count(),
            "values": len(values),
            "max_adom": max_adom,
            "truncated": self.stats_truncated(),
            "total": self.is_total(),
        }
