"""Seeded fault injection for the parallel exploration engine.

The chaos tests (``tests/test_faults.py``) and ``benchmarks/
bench_faults.py`` need to make workers fail *deterministically*: the same
spec must kill the same worker at the same dispatch on every run, so a
recovered build can be compared bit-for-bit against the undisturbed
sequential one. This module is that mechanism — a :class:`FaultPlan`
parsed from the ``REPRO_FAULTS`` environment spec (or built directly in
tests) whose events fire inside the worker processes at exact per-worker
dispatch counts.

Spec grammar (``repro/env.py`` reads the variable, this module parses it)::

    REPRO_FAULTS = event ("," event)*
    event        = kind ":" worker "@" nth [":" arg]  |  "seed" ":" int
    kind         = "kill" | "hang" | "oom" | "delay" | "drop" | "corrupt"
    worker       = int | "*"          (worker slot; "*" = every worker)
    nth          = int                (1-based dispatch count on that worker)

Examples::

    REPRO_FAULTS="kill:1@2"            # worker 1 exits at its 2nd dispatch
    REPRO_FAULTS="corrupt:0@3,seed:7"  # worker 0's 3rd reply is corrupted
    REPRO_FAULTS="delay:*@1:0.05"      # every worker delays its 1st reply

Event kinds — all fire at most once per matching worker:

``kill``
    The worker process exits immediately (``os._exit``) before expanding
    the dispatch: the supervisor sees a dead link (EOF/exitcode).
``hang``
    The worker sleeps past any reasonable dispatch timeout: the
    supervisor's hung-link detection must fire.
``oom``
    The worker raises :class:`MemoryError` (relayed to the coordinator):
    the memory-budget-pressure path — the supervisor recycles the link
    (freeing the worker's memory) and retries the batch after backoff.
``delay``
    The worker sleeps ``arg`` seconds (default 0.01) before replying —
    a slow link that must *not* trip recovery when under the timeout.
``drop``
    The worker expands the dispatch but never sends the reply (then
    parks like ``hang``): a lost wire message, surfaced as a hung link.
``corrupt``
    The worker flips bytes of its encoded reply at seeded positions: the
    CRC32 frame checksum (:mod:`repro.engine.wire`) must reject it and
    the supervisor must recycle the link (its session is desynced).

Determinism: the coordinator's dispatch loop routes batches with
load-first/affinity-second routing whose inputs (in-flight counts) are
mutated only by the coordinator's own deterministic pop/apply order, so
"worker ``w``'s ``n``-th dispatch" names the same batch on every run;
``corrupt`` draws its byte positions from ``random.Random(seed ^ length)``
so the flipped bytes are a pure function of the plan seed and the payload.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro import env
from repro.errors import ReproError

#: Event kinds that fire *before* the worker expands the dispatch.
PRE_KINDS = ("kill", "hang", "oom", "delay")
#: Event kinds that fire on the worker's encoded reply.
POST_KINDS = ("drop", "corrupt")
FAULT_KINDS = PRE_KINDS + POST_KINDS

#: How long ``hang``/``drop`` park the worker. Effectively forever next to
#: any dispatch timeout; the supervisor's ``terminate()`` is what ends it.
HANG_SECONDS = 3600.0

#: Default ``delay`` argument (seconds).
DEFAULT_DELAY = 0.01


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: ``kind`` at ``worker``'s ``nth`` dispatch."""

    kind: str
    worker: Optional[int]  # None = every worker (the "*" target)
    nth: int               # 1-based per-worker dispatch count
    arg: float = 0.0

    def spec(self) -> str:
        target = "*" if self.worker is None else str(self.worker)
        rendered = f"{self.kind}:{target}@{self.nth}"
        return f"{rendered}:{self.arg:g}" if self.arg else rendered


def _parse_event(token: str) -> Tuple[str, Optional[int], int, float]:
    head, _, tail = token.partition(":")
    kind = head.strip()
    if kind not in FAULT_KINDS:
        raise ReproError(
            f"unknown fault kind {kind!r} in REPRO_FAULTS event {token!r}; "
            f"expected one of {FAULT_KINDS} or 'seed'")
    target_part, _, arg_part = tail.partition(":")
    target, at, nth_part = target_part.partition("@")
    target = target.strip()
    if not at:
        raise ReproError(
            f"fault event {token!r} is missing '@nth' (the 1-based "
            f"per-worker dispatch count)")
    try:
        worker = None if target == "*" else int(target)
        nth = int(nth_part)
        arg = float(arg_part) if arg_part else 0.0
    except ValueError as error:
        raise ReproError(
            f"malformed fault event {token!r}: {error}") from error
    if worker is not None and worker < 0:
        raise ReproError(f"fault event {token!r}: worker must be >= 0")
    if nth < 1:
        raise ReproError(f"fault event {token!r}: nth is 1-based (>= 1)")
    return kind, worker, nth, arg


class FaultPlan:
    """A parsed set of fault events plus the corruption seed."""

    def __init__(self, events: List[FaultEvent] = (), seed: int = 0):
        self.events = list(events)
        self.seed = seed

    def __bool__(self) -> bool:
        return bool(self.events)

    def __repr__(self) -> str:
        return f"FaultPlan({self.spec()!r})"

    def spec(self) -> str:
        """The plan back as a ``REPRO_FAULTS`` spec string."""
        parts = [event.spec() for event in self.events]
        if self.seed:
            parts.append(f"seed:{self.seed}")
        return ",".join(parts)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        events: List[FaultEvent] = []
        seed = 0
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            if token.startswith("seed:"):
                try:
                    seed = int(token[len("seed:"):])
                except ValueError as error:
                    raise ReproError(
                        f"malformed fault seed {token!r}") from error
                continue
            kind, worker, nth, arg = _parse_event(token)
            events.append(FaultEvent(kind, worker, nth, arg))
        return cls(events, seed)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The process plan from ``REPRO_FAULTS``, or ``None`` when unset.

        Read per call (never cached at import), like every switch in
        :mod:`repro.env`.
        """
        spec = env.faults_spec()
        if not spec:
            return None
        plan = cls.parse(spec)
        return plan if plan else None

    def for_worker(self, worker: int) -> Optional["WorkerFaults"]:
        """The picklable per-worker view injected into ``_worker_main``.

        ``None`` when no event targets this slot, so the fault-free worker
        loop carries zero bookkeeping.
        """
        matching = [event for event in self.events
                    if event.worker is None or event.worker == worker]
        if not matching:
            return None
        return WorkerFaults(matching, self.seed)


class WorkerFaults:
    """One worker's fault schedule; lives inside the worker process.

    The worker loop calls :meth:`before_dispatch` as it receives each
    payload and :meth:`mangle_reply` on each encoded reply; each event
    fires at most once per worker process. Respawned replacement workers
    never receive a schedule at all (``ParallelExplorer._recover`` passes
    ``faults=None``) — otherwise ``kill:*@1`` would kill every
    replacement at its first dispatch and recovery could never converge.
    """

    def __init__(self, events: List[FaultEvent], seed: int = 0):
        self.events = list(events)
        self.seed = seed
        self.dispatches = 0
        self._fired: set = set()

    def __reduce__(self):
        return WorkerFaults, (self.events, self.seed)

    def _due(self, kinds: Tuple[str, ...]) -> Optional[FaultEvent]:
        for index, event in enumerate(self.events):
            if index in self._fired:
                continue
            if event.kind in kinds and event.nth == self.dispatches:
                self._fired.add(index)
                return event
        return None

    def before_dispatch(self) -> None:
        """Count the dispatch; fire any pre-expansion event due at it."""
        self.dispatches += 1
        event = self._due(PRE_KINDS)
        if event is None:
            return
        if event.kind == "kill":
            os._exit(17)  # noqa: SLF001 — simulate an abrupt worker death
        elif event.kind == "hang":
            time.sleep(event.arg or HANG_SECONDS)
        elif event.kind == "oom":
            raise MemoryError(
                f"injected memory-budget pressure at dispatch "
                f"{self.dispatches}")
        elif event.kind == "delay":
            time.sleep(event.arg or DEFAULT_DELAY)

    def mangle_reply(self, payload: bytes) -> Optional[bytes]:
        """Apply any reply event due; ``None`` means drop the reply."""
        event = self._due(POST_KINDS)
        if event is None:
            return payload
        if event.kind == "drop":
            time.sleep(HANG_SECONDS)  # never replies; supervisor times out
            return None
        return corrupt_payload(payload, self.seed)


def corrupt_payload(payload: bytes, seed: int = 0,
                    flips: int = 3) -> bytes:
    """Deterministically flip ``flips`` bytes of ``payload``.

    Positions and XOR masks come from ``random.Random(seed ^ len)``, so
    corruption is a pure function of the plan seed and the payload —
    replayable, and guaranteed to change the body (never only the frame
    header) so the CRC32 check must fire.
    """
    if not payload:
        return payload
    from repro.engine.wire import FRAME_OVERHEAD

    mutable = bytearray(payload)
    rng = random.Random(seed ^ len(payload))
    start = FRAME_OVERHEAD if len(payload) > FRAME_OVERHEAD else 0
    for _ in range(max(1, flips)):
        position = rng.randrange(start, len(payload))
        mutable[position] ^= rng.randrange(1, 256)
    return bytes(mutable)
