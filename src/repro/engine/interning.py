"""State interning: canonical forms computed only on fingerprint collisions.

:func:`repro.relational.isomorphism.canonical_form` is the most expensive
primitive in the codebase (individualization-refinement search). The seed
code ran it once per state wherever isomorphism classes were needed. The
interner amortizes that cost:

* every instance is first summarized by a cheap
  :func:`~repro.engine.fingerprint.instance_fingerprint`;
* a fresh fingerprint means the instance cannot be isomorphic to anything
  seen before — it founds a new class with **no** canonical-form work;
* only on a fingerprint collision are the bucket's members canonically
  labeled (each at most once, memoized) to decide class membership.

Exact duplicates (equal instances) are resolved by a dict lookup without
touching the fingerprint machinery at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional

from repro.engine.fingerprint import Fingerprint, instance_fingerprint
from repro.relational.instance import Instance
from repro.relational.isomorphism import canonical_form


@dataclass
class InternEntry:
    """One isomorphism class discovered by the interner."""

    representative: Instance
    fingerprint: Fingerprint
    _canonical: Optional[Instance] = None
    _key: Optional[tuple] = None

    def canonical(self, fixed: FrozenSet[Any]) -> Instance:
        """The canonical form of the class (computed lazily, once)."""
        if self._canonical is None:
            self._canonical, _ = canonical_form(self.representative, fixed)
            self._key = tuple(
                f.sort_key() for f in self._canonical.sorted_facts())
        return self._canonical

    def key(self, fixed: FrozenSet[Any]) -> tuple:
        """Hashable canonical key of the class."""
        self.canonical(fixed)
        return self._key


@dataclass
class InternStats:
    """Where the interner's lookups were resolved."""

    lookups: int = 0
    exact_hits: int = 0
    new_fingerprints: int = 0
    collisions: int = 0
    iso_hits: int = 0
    canonicalizations: int = 0

    def as_dict(self) -> Dict[str, Any]:
        resolved_cheap = self.exact_hits + self.new_fingerprints
        return {
            "lookups": self.lookups,
            "exact_hits": self.exact_hits,
            "new_fingerprints": self.new_fingerprints,
            "collisions": self.collisions,
            "iso_hits": self.iso_hits,
            "canonicalizations": self.canonicalizations,
            "cheap_hit_rate": (resolved_cheap / self.lookups
                               if self.lookups else 1.0),
        }


class StateInterner:
    """Groups instances into isomorphism classes fixing ``fixed``.

    ``intern`` returns the :class:`InternEntry` of the instance's class; two
    instances get the same entry iff they are isomorphic via a bijection
    fixing ``fixed``. Canonical labeling is deferred until a fingerprint
    collision (or until :meth:`InternEntry.canonical` is called explicitly).
    """

    def __init__(self, fixed: Iterable[Any] = ()):
        self.fixed: FrozenSet[Any] = frozenset(fixed)
        self.stats = InternStats()
        self._by_instance: Dict[Instance, InternEntry] = {}
        self._buckets: Dict[Fingerprint, List[InternEntry]] = {}

    def __len__(self) -> int:
        """Number of distinct isomorphism classes seen."""
        return sum(len(bucket) for bucket in self._buckets.values())

    def entries(self) -> List[InternEntry]:
        return [entry for bucket in self._buckets.values()
                for entry in bucket]

    def _canonical_key(self, entry: InternEntry) -> tuple:
        if entry._key is None:
            self.stats.canonicalizations += 1
        return entry.key(self.fixed)

    def intern(self, instance: Instance) -> InternEntry:
        self.stats.lookups += 1
        found = self._by_instance.get(instance)
        if found is not None:
            self.stats.exact_hits += 1
            return found

        fingerprint = instance_fingerprint(instance, self.fixed)
        bucket = self._buckets.get(fingerprint)
        if bucket is None:
            # Fresh fingerprint: provably not isomorphic to anything seen.
            entry = InternEntry(instance, fingerprint)
            self._buckets[fingerprint] = [entry]
            self._by_instance[instance] = entry
            self.stats.new_fingerprints += 1
            return entry

        # Collision: fall back to canonical labeling to decide membership.
        self.stats.collisions += 1
        self.stats.canonicalizations += 1
        canonical, _ = canonical_form(instance, self.fixed)
        new_key = tuple(f.sort_key() for f in canonical.sorted_facts())
        for entry in bucket:
            if self._canonical_key(entry) == new_key:
                self.stats.iso_hits += 1
                self._by_instance[instance] = entry
                return entry
        entry = InternEntry(instance, fingerprint,
                            _canonical=canonical, _key=new_key)
        bucket.append(entry)
        self._by_instance[instance] = entry
        return entry
