"""State interning: isomorphism classes, collision-lazy or canonical-first.

:func:`repro.relational.isomorphism.canonical_form` is the most expensive
primitive in the codebase (individualization-refinement search). The seed
code ran it once per state wherever isomorphism classes were needed. The
interner amortizes that cost in one of two modes:

* ``mode="collision"`` (the default) defers canonical labeling:

  - every instance is first summarized by a cheap
    :func:`~repro.engine.fingerprint.instance_fingerprint`;
  - a fresh fingerprint means the instance cannot be isomorphic to anything
    seen before — it founds a new class with **no** canonical-form work;
  - only on a fingerprint collision are the bucket's members canonically
    labeled (each at most once, memoized) to decide class membership.

* ``mode="canonical-first"`` makes the canonical key the *primary* index:
  every new instance is canonically labeled up front and classes are a
  single dict lookup by key. This is the symmetry layer's mode — the
  post-hoc quotient (:mod:`repro.semantics.quotient`) and quotient-mode
  exploration need the key for every state anyway, so deferring it buys
  nothing and the fingerprint machinery is skipped entirely.

Exact duplicates (equal instances) are resolved by a dict lookup without
touching either path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional

from repro.engine.fingerprint import Fingerprint, instance_fingerprint
from repro.errors import ReproError
from repro.relational.instance import Instance
from repro.relational.isomorphism import canonical_form

#: The interner modes (see module docstring).
INTERN_MODES = ("collision", "canonical-first")


@dataclass
class InternEntry:
    """One isomorphism class discovered by the interner.

    **Contract**: an entry belongs to one interner, and therefore to one
    ``fixed`` set, for its whole lifetime — the cached canonical form and
    key are only meaningful for the ``fixed`` they were computed with.
    The first :meth:`canonical`/:meth:`key` call pins that set; calling
    again with a different one raises :class:`~repro.errors.ReproError`
    instead of silently answering for the wrong equivalence (the latent
    misuse this used to permit).
    """

    representative: Instance
    fingerprint: Optional[Fingerprint]
    _canonical: Optional[Instance] = None
    _key: Optional[tuple] = None
    _fixed: Optional[FrozenSet[Any]] = None

    def canonical(self, fixed: FrozenSet[Any]) -> Instance:
        """The canonical form of the class (computed lazily, once)."""
        fixed = frozenset(fixed)
        if self._canonical is None:
            self._canonical, _ = canonical_form(self.representative, fixed)
            self._key = tuple(
                f.sort_key() for f in self._canonical.sorted_facts())
            self._fixed = fixed
        elif self._fixed != fixed:
            raise ReproError(
                f"InternEntry was canonicalized fixing "
                f"{sorted(map(repr, self._fixed))} and cannot answer for "
                f"fixed={sorted(map(repr, fixed))}; an entry belongs to one "
                f"interner (one fixed set) for its lifetime")
        return self._canonical

    def key(self, fixed: FrozenSet[Any]) -> tuple:
        """Hashable canonical key of the class (same ``fixed`` contract)."""
        self.canonical(fixed)
        return self._key


@dataclass
class InternStats:
    """Where the interner's lookups were resolved."""

    lookups: int = 0
    exact_hits: int = 0
    new_fingerprints: int = 0
    collisions: int = 0
    iso_hits: int = 0
    canonicalizations: int = 0

    def as_dict(self) -> Dict[str, Any]:
        resolved_cheap = self.exact_hits + self.new_fingerprints
        return {
            "lookups": self.lookups,
            "exact_hits": self.exact_hits,
            "new_fingerprints": self.new_fingerprints,
            "collisions": self.collisions,
            "iso_hits": self.iso_hits,
            "canonicalizations": self.canonicalizations,
            "cheap_hit_rate": (resolved_cheap / self.lookups
                               if self.lookups else 1.0),
        }


class StateInterner:
    """Groups instances into isomorphism classes fixing ``fixed``.

    ``intern`` returns the :class:`InternEntry` of the instance's class; two
    instances get the same entry iff they are isomorphic via a bijection
    fixing ``fixed``. ``mode="collision"`` defers canonical labeling until
    a fingerprint collision; ``mode="canonical-first"`` labels eagerly and
    indexes classes by canonical key (see the module docstring).

    The ``fixed`` set is pinned at construction: every entry the interner
    creates inherits it and (per the :class:`InternEntry` contract) refuses
    queries for any other set.

    ``canonicalizer`` (canonical-first mode only) accelerates the eager
    labeling: a callable ``instance -> (canonical_instance, key) | None``
    — ``None`` falls back to the object-level ``canonical_form``. Pass
    :func:`repro.relational.kernel.kernel_instance_canonicalizer` to run
    labeling on a DCDS's integer-coded kernel. The collision mode cannot
    take one: its entries label lazily through ``canonical_form``, and
    keys from different labelers are not comparable.
    """

    def __init__(self, fixed: Iterable[Any] = (), mode: str = "collision",
                 canonicalizer=None):
        if mode not in INTERN_MODES:
            raise ReproError(
                f"unknown interner mode {mode!r}; expected one of "
                f"{INTERN_MODES}")
        if canonicalizer is not None and mode != "canonical-first":
            raise ReproError(
                "a canonicalizer requires mode='canonical-first' "
                "(collision-mode entries label lazily via canonical_form; "
                "mixing labelers would make keys incomparable)")
        self.fixed: FrozenSet[Any] = frozenset(fixed)
        canonicalizer_fixed = getattr(canonicalizer, "fixed", None)
        if canonicalizer_fixed is not None \
                and frozenset(canonicalizer_fixed) != self.fixed:
            raise ReproError(
                f"canonicalizer decides isomorphism fixing "
                f"{sorted(map(repr, canonicalizer_fixed))}, interner fixes "
                f"{sorted(map(repr, self.fixed))}; the fallback path would "
                f"silently answer for a different equivalence")
        self.mode = mode
        self._canonicalizer = canonicalizer
        self.stats = InternStats()
        self._entries: List[InternEntry] = []
        self._by_instance: Dict[Instance, InternEntry] = {}
        self._buckets: Dict[Fingerprint, List[InternEntry]] = {}
        self._by_key: Dict[tuple, InternEntry] = {}

    def __len__(self) -> int:
        """Number of distinct isomorphism classes seen."""
        return len(self._entries)

    def attach_memory_budget(self, budget) -> None:
        """Storage-layer hook: charge the exact-hit cache to ``budget``.

        Only ``_by_instance`` becomes evictable — it is a pure cache whose
        misses re-derive the same :class:`InternEntry` through the
        fingerprint/canonical machinery. The class identities themselves
        (``_entries``/``_buckets``/``_by_key``) must stay resident:
        dropping one would fork an isomorphism class. ``budget=None``
        detaches (contents kept as a plain dict).
        """
        from repro.engine.store import BudgetedDict
        if budget is None:
            if isinstance(self._by_instance, BudgetedDict):
                self._by_instance = self._by_instance.unwrap()
            return
        if not isinstance(self._by_instance, BudgetedDict):
            self._by_instance = BudgetedDict(
                budget, "interner", data=self._by_instance)

    def entries(self) -> List[InternEntry]:
        return list(self._entries)

    def representative(self, instance: Instance) -> Instance:
        """The canonical representative of the instance's class."""
        return self.intern(instance).canonical(self.fixed)

    def _canonical_key(self, entry: InternEntry) -> tuple:
        if entry._key is None:
            self.stats.canonicalizations += 1
        return entry.key(self.fixed)

    def intern(self, instance: Instance) -> InternEntry:
        self.stats.lookups += 1
        found = self._by_instance.get(instance)
        if found is not None:
            self.stats.exact_hits += 1
            return found
        if self.mode == "canonical-first":
            return self._intern_canonical_first(instance)
        return self._intern_collision(instance)

    def _intern_canonical_first(self, instance: Instance) -> InternEntry:
        self.stats.canonicalizations += 1
        found = self._canonicalizer(instance) \
            if self._canonicalizer is not None else None
        if found is not None:
            canonical, key = found
        else:
            canonical, _ = canonical_form(instance, self.fixed)
            key = tuple(f.sort_key() for f in canonical.sorted_facts())
        entry = self._by_key.get(key)
        if entry is not None:
            self.stats.iso_hits += 1
        else:
            entry = InternEntry(instance, None, _canonical=canonical,
                                _key=key, _fixed=self.fixed)
            self._by_key[key] = entry
            self._entries.append(entry)
        self._by_instance[instance] = entry
        return entry

    def _intern_collision(self, instance: Instance) -> InternEntry:
        fingerprint = instance_fingerprint(instance, self.fixed)
        bucket = self._buckets.get(fingerprint)
        if bucket is None:
            # Fresh fingerprint: provably not isomorphic to anything seen.
            entry = InternEntry(instance, fingerprint)
            self._buckets[fingerprint] = [entry]
            self._entries.append(entry)
            self._by_instance[instance] = entry
            self.stats.new_fingerprints += 1
            return entry

        # Collision: fall back to canonical labeling to decide membership.
        self.stats.collisions += 1
        self.stats.canonicalizations += 1
        canonical, _ = canonical_form(instance, self.fixed)
        new_key = tuple(f.sort_key() for f in canonical.sorted_facts())
        for entry in bucket:
            if self._canonical_key(entry) == new_key:
                self.stats.iso_hits += 1
                self._by_instance[instance] = entry
                return entry
        entry = InternEntry(instance, fingerprint, _canonical=canonical,
                            _key=new_key, _fixed=self.fixed)
        bucket.append(entry)
        self._entries.append(entry)
        self._by_instance[instance] = entry
        return entry
