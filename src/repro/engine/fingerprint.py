"""Cheap isomorphism-invariant fingerprints of database instances.

A fingerprint is a hashable summary that is equal for any two instances
related by an isomorphism fixing ``fixed`` (the converse need not hold).
It combines the relation-cardinality signature with a histogram of value
occurrence profiles, so it can be computed in one linear pass — orders of
magnitude cheaper than :func:`repro.relational.isomorphism.canonical_form`.

The interning layer (:mod:`repro.engine.interning`) uses fingerprints as
bucket keys: the expensive canonical labeling only runs when two distinct
instances land in the same bucket (a fingerprint collision).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Dict, FrozenSet, Iterable, List, Tuple

from repro.relational.instance import Instance
from repro.utils import value_sort_key

Fingerprint = Tuple[Any, ...]


def value_profiles(instance: Instance) -> Dict[Any, Tuple[tuple, ...]]:
    """Occurrence profile of each term: sorted ``(relation, position)`` pairs.

    Any isomorphism preserves profiles, so the profile *histogram* is an
    isomorphism invariant while the profile of a fixed value is invariant
    under isomorphisms that fix it.
    """
    occurrences: Dict[Any, List[tuple]] = {}
    for current in instance:
        for position, term in enumerate(current.terms):
            occurrences.setdefault(term, []).append(
                (current.relation, position))
    return {term: tuple(sorted(places))
            for term, places in occurrences.items()}


@lru_cache(maxsize=65536)
def instance_fingerprint(instance: Instance,
                         fixed: FrozenSet[Any] = frozenset()) -> Fingerprint:
    """A hashable invariant of the ``fixed``-isomorphism class of ``instance``.

    Components:

    * the relation signature (relation name -> tuple count), which any
      isomorphism preserves;
    * for each *fixed* value occurring in the instance, its identity and
      occurrence profile (fixed values map to themselves);
    * the multiset of occurrence profiles of the remaining (movable) values.

    Equal fingerprints do **not** imply isomorphism — they only license the
    expensive canonical-form comparison.
    """
    signature = tuple(sorted(instance.signature().items()))
    profiles = value_profiles(instance)
    adom = instance.active_domain()
    fixed_part: List[tuple] = []
    movable_part: List[tuple] = []
    for value in adom:
        profile = profiles.get(value, ())
        if value in fixed:
            fixed_part.append((value_sort_key(value), profile))
        else:
            movable_part.append(profile)
    return (signature,
            tuple(sorted(fixed_part)),
            tuple(sorted(movable_part)))


def fingerprints_may_be_isomorphic(
    first: Instance, second: Instance,
    fixed: Iterable[Any] = ()) -> bool:
    """Fast necessary condition for ``fixed``-isomorphism.

    Used by the bisimulation checkers to skip the backtracking isomorphism
    search on pairs that trivially cannot match.
    """
    fixed = frozenset(fixed)
    return (instance_fingerprint(first, fixed)
            == instance_fingerprint(second, fixed))
