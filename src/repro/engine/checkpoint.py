"""Crash-safe checkpoint/resume for the exploration engine.

A long exploration that dies — machine reboot, OOM kill, operator ^C —
used to throw away every state it had interned. This module persists the
explorer's progress incrementally so an interrupted build restarts from
its last checkpoint and provably converges to the same transition system
(the resumed build is bit-identical to an undisturbed one; the chaos
suite pins it).

File format
-----------
A checkpoint is two files, both owned by :class:`CheckpointWriter`:

``<path>``
    Append-only data: a stream of CRC32-framed records (the wire frame of
    :mod:`repro.engine.wire`, so a torn or corrupted record surfaces as a
    structured error, never an unpickle traceback). Record 0 is the
    *header*: format version, the specification's ``spec_signature()``,
    the generator identity, the explorer configuration that affects the
    construction (strategy, ``max_depth``), the transport
    (``"wire"``/``"pickle"``/``"store"``), and — for the wire and store
    transports — the term table snapshot the chunk payloads are encoded
    against. Every further record is a *chunk*: the states discovered
    since the last chunk (in discovery order, encoded through one
    :class:`WireSession` exactly like a worker dispatch — or, for the
    store transport, as the paged store's canonical per-state frames,
    read back from its pages rather than re-encoded), the edges added
    since the last chunk (as global state indexes), and full snapshots of
    the truncated set, the effective frontier, and the progress counters.

``<path>.manifest``
    A small JSON file naming how much of the data file is valid:
    ``data_bytes``, ``chunks``, ``states``, ``complete``. It is replaced
    atomically (temp file + ``fsync`` + ``os.replace``) only *after* the
    data it covers is flushed and fsynced, so a crash at any instant
    leaves either the previous manifest (the new tail is ignored) or the
    new one (the tail is fully on disk) — never a manifest that promises
    torn data.

Safe points and restore
-----------------------
The explorer calls :meth:`CheckpointWriter.maybe_write` only between
batch applications, where the invariants hold that make a prefix
restorable: ``TransitionSystem._db`` insertion order *is* discovery
order; a state's outgoing edges are complete the moment its expansion is
applied; and the effective frontier (the real frontier plus any
popped-but-unapplied batch entries) is exactly what a sequential run
would still have queued. Restoring replays the header snapshot into the
kernel (``TermTable.replay`` asserts code-for-code alignment), decodes
the chunks through one symmetric session, rebuilds states/edges/
truncation/frontier, and re-runs the observer over the restored
discovery order — which reconstructs on-the-fly verification state,
because supported (``parallel_safe``) generators and observers are pure
functions of the state.

Resume compatibility is checked, not assumed: a checkpoint written for a
different ``spec_signature``, generator class, value pool, strategy, or
``max_depth`` raises :class:`~repro.errors.CheckpointError` instead of
silently building a chimera.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.engine import frames
from repro.engine.generators import DetState
from repro.engine.wire import WireCodec, WireSession
from repro.errors import CheckpointError, WireIntegrityError
from repro.relational.kernel import kernel_for
from repro.semantics.transition_system import TransitionSystem

CHECKPOINT_VERSION = 1

#: Default seconds between periodic chunk writes. Coarse on purpose: each
#: chunk costs a data fsync plus an atomic manifest replace, and the
#: <10% overhead budget (``benchmarks/bench_faults.py``) is measured
#: against real builds.
DEFAULT_INTERVAL = 5.0


class CheckpointInterrupted(CheckpointError):
    """Raised by the test hook ``Checkpoint._interrupt_after_chunks`` to
    simulate a crash immediately after a chunk (and its manifest) hit
    disk — the interrupt-then-resume differential drives on it."""


class Checkpoint:
    """Configuration handle for ``checkpoint=`` parameters.

    Accepts a filesystem path (``interval``-gated periodic writes) and is
    what ``verify(..., checkpoint=...)``, ``build_det_abstraction`` and
    the :class:`~repro.engine.Explorer` constructor normalize their
    ``checkpoint`` argument into (a bare path string means default
    cadence). ``interval=0`` writes a chunk at every safe point — the
    chaos tests use it to make interruption points exact.
    """

    def __init__(self, path, interval: float = DEFAULT_INTERVAL):
        self.path = os.fspath(path)
        if interval < 0:
            raise CheckpointError(
                f"checkpoint interval must be >= 0, got {interval}")
        self.interval = interval
        #: Test hook: raise :class:`CheckpointInterrupted` once this many
        #: chunks (header excluded) have been durably written.
        self._interrupt_after_chunks: Optional[int] = None

    @property
    def manifest_path(self) -> str:
        return self.path + ".manifest"

    @classmethod
    def of(cls, value) -> Optional["Checkpoint"]:
        """Normalize ``None`` / path-like / :class:`Checkpoint`."""
        if value is None or isinstance(value, Checkpoint):
            return value
        return cls(value)


def _state_db(state):
    """The database instance a state contributes to ``ts._db``."""
    return state.instance if isinstance(state, DetState) else state


def _signature_of(generator) -> Optional[tuple]:
    dcds = getattr(generator, "dcds", None)
    return dcds.spec_signature() if dcds is not None else None


def _signature_sha(signature) -> str:
    return hashlib.sha256(repr(signature).encode()).hexdigest()[:16]


#: The framed-record helpers are shared with the wire codec and the paged
#: state store (see :mod:`repro.engine.frames`); only the error dressing
#: is checkpoint-specific.
_write_record = frames.write_record


def _read_record(handle, remaining: int) -> Tuple[Any, int]:
    """The next framed record, bounded by the manifest-covered bytes."""
    try:
        return frames.read_record(handle, remaining)
    except WireIntegrityError as error:
        raise CheckpointError(
            f"corrupted or truncated checkpoint record: {error}") from error


@dataclass
class RestoredRun:
    """Everything a resuming explorer needs from a checkpoint.

    ``states`` is the restored discovery order as live objects — empty
    for a store-format restore that adopted its frames into a paged
    store, where ``state_count`` (set on every restore) lets the
    observer replay stream through the store instead.
    """

    ts: TransitionSystem
    frontier: List[Tuple[Any, int]]
    stats: Dict[str, Any]
    complete: bool
    final: Optional[Dict[str, Any]]
    header: Dict[str, Any]
    manifest: Dict[str, Any]
    states: List[Any] = field(default_factory=list)
    state_count: int = 0


class CheckpointWriter:
    """Incremental persistence of one exploration run.

    Created fresh by :meth:`Explorer._start` (header record, empty
    manifest region) or in *resume* mode on top of a restored run — the
    data file is truncated to the manifest-covered bytes (discarding any
    torn tail) and appended to, re-using the header's codec snapshot so
    old and new chunks decode against the same shared vocabulary.
    """

    def __init__(self, config: Checkpoint, generator, explorer,
                 restored: Optional[RestoredRun] = None):
        self.config = config
        self.generator = generator
        #: Store transport: the explorer's paged store (chunks read raw
        #: frames off its pages) or — resuming a store-format file from a
        #: plain run — just the canonical codec (chunks re-encode).
        self._store = None
        self._state_codec = None
        if restored is None:
            store = getattr(explorer, "_store", None)
            if store is not None:
                self._session = None
                self._store = store
                self._state_codec = store.codec
                codec_name, snapshot = "store", store.codec.snapshot()
            else:
                codec = self._fresh_codec(generator)
                self._session = WireSession(codec) if codec is not None \
                    else None
                codec_name = "wire" if codec is not None else "pickle"
                snapshot = codec.snapshot() if codec is not None else None
            header = {
                "version": CHECKPOINT_VERSION,
                "signature": _signature_of(generator),
                "generator": type(generator).__name__,
                "symmetry_values": getattr(
                    generator, "symmetry_values", None),
                "strategy": explorer.strategy,
                "max_depth": explorer.max_depth,
                "name": explorer.name,
                "codec": codec_name,
                "snapshot": snapshot,
            }
            self._handle = open(config.path, "wb")
            self.data_bytes = _write_record(self._handle, header)
            self.chunks = 0
            self.states_written = 0
            self._index: Dict[Any, int] = {}
        else:
            header = restored.header
            if header["codec"] == "wire":
                kernel = kernel_for(generator.dcds)
                # The loader already replayed the header snapshot; encode
                # against the *original* snapshot size so appended chunks
                # stay decodable in one pass with the old ones.
                codec = WireCodec(kernel, len(header["snapshot"]))
                self._session = WireSession(codec)
            elif header["codec"] == "store":
                self._session = None
                store = getattr(restored.ts, "store", None)
                if store is not None:
                    # The loader adopted the old frames into this store;
                    # new chunks read their frames straight off its pages.
                    self._store = store
                    self._state_codec = store.codec
                else:
                    # Plain (unbudgeted) run resuming a store-format
                    # file: keep appending store-codec chunks, encoded
                    # against the header snapshot the old ones use.
                    from repro.engine.store import StateCodec
                    self._state_codec = StateCodec(
                        kernel_for(generator.dcds),
                        len(header["snapshot"]))
            else:
                self._session = None
            self._handle = open(config.path, "r+b")
            self._handle.truncate(restored.manifest["data_bytes"])
            self._handle.seek(0, os.SEEK_END)
            self.data_bytes = restored.manifest["data_bytes"]
            self.chunks = restored.manifest["chunks"]
            self.states_written = restored.state_count
            self._index = {state: index for index, state
                           in enumerate(restored.states)}
        self.signature_sha = _signature_sha(header["signature"])
        self._last_write = time.monotonic()

    @staticmethod
    def _fresh_codec(generator) -> Optional[WireCodec]:
        dcds = getattr(generator, "dcds", None)
        if dcds is None:
            return None
        kernel = kernel_for(dcds)
        if kernel is None:
            return None
        return WireCodec(kernel, len(kernel.table))

    # -- writing -------------------------------------------------------------

    def maybe_write(self, ts: TransitionSystem, frontier, stats, edges,
                    extra_entries=()) -> None:
        """Write a chunk if the interval has elapsed (a safe point only).

        ``edges`` is the explorer's accumulator of ``(source, target,
        label)`` additions since the last chunk — drained only when a
        chunk is actually written. ``extra_entries`` are popped-but-
        unapplied batch entries; prepended to ``frontier`` they form the
        effective sequential frontier.
        """
        if time.monotonic() - self._last_write < self.config.interval:
            return
        self.write_chunk(ts, frontier, stats, edges,
                         extra_entries=extra_entries)

    def write_chunk(self, ts: TransitionSystem, frontier, stats, edges,
                    extra_entries=(), final: Optional[dict] = None
                    ) -> None:
        if self._state_codec is not None:
            chunk = self._store_chunk(ts, frontier, edges, extra_entries)
        else:
            index = self._index
            new_states = list(itertools.islice(
                ts._db.keys(), self.states_written, None))
            for state in new_states:
                index[state] = self.states_written
                self.states_written += 1
            if self._session is not None:
                states_payload, _ = self._session.encode_dispatch(
                    new_states)
                raw_states = None
            else:
                states_payload = None
                raw_states = new_states
            chunk = {
                "states": states_payload,
                "raw_states": raw_states,
                "edges": [(index[source], index[target], label)
                          for source, target, label in edges],
                "truncated": sorted(
                    index[state] for state in ts.truncated_states),
                "frontier": [(index[state], depth) for state, depth
                             in itertools.chain(extra_entries, frontier)],
            }
        chunk["stats"] = {
            "growth": list(stats.growth),
            "expansions": stats.expansions,
            "edges": stats.edges,
            "frontier_peak": stats.frontier_peak,
        }
        chunk["final"] = final
        del edges[:]
        self.data_bytes += _write_record(self._handle, chunk)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.chunks += 1
        self._write_manifest(complete=final is not None)
        self._last_write = time.monotonic()
        hook = self.config._interrupt_after_chunks
        if hook is not None and final is None and self.chunks >= hook:
            self.close()
            raise CheckpointInterrupted(
                f"injected interruption after chunk {self.chunks}")

    def _store_chunk(self, ts: TransitionSystem, frontier, edges,
                     extra_entries) -> dict:
        """The store-transport chunk body.

        In store mode everything is already id-keyed — the explorer's
        edge/frontier/truncation records carry dense state ids — and the
        new states' canonical frames are *read back* from the store's
        pages, never re-encoded. On a plain-mode resume of a store-format
        file, new states are encoded through the header's canonical codec
        and id-mapped here instead.
        """
        if self._store is not None:
            store = self._store
            states_payload = [store.raw_frame(sid) for sid
                              in range(self.states_written, len(store))]
            self.states_written = len(store)
            return {
                "states": states_payload,
                "raw_states": None,
                "edges": list(edges),
                "truncated": sorted(ts._truncated_ids),
                "frontier": list(
                    itertools.chain(extra_entries, frontier)),
            }
        index = self._index
        codec = self._state_codec
        states_payload = []
        for state in itertools.islice(
                ts._db.keys(), self.states_written, None):
            index[state] = self.states_written
            self.states_written += 1
            states_payload.append(codec.encode_state(state))
        return {
            "states": states_payload,
            "raw_states": None,
            "edges": [(index[source], index[target], label)
                      for source, target, label in edges],
            "truncated": sorted(
                index[state] for state in ts.truncated_states),
            "frontier": [(index[state], depth) for state, depth
                         in itertools.chain(extra_entries, frontier)],
        }

    def _write_manifest(self, complete: bool) -> None:
        manifest = {
            "version": CHECKPOINT_VERSION,
            "signature_sha": self.signature_sha,
            "data_bytes": self.data_bytes,
            "chunks": self.chunks,
            "states": self.states_written,
            "complete": complete,
        }
        temp_path = self.config.manifest_path + ".tmp"
        with open(temp_path, "w") as temp:
            json.dump(manifest, temp)
            temp.flush()
            os.fsync(temp.fileno())
        os.replace(temp_path, self.config.manifest_path)

    def finalize(self, ts: TransitionSystem, stats, edges) -> None:
        """The completion chunk: post-epilogue truncation/stats, manifest
        marked complete, so a later run with the same ``checkpoint=``
        short-circuits to the stored result instead of re-exploring."""
        self.write_chunk(
            ts, (), stats, edges,
            final={
                "diverged": stats.diverged,
                "early_stop": stats.early_stop,
                "duration": stats.duration,
                "exploration_stats": ts.exploration_stats,
            })
        self.close()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


# -- loading ----------------------------------------------------------------

def load_checkpoint(config: Checkpoint, generator, explorer
                    ) -> Optional[RestoredRun]:
    """Restore a run from ``config``'s files, or ``None`` when absent.

    Raises :class:`CheckpointError` for everything that *exists but
    cannot be resumed*: version/signature/generator/configuration
    mismatches, a missing kernel for a wire-coded file, and corrupted or
    manifest-breaking records.
    """
    if not os.path.exists(config.manifest_path) \
            or not os.path.exists(config.path):
        return None
    try:
        with open(config.manifest_path) as handle:
            manifest = json.load(handle)
    except (OSError, ValueError) as error:
        raise CheckpointError(
            f"unreadable checkpoint manifest "
            f"{config.manifest_path}: {error}") from error
    if manifest.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint format version {manifest.get('version')} is not "
            f"supported (expected {CHECKPOINT_VERSION})")

    with open(config.path, "rb") as handle:
        remaining = manifest["data_bytes"]
        header, consumed = _read_record(handle, remaining)
        remaining -= consumed
        _check_header(header, generator, explorer)
        if header["codec"] == "store":
            return _load_store_checkpoint(
                handle, remaining, manifest, header, generator, explorer)
        session = _loader_session(header, generator)
        ts = None
        states: List[Any] = []
        last_chunk = None
        for _ in range(manifest["chunks"]):
            chunk, consumed = _read_record(handle, remaining)
            remaining -= consumed
            last_chunk = chunk
            if session is not None:
                try:
                    new_states, _ = session.decode_dispatch(
                        chunk["states"])
                except WireIntegrityError as error:
                    raise CheckpointError(
                        f"corrupted checkpoint chunk: {error}") from error
            else:
                new_states = chunk["raw_states"]
            if ts is None:
                if not new_states:
                    raise CheckpointError(
                        "checkpoint's first chunk holds no states")
                ts = TransitionSystem(
                    explorer.schema, new_states[0],
                    name=header.get("name", ""))
            for state in new_states:
                ts.add_state(state, _state_db(state))
                states.append(state)
            for source, target, label in chunk["edges"]:
                ts.add_edge(states[source], states[target], label)
    if last_chunk is None or ts is None:
        # A manifest with zero chunks: the run died before its first safe
        # point; nothing worth restoring.
        return None
    ts.truncated_states.clear()
    for position in last_chunk["truncated"]:
        ts.mark_truncated(states[position])
    frontier = [(states[position], depth)
                for position, depth in last_chunk["frontier"]]
    final = last_chunk.get("final")
    if final is not None:
        ts.exploration_stats = final["exploration_stats"]
    return RestoredRun(
        ts=ts, frontier=frontier, stats=last_chunk["stats"],
        complete=bool(manifest.get("complete")), final=final,
        header=header, manifest=manifest, states=states,
        state_count=len(states))


def _load_store_checkpoint(handle, remaining: int, manifest, header,
                           generator, explorer) -> Optional[RestoredRun]:
    """Restore a store-transport checkpoint.

    When the resuming explorer runs in store mode (its paged store is
    still empty — nothing interned before the resume point), the old
    frames are *adopted* byte-for-byte into that store (no re-encoding;
    the codec is re-anchored on the header snapshot so new frames stay
    canonical against the old vocabulary) and the run continues on a
    :class:`~repro.engine.store.StoredTransitionSystem` with id-level
    edges/truncation/frontier passed straight through.

    A plain (unbudgeted) run can resume the same file: every frame is
    decoded through a standalone canonical codec and the restore falls
    back to the ordinary in-RAM transition system.
    """
    from repro.engine.store import StateCodec, StoredTransitionSystem
    dcds = getattr(generator, "dcds", None)
    kernel = kernel_for(dcds) if dcds is not None else None
    if kernel is None:
        raise CheckpointError(
            "checkpoint was written with the paged-store codec but no "
            "kernel is available to decode it (REPRO_NO_KERNEL set?)")
    try:
        kernel.table.replay(header["snapshot"])
    except (ValueError, AssertionError) as error:
        raise CheckpointError(
            f"checkpoint term-table snapshot does not align with this "
            f"process's kernel: {error}") from error
    store = getattr(explorer, "_store", None)
    adopt = store is not None and len(store) == 0
    if adopt:
        store.rebase_snapshot(len(header["snapshot"]))
        codec = store.codec
    else:
        codec = StateCodec(kernel, len(header["snapshot"]))
    states: List[Any] = []
    edges: List[Tuple[int, int, Optional[str]]] = []
    last_chunk = None
    count = 0
    for _ in range(manifest["chunks"]):
        chunk, consumed = _read_record(handle, remaining)
        remaining -= consumed
        last_chunk = chunk
        for frame in chunk["states"]:
            if adopt:
                sid, is_new = store.adopt_frame(frame)
                if sid != count or not is_new:
                    raise CheckpointError(
                        f"checkpoint frame {count} is out of order or "
                        f"duplicated (adopted as state {sid})")
            else:
                states.append(codec.decode_state(frame))
            count += 1
        edges.extend(chunk["edges"])
    if last_chunk is None or count == 0:
        return None
    if adopt:
        ts: TransitionSystem = StoredTransitionSystem(
            explorer.schema, store.fetch(0), store,
            name=header.get("name", ""))
        for source, target, label in edges:
            ts.add_edge_id(source, target, label)
        for sid in last_chunk["truncated"]:
            ts.mark_truncated_id(sid)
        frontier = [(sid, depth) for sid, depth in last_chunk["frontier"]]
    else:
        ts = TransitionSystem(
            explorer.schema, states[0], name=header.get("name", ""))
        for state in states:
            ts.add_state(state, _state_db(state))
        for source, target, label in edges:
            ts.add_edge(states[source], states[target], label)
        for position in last_chunk["truncated"]:
            ts.mark_truncated(states[position])
        frontier = [(states[position], depth)
                    for position, depth in last_chunk["frontier"]]
    final = last_chunk.get("final")
    if final is not None:
        ts.exploration_stats = final["exploration_stats"]
    return RestoredRun(
        ts=ts, frontier=frontier, stats=last_chunk["stats"],
        complete=bool(manifest.get("complete")), final=final,
        header=header, manifest=manifest, states=states,
        state_count=count)


def _check_header(header: Dict[str, Any], generator, explorer) -> None:
    if header.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint header version {header.get('version')} is not "
            f"supported (expected {CHECKPOINT_VERSION})")
    signature = _signature_of(generator)
    if header["signature"] != signature:
        raise CheckpointError(
            "checkpoint belongs to a different specification "
            f"(stored signature {_signature_sha(header['signature'])}, "
            f"resuming spec {_signature_sha(signature)})")
    if header["generator"] != type(generator).__name__:
        raise CheckpointError(
            f"checkpoint was written by {header['generator']}, cannot "
            f"resume with {type(generator).__name__}")
    if header["symmetry_values"] != getattr(
            generator, "symmetry_values", None):
        raise CheckpointError(
            "checkpoint was written with a different value pool")
    for attribute in ("strategy", "max_depth"):
        if header[attribute] != getattr(explorer, attribute):
            raise CheckpointError(
                f"checkpoint {attribute}={header[attribute]!r} does not "
                f"match the resuming explorer "
                f"({getattr(explorer, attribute)!r})")


def _loader_session(header: Dict[str, Any], generator
                    ) -> Optional[WireSession]:
    if header["codec"] != "wire":
        return None
    dcds = getattr(generator, "dcds", None)
    kernel = kernel_for(dcds) if dcds is not None else None
    if kernel is None:
        raise CheckpointError(
            "checkpoint was written with the kernel wire codec but no "
            "kernel is available to decode it (REPRO_NO_KERNEL set?)")
    try:
        kernel.table.replay(header["snapshot"])
    except (ValueError, AssertionError) as error:
        raise CheckpointError(
            f"checkpoint term-table snapshot does not align with this "
            f"process's kernel: {error}") from error
    return WireSession(WireCodec(kernel, len(header["snapshot"])))
