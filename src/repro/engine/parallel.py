"""Parallel sharded state-space exploration.

:class:`ParallelExplorer` distributes the *expansion* work of the frontier
loop — ``generator.successors(state)``, the expensive part: FOL evaluation,
``DO()``, commitment enumeration, constraint checks — across a
``multiprocessing`` worker pool, while the coordinator keeps sole ownership
of everything order-sensitive: state interning (``successor not in ts``),
edge insertion, growth accounting, budgets, truncation marking, and the
observer hook.

Determinism contract
--------------------
The constructed transition system is **bit-identical** to a sequential
:class:`repro.engine.Explorer` run with the same configuration, for any
worker count:

* work items are popped from the frontier in exactly the sequential BFS
  order and dispatched as batches; results are *applied* strictly in the
  order the items were popped, so interning, edge, growth-trace, and
  observer events replay the sequential interleaving verbatim;
* workers never intern — they only expand, and the supported generators
  (``parallel_safe = True``) yield successors in an order that depends
  only on the state (all orderings are repr/``value_sort_key`` based,
  never hash-order, so per-process ``PYTHONHASHSEED`` cannot leak in);
* a budget or early-stop event mid-batch discards the not-yet-applied
  results of that batch and of every in-flight batch — speculative worker
  results never leak un-interned states into the transition system.

RCYCL is deliberately excluded: its used-value candidate pool makes every
expansion depend on the global discovery order, which is inherently
sequential (``RcyclGenerator.parallel_safe`` is ``False``).

The pool uses the ``fork`` start method where available (workers inherit
the warmed ``lru_cache`` memo tables of :mod:`repro.core.execution` for
free) and falls back to ``spawn`` elsewhere — which is why the relational
layer's ``__reduce__`` implementations must drop per-process cached hashes.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import ReproError
from repro.engine.explorer import (
    BudgetError, ExplorationResult, Explorer, SuccessorGenerator,
    _default_budget_error)
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema
from repro.semantics.transition_system import State

# Worker-side generator, installed once per pool by :func:`_worker_init`.
_WORKER_GENERATOR: Optional[SuccessorGenerator] = None


def _worker_init(generator: SuccessorGenerator) -> None:
    global _WORKER_GENERATOR
    _WORKER_GENERATOR = generator


def _expand_batch(states: List[State]
                  ) -> List[List[Tuple[State, Instance, Optional[str]]]]:
    """Expand a batch of states; one successor list per state, in order."""
    generator = _WORKER_GENERATOR
    return [list(generator.successors(state)) for state in states]


def make_explorer(schema: DatabaseSchema, workers: Optional[int] = None,
                  batch_size: int = 16, **kwargs: Any) -> Explorer:
    """The one ``workers=``-dispatch point for the builder entry points.

    ``workers=None`` (the default everywhere) is the sequential
    :class:`Explorer`; an explicit count is a sharded
    :class:`ParallelExplorer`. ``kwargs`` are the shared :class:`Explorer`
    configuration (name, budgets, observer, ...).
    """
    if workers is None:
        return Explorer(schema, **kwargs)
    return ParallelExplorer(
        schema, workers=workers, batch_size=batch_size, **kwargs)


def default_workers() -> int:
    """Worker-count default: the CPUs this process may run on."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


class ParallelExplorer(Explorer):
    """A drop-in :class:`Explorer` whose expansions run on a worker pool.

    Parameters beyond :class:`Explorer` (strategy is fixed to the paper's
    BFS order — sharding a DFS frontier would reorder discoveries):

    workers:
        Pool size (default: :func:`default_workers`). ``workers=1`` still
        exercises the full dispatch/apply machinery in a separate process,
        which is what the differential harness pins against the sequential
        engine.
    batch_size:
        Work items per dispatched batch. Batches amortize IPC: each round
        trip ships ``batch_size`` states out and their successor lists back.
    max_inflight:
        Dispatch window (default ``2 * workers`` batches) — how far the
        coordinator runs ahead of the oldest unapplied batch. Bounds both
        memory and the speculative work discarded on budget/early-stop.
    start_method:
        ``multiprocessing`` start method (default: ``fork`` when available).
    """

    def __init__(
        self,
        schema: DatabaseSchema,
        name: str = "",
        max_states: Optional[int] = None,
        max_depth: Optional[int] = None,
        on_budget: str = "raise",
        budget_error: BudgetError = _default_budget_error,
        observer: Optional[
            Callable[[State, Instance], Optional[str]]] = None,
        workers: Optional[int] = None,
        batch_size: int = 16,
        max_inflight: Optional[int] = None,
        start_method: Optional[str] = None,
    ):
        super().__init__(
            schema, name=name, max_states=max_states, max_depth=max_depth,
            on_budget=on_budget, budget_error=budget_error, strategy="bfs",
            observer=observer)
        if workers is not None and workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        if batch_size < 1:
            raise ReproError(f"batch_size must be >= 1, got {batch_size}")
        if max_inflight is not None and max_inflight < 1:
            raise ReproError(
                f"max_inflight must be >= 1, got {max_inflight}")
        self.workers = workers if workers is not None else default_workers()
        self.batch_size = batch_size
        self.max_inflight = max_inflight if max_inflight is not None \
            else 2 * self.workers
        if start_method is None:
            start_method = "fork" \
                if "fork" in multiprocessing.get_all_start_methods() \
                else None
        self.start_method = start_method

    # -- the sharded frontier loop ------------------------------------------

    def run(self, generator: SuccessorGenerator) -> ExplorationResult:
        if not getattr(generator, "parallel_safe", False):
            raise ReproError(
                f"{type(generator).__name__} is not parallel-safe "
                f"(order-dependent expansion state); use the sequential "
                f"Explorer")
        started = time.perf_counter()
        ts, frontier = self._start(generator)
        stats = self.stats
        stats.parallel = {
            "workers": self.workers,
            "batch_size": self.batch_size,
            "batches": 0,
            "speculative_states_discarded": 0,
        }
        budget_hit = False

        context = multiprocessing.get_context(self.start_method)
        pool = None  # created lazily: an early-stopped or depth-zero run
        # (e.g. an on-the-fly witness on the initial state) never pays
        # worker startup.
        # In-flight batches, oldest first: (entries, async_result) where
        # entries is the popped ``(state, depth, expand)`` prefix of the
        # sequential frontier and async_result covers its expandable states.
        in_flight: deque = deque()
        inflight_entries = 0  # popped but not yet applied, across batches
        try:
            while (frontier or in_flight) and not budget_hit \
                    and stats.early_stop is None:
                while frontier and len(in_flight) < self.max_inflight:
                    entries: List[Tuple[State, int, bool]] = []
                    expandable: List[State] = []
                    while frontier and len(entries) < self.batch_size:
                        state, depth = frontier.popleft()
                        # The depth cut is decided here (it only needs the
                        # pop-time depth) but *marked* at apply time, so
                        # truncation marks land in sequential order.
                        expand = self.max_depth is None \
                            or depth < self.max_depth
                        entries.append((state, depth, expand))
                        if expand:
                            expandable.append(state)
                    if expandable and pool is None:
                        pool = context.Pool(
                            self.workers, initializer=_worker_init,
                            initargs=(generator,))
                    async_result = pool.apply_async(
                        _expand_batch, (expandable,)) if expandable else None
                    in_flight.append((entries, async_result))
                    inflight_entries += len(entries)
                    stats.parallel["batches"] += 1

                entries, async_result = in_flight.popleft()
                results = async_result.get() if async_result is not None \
                    else []
                results_iter = iter(results)
                for position, (state, depth, expand) in enumerate(entries):
                    inflight_entries -= 1
                    if not expand:
                        ts.mark_truncated(state)
                        continue
                    successors = next(results_iter)
                    stats.expansions += 1
                    # ``pending=inflight_entries``: every popped-but-unapplied
                    # item beyond this one still counts toward what the
                    # sequential frontier length would be at each append.
                    budget_hit = self._apply_successors(
                        generator, ts, frontier, state, depth, successors,
                        pending=inflight_entries)
                    if budget_hit or stats.early_stop is not None:
                        # Re-queue the unapplied tail of this batch so the
                        # epilogue treats it as frontier (exactly the states
                        # a sequential run would still have queued). Their
                        # computed successor lists are discarded unseen.
                        tail = entries[position + 1:]
                        inflight_entries -= len(tail)
                        stats.parallel["speculative_states_discarded"] += \
                            sum(1 for _, _, expand in tail if expand)
                        frontier.extendleft(
                            (state, depth)
                            for state, depth, _ in reversed(tail))
                        break
                if budget_hit or stats.early_stop is not None:
                    while in_flight:
                        tail_entries, _ = in_flight.popleft()
                        inflight_entries -= len(tail_entries)
                        stats.parallel["speculative_states_discarded"] += \
                            sum(1 for _, _, expand in tail_entries if expand)
                        frontier.extend((state, depth)
                                        for state, depth, _ in tail_entries)
        finally:
            if pool is not None:
                pool.terminate()
                pool.join()

        return self._finish(ts, frontier, budget_hit, started)
