"""Parallel sharded state-space exploration.

:class:`ParallelExplorer` distributes the *expansion* work of the frontier
loop — ``generator.successors(state)``, the expensive part: FOL evaluation,
``DO()``, commitment enumeration, constraint checks — across a
``multiprocessing`` worker pool, while the coordinator keeps sole ownership
of everything order-sensitive: state interning (``successor not in ts``),
edge insertion, growth accounting, budgets, truncation marking, and the
observer hook.

Determinism contract
--------------------
The constructed transition system is **bit-identical** to a sequential
:class:`repro.engine.Explorer` run with the same configuration, for any
worker count:

* work items are popped from the frontier in exactly the sequential BFS
  order and dispatched as batches; results are *applied* strictly in the
  order the items were popped, so interning, edge, growth-trace, and
  observer events replay the sequential interleaving verbatim;
* workers never intern — they only expand, and the supported generators
  (``parallel_safe = True``) yield successors in an order that depends
  only on the state (all orderings are repr/``value_sort_key`` based,
  never hash-order, so per-process ``PYTHONHASHSEED`` cannot leak in);
* a budget or early-stop event mid-batch discards the not-yet-applied
  results of that batch and of every in-flight batch — speculative worker
  results never leak un-interned states into the transition system.

RCYCL is deliberately excluded: its used-value candidate pool makes every
expansion depend on the global discovery order, which is inherently
sequential (``RcyclGenerator.parallel_safe`` is ``False``).

Transport
---------
Each worker is a dedicated process with its own duplex pipe, so traffic per
worker is FIFO — the property the wire codec's token protocol
(:class:`repro.engine.wire.WireSession`) is built on: both pipe ends
register states in the same event order and afterwards refer to them by
small integer tokens instead of re-encoding. Batches are routed to the
worker that already knows most of their states (affinity), which makes the
common dispatch a stream of tokens. Generators without a DCDS kernel fall
back to shipping CRC-framed pickled state/successor lists over the same
links.

The ``fork`` start method is preferred where available (workers inherit the
warmed kernel interners and ``lru_cache`` memo tables for free) with
``spawn`` supported elsewhere — which is why the relational layer's
``__reduce__`` implementations must drop per-process cached hashes and the
kernel construction order is deterministic (snapshot replay).

Supervision and recovery
------------------------
Links are supervised: every coordinator-side receive runs a liveness poll
loop (``dispatch_timeout`` deadline, ``is_alive``/exitcode checks, a
``send_failed`` flag raised by the sender thread instead of the old silent
swallow), so a dead, hung, or unreachable worker surfaces as a structured
:class:`~repro.errors.WorkerCrashError` instead of blocking forever. A
failed link is *recycled* — terminated (``kill()`` backstop, never a
zombie), replaced by a fresh process with a fresh symmetric
:class:`WireSession` — and every batch that was awaiting a reply on it is
re-encoded and redispatched to the surviving pool, with exponential
backoff and a per-batch ``retry_limit``.

Redispatch preserves the determinism contract for free: expansion is a
pure function of the dispatched states, and results are applied in pop
order regardless of which link computed them. The one subtlety is token
alignment — replies on a link must be decoded in that link's *send* order
(the worker processes its pipe FIFO), which after a redispatch is no
longer the global apply order. Each link therefore keeps a ``pending``
queue of its unanswered batches: replies are decoded against the queue
head (keeping the session's result space aligned) and parked on the batch
record until the apply loop reaches it.

Failure taxonomy at the receive site:

* ``WorkerCrashError`` (died / hung / send-failed) — recycle + redispatch;
* :class:`~repro.errors.WireIntegrityError` — a corrupted frame; the CRC
  check fires *before* any token registration, but the two ends of the
  link can no longer be trusted to agree, so the link is recycled too;
* relayed ``MemoryError`` — transient pressure; recycling the worker
  frees its memory and the batch retries after backoff;
* any other relayed exception is deterministic (a sequential run would
  hit it on the same state) and propagates unchanged.

Fault injection (``REPRO_FAULTS``, :mod:`repro.engine.faults`) drives all
of these paths deterministically in the chaos tests; respawned
replacement workers never carry a fault schedule, so recovery always can
converge.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import time
from collections import deque
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import ReproError, WireIntegrityError, WorkerCrashError
from repro.engine.explorer import (
    BudgetError, ExplorationResult, Explorer, SuccessorGenerator,
    _default_budget_error)
from repro.engine.faults import FaultPlan, WorkerFaults
from repro.engine.wire import (
    WireCodec, WireSession, _dumps, _loads, make_codec)
from repro.relational.instance import Instance
from repro.relational.kernel import kernel_for
from repro.relational.schema import DatabaseSchema
from repro.semantics.transition_system import State

#: Liveness poll slice while waiting for a reply: how often the receive
#: loop re-checks worker aliveness, the send-failed flag, and the dispatch
#: deadline. Data arriving mid-slice wakes ``poll`` immediately, so the
#: fault-free hot path pays at most one slice of latency per reply.
_POLL_INTERVAL = 0.05


def _worker_codec(generator: SuccessorGenerator,
                  snapshot: Optional[list]) -> Optional[WireCodec]:
    if snapshot is None:
        return None
    kernel = kernel_for(generator.dcds)
    if kernel is None:
        return None
    # Fork: the inherited table *is* the snapshot (replay verifies) — or a
    # longer table when this worker is a mid-run respawn, in which case
    # replay checks the prefix. Spawn: the freshly built kernel interned
    # the deterministic constructor prefix; replay appends the
    # coordinator's exploration-time codes in order, asserting alignment.
    kernel.table.replay(snapshot)
    return WireCodec(kernel, len(snapshot))


def _worker_main(conn, generator: SuccessorGenerator,
                 snapshot: Optional[list], index: int = 0,
                 faults: Optional[WorkerFaults] = None) -> None:
    """Worker loop: receive a batch payload, expand, reply; ``None`` exits.

    Exceptions are relayed to the coordinator (tagged ``"exc"``) instead of
    killing the link silently. ``faults`` is this worker's injection
    schedule (chaos tests only): counted per dispatch before expansion,
    and applied to the encoded reply bytes.
    """
    codec = _worker_codec(generator, snapshot)
    session = WireSession(codec, index) if codec is not None else None
    while True:
        payload = conn.recv()
        if payload is None:
            return
        try:
            if faults is not None:
                faults.before_dispatch()
            if session is not None:
                states, parents = session.decode_dispatch(payload)
                # Batched grounding: the whole dispatch block is warmed in
                # one columnar pass, like the sequential batch driver.
                results = generator.successors_batch(states)
                reply = session.encode_results(parents, results)
            else:
                states = _loads(payload, index)
                reply = _dumps(generator.successors_batch(states))
            if faults is not None:
                reply = faults.mangle_reply(reply)
                if reply is None:  # injected message drop
                    continue
            conn.send(("ok", reply))
        except BaseException as error:  # relayed, not swallowed
            try:
                conn.send(("exc", error))
            except Exception:
                # Unpicklable exception: relay a picklable stand-in so
                # the coordinator sees the message, not a dead pipe.
                conn.send(("exc", ReproError(
                    f"worker failed with unpicklable "
                    f"{type(error).__name__}: {error}")))


class _Batch:
    """One dispatched frontier block, from pop to apply.

    ``entries`` is the popped ``(key, depth, expand)`` prefix of the
    sequential frontier, keyed like the frontier itself (live states, or
    dense state ids in store mode); ``expandable`` the subset shipped to a
    worker
    (kept so a lost batch can be re-encoded on any session); ``link`` /
    ``parents`` the worker currently expanding it and that session's
    dispatch context (``None`` for all-truncated batches and, for
    ``parents``, on the pickle path); ``results`` the decoded successor
    lists, parked here by the link drain until the apply loop reaches
    this batch; ``retries`` how many times the batch has been
    redispatched after a link failure.
    """

    __slots__ = ("entries", "expandable", "link", "parents", "results",
                 "retries")

    def __init__(self, entries: List[Tuple[State, int, bool]],
                 expandable: List[State]):
        self.entries = entries
        self.expandable = expandable
        self.link: Optional["_WorkerLink"] = None
        self.parents = None
        self.results: Optional[list] = [] if not expandable else None
        self.retries = 0


class _WorkerLink:
    """One dedicated worker process and its coordinator-side session.

    Dispatches go through a per-link sender thread, so the coordinator
    never blocks in ``conn.send`` — without it, a worker stuck sending a
    large reply (pipe buffer full, coordinator not reading yet) and a
    coordinator stuck sending the next large dispatch would deadlock.
    Every worker process is started before any sender thread exists (see
    ``_start_links``): forking with live threads risks inheriting held
    locks. (A mid-run respawn *does* fork with sender threads alive; the
    child only ever touches its own pipe end and imports nothing lazily,
    so none of the parent's per-link locks can be needed.)

    ``pending`` is the supervision ledger: the link's unanswered batches
    in send order. Replies decode against its head (token alignment), and
    on failure it is exactly the set of batches to redispatch.
    """

    __slots__ = ("index", "process", "conn", "session", "pending",
                 "send_failed", "_outbox", "_sender")

    def __init__(self, context, generator: SuccessorGenerator,
                 snapshot: Optional[list], codec: Optional[WireCodec],
                 index: int = 0, faults: Optional[WorkerFaults] = None):
        self.index = index
        self.conn, child_conn = context.Pipe(duplex=True)
        self.process = context.Process(
            target=_worker_main,
            args=(child_conn, generator, snapshot, index, faults),
            daemon=True)
        self.process.start()
        child_conn.close()
        self.session = WireSession(codec, index) \
            if codec is not None else None
        self.pending: "deque[_Batch]" = deque()
        self.send_failed = threading.Event()
        self._outbox: "queue.Queue" = queue.Queue()
        self._sender: Optional[threading.Thread] = None

    def start_sender(self) -> None:
        self._sender = threading.Thread(target=self._send_loop, daemon=True)
        self._sender.start()

    def _send_loop(self) -> None:
        while True:
            payload = self._outbox.get()
            try:
                # ``None`` is forwarded: it is the worker's exit sentinel.
                self.conn.send(payload)
            except (BrokenPipeError, OSError):
                # Worker gone. Flag it — the supervisor's receive loop
                # turns the flag into a structured WorkerCrashError; the
                # old behaviour (silent return) left the coordinator
                # blocked in recv until EOF happened to arrive.
                if payload is not None:
                    self.send_failed.set()
                return
            if payload is None:
                return

    def send(self, payload) -> None:
        self._outbox.put(payload)

    def receive(self, timeout: Optional[float] = None):
        """The next raw reply payload, supervised.

        Polls in :data:`_POLL_INTERVAL` slices so worker death (process
        exit, broken send pipe) and the ``timeout`` deadline are noticed
        while waiting; raises :class:`WorkerCrashError` for all three,
        and re-raises relayed worker exceptions (``"exc"`` frames)
        unchanged.
        """
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        while not self.conn.poll(_POLL_INTERVAL):
            if self.send_failed.is_set():
                raise WorkerCrashError(
                    f"worker {self.index}: dispatch pipe broke mid-send "
                    f"with {len(self.pending)} batch(es) in flight",
                    worker=self.index, reason="send-failed",
                    exitcode=self.process.exitcode,
                    batches_lost=len(self.pending))
            if not self.process.is_alive() and not self.conn.poll(0):
                raise WorkerCrashError(
                    f"worker {self.index} died (exitcode "
                    f"{self.process.exitcode}) with {len(self.pending)} "
                    f"batch(es) in flight",
                    worker=self.index, reason="died",
                    exitcode=self.process.exitcode,
                    batches_lost=len(self.pending))
            if deadline is not None and time.monotonic() > deadline:
                raise WorkerCrashError(
                    f"worker {self.index} hung: no reply within the "
                    f"{timeout:g}s dispatch timeout, {len(self.pending)} "
                    f"batch(es) in flight",
                    worker=self.index, reason="hung",
                    exitcode=self.process.exitcode,
                    batches_lost=len(self.pending))
        try:
            tag, payload = self.conn.recv()
        except (EOFError, OSError) as error:
            raise WorkerCrashError(
                f"worker {self.index} died mid-reply "
                f"({type(error).__name__}) with {len(self.pending)} "
                f"batch(es) in flight",
                worker=self.index, reason="died",
                exitcode=self.process.exitcode,
                batches_lost=len(self.pending)) from error
        if tag == "exc":
            raise payload
        return payload

    def shutdown(self, graceful: bool = True) -> None:
        """Stop the worker; never hangs, never leaves a zombie.

        Graceful first (``graceful=True``): the exit sentinel travels
        through the sender thread (the pipe is never written from two
        threads) and the process gets a short join. A worker that will
        not read it — blocked mid-send, hung, already crashed — is
        terminated, with ``kill()`` as the backstop for a process that
        ignores SIGTERM; every path ends in a full ``join``, so no
        zombie survives (the old ``join(timeout=1.0)``-then-``terminate``
        sequence could leak one when terminate lost a race with a
        stuck-in-send child). Killing the process breaks the pipe, which
        also unblocks a sender thread stuck in ``send``.
        """
        if graceful:
            self._outbox.put(None)
            self.process.join(timeout=1.0)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join()
        if not graceful:
            # Release a sender thread parked in ``get`` (the broken pipe
            # already released one parked in ``send``).
            self._outbox.put(None)
        if self._sender is not None:
            self._sender.join(timeout=1.0)
        try:
            self.conn.close()
        except OSError:
            pass


def _start_links(context, workers: int, generator: SuccessorGenerator,
                 snapshot: Optional[list], codec: Optional[WireCodec],
                 plan: Optional[FaultPlan] = None) -> List[_WorkerLink]:
    """Fork/spawn every worker first, then start the sender threads."""
    links = [
        _WorkerLink(context, generator, snapshot, codec, index,
                    plan.for_worker(index) if plan is not None else None)
        for index in range(workers)]
    for link in links:
        link.start_sender()
    return links


def make_explorer(schema: DatabaseSchema, workers: Optional[int] = None,
                  batch_size: int = 16, **kwargs: Any) -> Explorer:
    """The one ``workers=``-dispatch point for the builder entry points.

    ``workers=None`` (the default everywhere) is the sequential
    :class:`Explorer`; an explicit count is a sharded
    :class:`ParallelExplorer`. ``kwargs`` are the shared :class:`Explorer`
    configuration (name, budgets, observer, ...).
    """
    if workers is None:
        return Explorer(schema, **kwargs)
    return ParallelExplorer(
        schema, workers=workers, batch_size=batch_size, **kwargs)


def default_workers() -> int:
    """Worker-count default: the CPUs this process may run on."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


class ParallelExplorer(Explorer):
    """A drop-in :class:`Explorer` whose expansions run on a worker pool.

    Parameters beyond :class:`Explorer` (strategy is fixed to the paper's
    BFS order — sharding a DFS frontier would reorder discoveries):

    workers:
        Pool size (default: :func:`default_workers`). ``workers=1``
        short-circuits to the shared sequential apply loop in-process —
        one worker cannot overlap with the coordinator, so a subprocess
        round trip is pure overhead (measured 0.61–0.91x in PR 4). The
        run records ``codec="inline"`` with zero IPC bytes; the dispatch
        machinery itself is pinned by the differential harness at
        ``workers>=2``.
    batch_size:
        Work items per dispatched batch. Batches amortize IPC: each round
        trip ships ``batch_size`` states out and their successor lists back.
    max_inflight:
        Dispatch window (default ``2 * workers`` batches) — how far the
        coordinator runs ahead of the oldest unapplied batch. Bounds both
        memory and the speculative work discarded on budget/early-stop.
    start_method:
        ``multiprocessing`` start method (default: ``fork`` when available).
    dispatch_timeout:
        Seconds a link may stay silent (while owed a reply) before it is
        declared hung and recycled. Generous by default — a legitimate
        expansion of a huge instance must never trip it.
    retry_limit:
        How many times one batch may be redispatched after link failures
        before the run gives up with ``reason="retries-exhausted"``.
        ``0`` disables recovery: the first failure propagates.
    retry_backoff:
        Base backoff in seconds before redispatching; doubles with each
        retry of the failing batch (``backoff * 2**(retries-1)``).
    faults:
        A :class:`~repro.engine.faults.FaultPlan` injected into the
        worker pool (chaos tests / benchmarks). Default: parsed from
        ``REPRO_FAULTS`` at run time; ``None`` there too in production.
    """

    def __init__(
        self,
        schema: DatabaseSchema,
        name: str = "",
        max_states: Optional[int] = None,
        max_depth: Optional[int] = None,
        on_budget: str = "raise",
        budget_error: BudgetError = _default_budget_error,
        observer: Optional[
            Callable[[State, Instance], Optional[str]]] = None,
        workers: Optional[int] = None,
        batch_size: int = 16,
        max_inflight: Optional[int] = None,
        start_method: Optional[str] = None,
        dispatch_timeout: float = 120.0,
        retry_limit: int = 3,
        retry_backoff: float = 0.05,
        faults: Optional[FaultPlan] = None,
        checkpoint=None,
        memory_budget: Optional[int] = None,
    ):
        super().__init__(
            schema, name=name, max_states=max_states, max_depth=max_depth,
            on_budget=on_budget, budget_error=budget_error, strategy="bfs",
            observer=observer, checkpoint=checkpoint,
            memory_budget=memory_budget)
        if workers is not None and workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        if batch_size < 1:
            raise ReproError(f"batch_size must be >= 1, got {batch_size}")
        if max_inflight is not None and max_inflight < 1:
            raise ReproError(
                f"max_inflight must be >= 1, got {max_inflight}")
        if dispatch_timeout <= 0:
            raise ReproError(
                f"dispatch_timeout must be > 0, got {dispatch_timeout}")
        if retry_limit < 0:
            raise ReproError(
                f"retry_limit must be >= 0, got {retry_limit}")
        if retry_backoff < 0:
            raise ReproError(
                f"retry_backoff must be >= 0, got {retry_backoff}")
        self.workers = workers if workers is not None else default_workers()
        self.batch_size = batch_size
        self.max_inflight = max_inflight if max_inflight is not None \
            else 2 * self.workers
        if start_method is None:
            start_method = "fork" \
                if "fork" in multiprocessing.get_all_start_methods() \
                else None
        self.start_method = start_method
        self.dispatch_timeout = dispatch_timeout
        self.retry_limit = retry_limit
        self.retry_backoff = retry_backoff
        self.faults = faults

    def _initial_parallel_stats(self, codec: str) -> dict:
        """One schema for the pool counters, whatever the transport —
        consumers read abstraction_stats["parallel"] keys uniformly."""
        return {
            "workers": self.workers,
            "batch_size": self.batch_size,
            "batches": 0,
            "speculative_states_discarded": 0,
            "codec": codec,
            "states_shipped": 0,
            "ipc_bytes_sent": 0,
            "ipc_bytes_received": 0,
            "coordinator_decode_sec": 0.0,
            "coordinator_apply_sec": 0.0,
            # Supervision counters: link failures survived (by reason),
            # replacement workers started, batches re-sent after a
            # failure, corrupted frames rejected by the CRC check, and
            # the wall-clock the coordinator spent recovering.
            "crashes": 0,
            "respawns": 0,
            "redispatches": 0,
            "integrity_errors": 0,
            "recovery_sec": 0.0,
        }

    # -- the sharded frontier loop ------------------------------------------

    def run(self, generator: SuccessorGenerator) -> ExplorationResult:
        if not getattr(generator, "parallel_safe", False):
            raise ReproError(
                f"{type(generator).__name__} is not parallel-safe "
                f"(order-dependent expansion state); use the sequential "
                f"Explorer")
        if self.workers == 1:
            # A single worker cannot overlap with the coordinator, so the
            # pipe round trip is pure overhead: run the shared sequential
            # apply loop in-process — same interning/edge/growth/observer
            # order by construction — and record an inline transport.
            self.stats.parallel = self._initial_parallel_stats("inline")
            return super().run(generator)
        started = time.perf_counter()
        # The budget hooks live on process-wide kernel singletons: detach
        # on the restored-complete return and on a resume error — the
        # main loop below detaches in its own finally.
        try:
            ts, frontier = self._start(generator)
        except BaseException:
            self._detach_budget()
            raise
        if self._restored_result is not None:
            self._detach_budget()
            return self._restored_result
        stats = self.stats
        stats.parallel = self._initial_parallel_stats("pickle")
        budget_hit = False

        context = multiprocessing.get_context(self.start_method)
        links: List[_WorkerLink] = []  # started lazily: an early-stopped
        # or depth-zero run (e.g. an on-the-fly witness on the initial
        # state) never pays worker startup.
        codec = None  # built with the links: its table snapshot is taken
        # at fork/spawn time, so snapshot codes are shared vocabulary.
        snapshot = None  # kept for the run: respawned workers replay it.
        # In-flight batches, oldest first; applied strictly in this order.
        in_flight: "deque[_Batch]" = deque()
        inflight_entries = 0  # popped but not yet applied, across batches
        try:
            while (frontier or in_flight) and not budget_hit \
                    and stats.early_stop is None:
                self._note_store_frontier(frontier)
                while frontier and len(in_flight) < self.max_inflight:
                    # Batch entries are keyed like the frontier: live
                    # states normally, dense state ids in store mode
                    # (the expandable states are rehydrated here, at
                    # dispatch time, and shipped as live objects).
                    entries: List[Tuple[Any, int, bool]] = []
                    expandable: List[State] = []
                    while frontier and len(entries) < self.batch_size:
                        entry = frontier.popleft()
                        state, depth, sid = self._entry_state(entry)
                        # The depth cut is decided here (it only needs the
                        # pop-time depth) but *marked* at apply time, so
                        # truncation marks land in sequential order.
                        expand = self.max_depth is None \
                            or depth < self.max_depth
                        entries.append(
                            (sid if sid is not None else state,
                             depth, expand))
                        if expand:
                            expandable.append(state)
                    batch = _Batch(entries, expandable)
                    if expandable:
                        if not links:
                            codec = make_codec(generator)
                            snapshot = codec.snapshot() \
                                if codec is not None else None
                            if codec is not None:
                                stats.parallel["codec"] = "wire"
                            plan = self.faults if self.faults is not None \
                                else FaultPlan.from_env()
                            links = _start_links(
                                context, self.workers, generator,
                                snapshot, codec, plan)
                        self._dispatch(batch, self._route(
                            links, expandable), stats)
                    in_flight.append(batch)
                    inflight_entries += len(entries)
                    stats.parallel["batches"] += 1

                batch = in_flight.popleft()
                results = batch.results
                if results is None:
                    results = self._await_results(
                        batch, links, context, generator, snapshot,
                        codec, stats)
                apply_started = time.perf_counter()
                results_iter = iter(results)
                for position, (key, depth, expand) in enumerate(
                        batch.entries):
                    inflight_entries -= 1
                    if not expand:
                        self._mark_entry_truncated(ts, (key, depth))
                        continue
                    successors = next(results_iter)
                    stats.expansions += 1
                    # Plain mode: the key *is* the live state. Store mode:
                    # rehydrate it (normally a hot-LRU hit — the state was
                    # touched at dispatch time).
                    state, _, sid = self._entry_state((key, depth))
                    # ``pending=inflight_entries``: every popped-but-unapplied
                    # item beyond this one still counts toward what the
                    # sequential frontier length would be at each append.
                    budget_hit = self._apply_successors(
                        generator, ts, frontier, state, depth, successors,
                        pending=inflight_entries, sid=sid)
                    if budget_hit or stats.early_stop is not None:
                        # Re-queue the unapplied tail of this batch so the
                        # epilogue treats it as frontier (exactly the states
                        # a sequential run would still have queued). Their
                        # computed successor lists are discarded unseen.
                        tail = batch.entries[position + 1:]
                        inflight_entries -= len(tail)
                        stats.parallel["speculative_states_discarded"] += \
                            sum(1 for _, _, expand in tail if expand)
                        frontier.extendleft(
                            (state, depth)
                            for state, depth, _ in reversed(tail))
                        break
                stats.parallel["coordinator_apply_sec"] += \
                    time.perf_counter() - apply_started
                if self._ckpt_writer is not None and not budget_hit \
                        and stats.early_stop is None:
                    # Safe point: all applied sources have complete edge
                    # sets, and the in-flight entry tails prepended to
                    # the frontier are exactly the sequential frontier.
                    self._ckpt_writer.maybe_write(
                        ts, frontier, stats, self._ckpt_edges,
                        extra_entries=(
                            (state, depth) for pending in in_flight
                            for state, depth, _ in pending.entries))
                if budget_hit or stats.early_stop is not None:
                    while in_flight:
                        tail_batch = in_flight.popleft()
                        inflight_entries -= len(tail_batch.entries)
                        stats.parallel["speculative_states_discarded"] += \
                            sum(1 for _, _, expand in tail_batch.entries
                                if expand)
                        frontier.extend(
                            (state, depth)
                            for state, depth, _ in tail_batch.entries)
        finally:
            for link in links:
                link.shutdown()
            self._detach_budget()

        return self._finish(ts, frontier, budget_hit, started)

    # -- dispatch / receive / recovery --------------------------------------

    def _dispatch(self, batch: _Batch, link: _WorkerLink,
                  stats) -> None:
        """Encode the batch on the link's session and queue it for send."""
        if link.session is not None:
            payload, parents = link.session.encode_dispatch(
                batch.expandable)
        else:
            payload = _dumps(batch.expandable)
            parents = None
        batch.link = link
        batch.parents = parents
        stats.parallel["ipc_bytes_sent"] += len(payload)
        stats.parallel["states_shipped"] += len(batch.expandable)
        link.send(payload)
        link.pending.append(batch)

    def _await_results(self, batch: _Batch, links: List[_WorkerLink],
                       context, generator: SuccessorGenerator,
                       snapshot: Optional[list],
                       codec: Optional[WireCodec], stats) -> list:
        """Drain the batch's link until this batch's results are decoded.

        Replies are decoded against the head of the link's ``pending``
        queue — the link's own send order, which keeps both sessions'
        token spaces aligned — and parked on each batch record; after a
        redispatch the wanted batch may sit behind globally-newer ones,
        so this can decode (and park) several replies before returning.
        Link failures recover in place: recycle, redispatch, continue
        waiting on whichever link now owns the batch.
        """
        while batch.results is None:
            link = batch.link
            head = link.pending[0]
            try:
                payload = link.receive(self.dispatch_timeout)
                stats.parallel["ipc_bytes_received"] += len(payload)
                decode_started = time.perf_counter()
                if head.parents is not None:
                    decoded = link.session.decode_results(
                        payload, head.parents)
                else:
                    decoded = _loads(payload, link.index)
                stats.parallel["coordinator_decode_sec"] += \
                    time.perf_counter() - decode_started
            except WorkerCrashError as error:
                self._recover(links, link, error, context, generator,
                              snapshot, codec, stats)
                continue
            except WireIntegrityError as error:
                stats.parallel["integrity_errors"] += 1
                self._recover(links, link, error, context, generator,
                              snapshot, codec, stats)
                continue
            except MemoryError as error:
                # Relayed memory pressure: transient by contract — the
                # recycle frees the worker's memory and the batch retries
                # after backoff. (Any other relayed exception is
                # deterministic and propagates: a sequential run would
                # raise it on the same state.)
                self._recover(links, link, error, context, generator,
                              snapshot, codec, stats)
                continue
            head.results = decoded
            link.pending.popleft()
        return batch.results

    def _recover(self, links: List[_WorkerLink], link: _WorkerLink,
                 error: BaseException, context,
                 generator: SuccessorGenerator, snapshot: Optional[list],
                 codec: Optional[WireCodec], stats) -> None:
        """Recycle a failed link and redispatch everything it owed.

        The replacement process replays the run's original codec snapshot
        (shared vocabulary) behind a fresh symmetric session, and never
        inherits a fault schedule. Lost batches re-encode on whichever
        link the router picks — token-or-full encoding makes any session
        valid — with retry accounting and exponential backoff charged to
        the batch that was actually being expanded when the link failed
        (its collateral queue-mates redispatch for free).
        """
        recovery_started = time.perf_counter()
        lost = list(link.pending)
        link.pending.clear()
        link.shutdown(graceful=False)
        replacement = _WorkerLink(
            context, generator, snapshot, codec, link.index, None)
        replacement.start_sender()
        links[link.index] = replacement
        stats.parallel["crashes"] += 1
        stats.parallel["respawns"] += 1
        try:
            if lost:
                head = lost[0]
                head.retries += 1
                if head.retries > self.retry_limit:
                    raise WorkerCrashError(
                        f"batch exhausted its retry budget "
                        f"({self.retry_limit}) after worker {link.index} "
                        f"failed: {error}",
                        worker=link.index, reason="retries-exhausted",
                        exitcode=link.process.exitcode,
                        batches_lost=len(lost)) from error
                backoff = self.retry_backoff * (2 ** (head.retries - 1))
                if backoff:
                    time.sleep(backoff)
                for lost_batch in lost:
                    self._dispatch(
                        lost_batch,
                        self._route(links, lost_batch.expandable), stats)
                    stats.parallel["redispatches"] += 1
        finally:
            stats.parallel["recovery_sec"] += \
                time.perf_counter() - recovery_started

    @staticmethod
    def _route(links: List[_WorkerLink], expandable: List[State]
               ) -> _WorkerLink:
        """Pick the worker for a batch: load first, affinity second.

        Affinity (a state travels as a token to a worker that already
        knows it) must never override load balance: in a fresh run every
        state is first known only to the worker that produced it, so
        affinity-first routing would transitively pin the whole
        exploration to one process. Instead the batch goes to the
        highest-affinity link *among the least-loaded ones*.
        """
        if len(links) == 1:
            return links[0]
        least = min(len(link.pending) for link in links)
        best = None
        best_score = -1
        for link in links:
            if len(link.pending) > least:
                continue
            if link.session is not None:
                knows = link.session.knows
                score = sum(1 for state in expandable if knows(state))
            else:
                score = 0
            if score > best_score:
                best = link
                best_score = score
        return best
