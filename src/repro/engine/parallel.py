"""Parallel sharded state-space exploration.

:class:`ParallelExplorer` distributes the *expansion* work of the frontier
loop — ``generator.successors(state)``, the expensive part: FOL evaluation,
``DO()``, commitment enumeration, constraint checks — across a
``multiprocessing`` worker pool, while the coordinator keeps sole ownership
of everything order-sensitive: state interning (``successor not in ts``),
edge insertion, growth accounting, budgets, truncation marking, and the
observer hook.

Determinism contract
--------------------
The constructed transition system is **bit-identical** to a sequential
:class:`repro.engine.Explorer` run with the same configuration, for any
worker count:

* work items are popped from the frontier in exactly the sequential BFS
  order and dispatched as batches; results are *applied* strictly in the
  order the items were popped, so interning, edge, growth-trace, and
  observer events replay the sequential interleaving verbatim;
* workers never intern — they only expand, and the supported generators
  (``parallel_safe = True``) yield successors in an order that depends
  only on the state (all orderings are repr/``value_sort_key`` based,
  never hash-order, so per-process ``PYTHONHASHSEED`` cannot leak in);
* a budget or early-stop event mid-batch discards the not-yet-applied
  results of that batch and of every in-flight batch — speculative worker
  results never leak un-interned states into the transition system.

RCYCL is deliberately excluded: its used-value candidate pool makes every
expansion depend on the global discovery order, which is inherently
sequential (``RcyclGenerator.parallel_safe`` is ``False``).

Transport
---------
Each worker is a dedicated process with its own duplex pipe, so traffic per
worker is FIFO — the property the wire codec's token protocol
(:class:`repro.engine.wire.WireSession`) is built on: both pipe ends
register states in the same event order and afterwards refer to them by
small integer tokens instead of re-encoding. Batches are routed to the
worker that already knows most of their states (affinity), which makes the
common dispatch a stream of tokens. Generators without a DCDS kernel fall
back to shipping pickled state/successor lists over the same links.

The ``fork`` start method is preferred where available (workers inherit the
warmed kernel interners and ``lru_cache`` memo tables for free) with
``spawn`` supported elsewhere — which is why the relational layer's
``__reduce__`` implementations must drop per-process cached hashes and the
kernel construction order is deterministic (snapshot replay).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import threading
import time
from collections import deque
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import ReproError
from repro.engine.explorer import (
    BudgetError, ExplorationResult, Explorer, SuccessorGenerator,
    _default_budget_error)
from repro.engine.wire import WireCodec, WireSession, make_codec
from repro.relational.instance import Instance
from repro.relational.kernel import kernel_for
from repro.relational.schema import DatabaseSchema
from repro.semantics.transition_system import State


def _worker_codec(generator: SuccessorGenerator,
                  snapshot: Optional[list]) -> Optional[WireCodec]:
    if snapshot is None:
        return None
    kernel = kernel_for(generator.dcds)
    if kernel is None:
        return None
    # Fork: the inherited table *is* the snapshot (replay verifies).
    # Spawn: the freshly built kernel interned the deterministic
    # constructor prefix; replay appends the coordinator's
    # exploration-time codes in order, asserting alignment.
    kernel.table.replay(snapshot)
    return WireCodec(kernel, len(snapshot))


def _worker_main(conn, generator: SuccessorGenerator,
                 snapshot: Optional[list]) -> None:
    """Worker loop: receive a batch payload, expand, reply; ``None`` exits.

    Exceptions are relayed to the coordinator (tagged ``"exc"``) instead of
    killing the link silently.
    """
    codec = _worker_codec(generator, snapshot)
    session = WireSession(codec) if codec is not None else None
    while True:
        payload = conn.recv()
        if payload is None:
            return
        try:
            if session is not None:
                states, parents = session.decode_dispatch(payload)
                # Batched grounding: the whole dispatch block is warmed in
                # one columnar pass, like the sequential batch driver.
                results = generator.successors_batch(states)
                reply = session.encode_results(parents, results)
            else:
                states = pickle.loads(payload)
                reply = pickle.dumps(
                    generator.successors_batch(states),
                    pickle.HIGHEST_PROTOCOL)
            conn.send(("ok", reply))
        except BaseException as error:  # relayed, not swallowed
            try:
                conn.send(("exc", error))
            except Exception:
                # Unpicklable exception: relay a picklable stand-in so
                # the coordinator sees the message, not a dead pipe.
                conn.send(("exc", ReproError(
                    f"worker failed with unpicklable "
                    f"{type(error).__name__}: {error}")))


class _WorkerLink:
    """One dedicated worker process and its coordinator-side session.

    Dispatches go through a per-link sender thread, so the coordinator
    never blocks in ``conn.send`` — without it, a worker stuck sending a
    large reply (pipe buffer full, coordinator not reading yet) and a
    coordinator stuck sending the next large dispatch would deadlock.
    Every worker process is started before any sender thread exists (see
    ``start_links``): forking with live threads risks inheriting held
    locks.
    """

    __slots__ = ("process", "conn", "session", "inflight", "_outbox",
                 "_sender")

    def __init__(self, context, generator: SuccessorGenerator,
                 snapshot: Optional[list], codec: Optional[WireCodec]):
        self.conn, child_conn = context.Pipe(duplex=True)
        self.process = context.Process(
            target=_worker_main, args=(child_conn, generator, snapshot),
            daemon=True)
        self.process.start()
        child_conn.close()
        self.session = WireSession(codec) if codec is not None else None
        self.inflight = 0
        self._outbox: "queue.Queue" = queue.Queue()
        self._sender: Optional[threading.Thread] = None

    def start_sender(self) -> None:
        self._sender = threading.Thread(target=self._send_loop, daemon=True)
        self._sender.start()

    def _send_loop(self) -> None:
        while True:
            payload = self._outbox.get()
            try:
                # ``None`` is forwarded: it is the worker's exit sentinel.
                self.conn.send(payload)
            except (BrokenPipeError, OSError):
                return  # worker gone; receive() surfaces the EOF
            if payload is None:
                return

    def send(self, payload) -> None:
        self.inflight += 1
        self._outbox.put(payload)

    def receive(self):
        tag, payload = self.conn.recv()
        self.inflight -= 1
        if tag == "exc":
            raise payload
        return payload

    def shutdown(self) -> None:
        # Graceful first: the exit sentinel travels through the sender
        # thread (the pipe is never written from two threads). A worker
        # blocked mid-send (discarded in-flight replies) will not read it,
        # so terminate() is the backstop — killing the process breaks the
        # pipe, which also unblocks a sender thread stuck in send().
        self._outbox.put(None)
        self.process.join(timeout=1.0)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join()
        if self._sender is not None:
            self._sender.join(timeout=1.0)
        self.conn.close()


def _start_links(context, workers: int, generator: SuccessorGenerator,
                 snapshot: Optional[list], codec: Optional[WireCodec]
                 ) -> List[_WorkerLink]:
    """Fork/spawn every worker first, then start the sender threads."""
    links = [_WorkerLink(context, generator, snapshot, codec)
             for _ in range(workers)]
    for link in links:
        link.start_sender()
    return links


def make_explorer(schema: DatabaseSchema, workers: Optional[int] = None,
                  batch_size: int = 16, **kwargs: Any) -> Explorer:
    """The one ``workers=``-dispatch point for the builder entry points.

    ``workers=None`` (the default everywhere) is the sequential
    :class:`Explorer`; an explicit count is a sharded
    :class:`ParallelExplorer`. ``kwargs`` are the shared :class:`Explorer`
    configuration (name, budgets, observer, ...).
    """
    if workers is None:
        return Explorer(schema, **kwargs)
    return ParallelExplorer(
        schema, workers=workers, batch_size=batch_size, **kwargs)


def default_workers() -> int:
    """Worker-count default: the CPUs this process may run on."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


class ParallelExplorer(Explorer):
    """A drop-in :class:`Explorer` whose expansions run on a worker pool.

    Parameters beyond :class:`Explorer` (strategy is fixed to the paper's
    BFS order — sharding a DFS frontier would reorder discoveries):

    workers:
        Pool size (default: :func:`default_workers`). ``workers=1``
        short-circuits to the shared sequential apply loop in-process —
        one worker cannot overlap with the coordinator, so a subprocess
        round trip is pure overhead (measured 0.61–0.91x in PR 4). The
        run records ``codec="inline"`` with zero IPC bytes; the dispatch
        machinery itself is pinned by the differential harness at
        ``workers>=2``.
    batch_size:
        Work items per dispatched batch. Batches amortize IPC: each round
        trip ships ``batch_size`` states out and their successor lists back.
    max_inflight:
        Dispatch window (default ``2 * workers`` batches) — how far the
        coordinator runs ahead of the oldest unapplied batch. Bounds both
        memory and the speculative work discarded on budget/early-stop.
    start_method:
        ``multiprocessing`` start method (default: ``fork`` when available).
    """

    def __init__(
        self,
        schema: DatabaseSchema,
        name: str = "",
        max_states: Optional[int] = None,
        max_depth: Optional[int] = None,
        on_budget: str = "raise",
        budget_error: BudgetError = _default_budget_error,
        observer: Optional[
            Callable[[State, Instance], Optional[str]]] = None,
        workers: Optional[int] = None,
        batch_size: int = 16,
        max_inflight: Optional[int] = None,
        start_method: Optional[str] = None,
    ):
        super().__init__(
            schema, name=name, max_states=max_states, max_depth=max_depth,
            on_budget=on_budget, budget_error=budget_error, strategy="bfs",
            observer=observer)
        if workers is not None and workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        if batch_size < 1:
            raise ReproError(f"batch_size must be >= 1, got {batch_size}")
        if max_inflight is not None and max_inflight < 1:
            raise ReproError(
                f"max_inflight must be >= 1, got {max_inflight}")
        self.workers = workers if workers is not None else default_workers()
        self.batch_size = batch_size
        self.max_inflight = max_inflight if max_inflight is not None \
            else 2 * self.workers
        if start_method is None:
            start_method = "fork" \
                if "fork" in multiprocessing.get_all_start_methods() \
                else None
        self.start_method = start_method

    def _initial_parallel_stats(self, codec: str) -> dict:
        """One schema for the pool counters, whatever the transport —
        consumers read abstraction_stats["parallel"] keys uniformly."""
        return {
            "workers": self.workers,
            "batch_size": self.batch_size,
            "batches": 0,
            "speculative_states_discarded": 0,
            "codec": codec,
            "states_shipped": 0,
            "ipc_bytes_sent": 0,
            "ipc_bytes_received": 0,
            "coordinator_decode_sec": 0.0,
            "coordinator_apply_sec": 0.0,
        }

    # -- the sharded frontier loop ------------------------------------------

    def run(self, generator: SuccessorGenerator) -> ExplorationResult:
        if not getattr(generator, "parallel_safe", False):
            raise ReproError(
                f"{type(generator).__name__} is not parallel-safe "
                f"(order-dependent expansion state); use the sequential "
                f"Explorer")
        if self.workers == 1:
            # A single worker cannot overlap with the coordinator, so the
            # pipe round trip is pure overhead: run the shared sequential
            # apply loop in-process — same interning/edge/growth/observer
            # order by construction — and record an inline transport.
            self.stats.parallel = self._initial_parallel_stats("inline")
            return super().run(generator)
        started = time.perf_counter()
        ts, frontier = self._start(generator)
        stats = self.stats
        stats.parallel = self._initial_parallel_stats("pickle")
        budget_hit = False

        context = multiprocessing.get_context(self.start_method)
        links: List[_WorkerLink] = []  # started lazily: an early-stopped
        # or depth-zero run (e.g. an on-the-fly witness on the initial
        # state) never pays worker startup.
        codec = None  # built with the links: its table snapshot is taken
        # at fork/spawn time, so snapshot codes are shared vocabulary.
        # In-flight batches, oldest first: (entries, link, parents) where
        # entries is the popped ``(state, depth, expand)`` prefix of the
        # sequential frontier, link is the worker expanding its expandable
        # states (None for all-truncated batches), and parents is the
        # session's dispatch context (None on the legacy pickle path).
        in_flight: deque = deque()
        inflight_entries = 0  # popped but not yet applied, across batches
        try:
            while (frontier or in_flight) and not budget_hit \
                    and stats.early_stop is None:
                while frontier and len(in_flight) < self.max_inflight:
                    entries: List[Tuple[State, int, bool]] = []
                    expandable: List[State] = []
                    while frontier and len(entries) < self.batch_size:
                        state, depth = frontier.popleft()
                        # The depth cut is decided here (it only needs the
                        # pop-time depth) but *marked* at apply time, so
                        # truncation marks land in sequential order.
                        expand = self.max_depth is None \
                            or depth < self.max_depth
                        entries.append((state, depth, expand))
                        if expand:
                            expandable.append(state)
                    link = None
                    parents = None
                    if expandable:
                        if not links:
                            codec = make_codec(generator)
                            snapshot = codec.snapshot() \
                                if codec is not None else None
                            if codec is not None:
                                stats.parallel["codec"] = "wire"
                            links = _start_links(
                                context, self.workers, generator,
                                snapshot, codec)
                        link = self._route(links, expandable)
                        if link.session is not None:
                            payload, parents = \
                                link.session.encode_dispatch(expandable)
                        else:
                            payload = pickle.dumps(
                                expandable, pickle.HIGHEST_PROTOCOL)
                        stats.parallel["ipc_bytes_sent"] += len(payload)
                        link.send(payload)
                        stats.parallel["states_shipped"] += len(expandable)
                    in_flight.append((entries, link, parents))
                    inflight_entries += len(entries)
                    stats.parallel["batches"] += 1

                entries, link, parents = in_flight.popleft()
                if link is None:
                    results = []
                else:
                    payload = link.receive()
                    stats.parallel["ipc_bytes_received"] += len(payload)
                    decode_started = time.perf_counter()
                    if parents is not None:
                        results = link.session.decode_results(
                            payload, parents)
                    else:
                        results = pickle.loads(payload)
                    stats.parallel["coordinator_decode_sec"] += \
                        time.perf_counter() - decode_started
                apply_started = time.perf_counter()
                results_iter = iter(results)
                for position, (state, depth, expand) in enumerate(entries):
                    inflight_entries -= 1
                    if not expand:
                        ts.mark_truncated(state)
                        continue
                    successors = next(results_iter)
                    stats.expansions += 1
                    # ``pending=inflight_entries``: every popped-but-unapplied
                    # item beyond this one still counts toward what the
                    # sequential frontier length would be at each append.
                    budget_hit = self._apply_successors(
                        generator, ts, frontier, state, depth, successors,
                        pending=inflight_entries)
                    if budget_hit or stats.early_stop is not None:
                        # Re-queue the unapplied tail of this batch so the
                        # epilogue treats it as frontier (exactly the states
                        # a sequential run would still have queued). Their
                        # computed successor lists are discarded unseen.
                        tail = entries[position + 1:]
                        inflight_entries -= len(tail)
                        stats.parallel["speculative_states_discarded"] += \
                            sum(1 for _, _, expand in tail if expand)
                        frontier.extendleft(
                            (state, depth)
                            for state, depth, _ in reversed(tail))
                        break
                stats.parallel["coordinator_apply_sec"] += \
                    time.perf_counter() - apply_started
                if budget_hit or stats.early_stop is not None:
                    while in_flight:
                        tail_entries, _, _ = in_flight.popleft()
                        inflight_entries -= len(tail_entries)
                        stats.parallel["speculative_states_discarded"] += \
                            sum(1 for _, _, expand in tail_entries if expand)
                        frontier.extend((state, depth)
                                        for state, depth, _ in tail_entries)
        finally:
            for link in links:
                link.shutdown()

        return self._finish(ts, frontier, budget_hit, started)

    @staticmethod
    def _route(links: List[_WorkerLink], expandable: List[State]
               ) -> _WorkerLink:
        """Pick the worker for a batch: load first, affinity second.

        Affinity (a state travels as a token to a worker that already
        knows it) must never override load balance: in a fresh run every
        state is first known only to the worker that produced it, so
        affinity-first routing would transitively pin the whole
        exploration to one process. Instead the batch goes to the
        highest-affinity link *among the least-loaded ones*.
        """
        if len(links) == 1:
            return links[0]
        least = min(link.inflight for link in links)
        best = None
        best_score = -1
        for link in links:
            if link.inflight > least:
                continue
            if link.session is not None:
                knows = link.session.knows
                score = sum(1 for state in expandable if knows(state))
            else:
                score = 0
            if score > best_score:
                best = link
                best_score = score
        return best
