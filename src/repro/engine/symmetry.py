"""Symmetry reduction: quotient-by-construction state spaces (Lemma C.2).

The paper's Lemma C.2 makes runs invariant under isomorphisms that fix
``ADOM(I0)``: the abstract transition systems only matter up to renaming of
non-initial values. PRs 1–4 still explored the full concrete space and
quotiented *post hoc* (:mod:`repro.semantics.quotient`). This module folds
the quotient into exploration itself — the standard symmetry-reduction move
of explicit-state model checking:

:class:`SymmetryReducer` wraps a pure (``parallel_safe``) successor
generator and maps **every successor to the canonical representative of its
isomorphism class** before the explorer sees it. Canonical class
representatives thereby become the identity of states end to end:

* the :class:`~repro.engine.explorer.Explorer` frontier dedups by state
  equality, which now *is* canonical-key equality — isomorphic successors
  merge before they are expanded;
* isomorphic successor candidates of one expansion (e.g. equality
  commitments differing only in value names) are pruned at generation time,
  inside the reducer, before they reach the frontier — or, in a sharded
  build, before they reach the wire;
* :class:`~repro.engine.parallel.ParallelExplorer` workers run the reducer
  in-process, so the wire codec (:mod:`repro.engine.wire`) ships canonical
  representatives: worker and coordinator agree on class identity without
  the coordinator ever re-canonicalizing (canonical labeling compares sort
  keys and invariant colour ranks, never process-local code numbers).

Canonicalization runs on the integer-coded kernel
(:meth:`repro.relational.kernel.RelationalKernel.canonical_renaming`,
memoized per kernel) with the object-level
:func:`~repro.relational.isomorphism.state_canonical_renaming` as the
reference fallback (kernel disabled, or uncoded state structure — both
isomorphism-invariant conditions, so every member of a class takes the
same path and classes never split).

What may be renamed — the two counterexamples
---------------------------------------------
µLP observes the *persistence* of individual values across transitions,
which constrains a sound quotient twice over:

1. **Plain-instance states admit no sound quotient** (``quotient_safe``
   gates them out). With pool ``{v, w}``, the exact system has
   ``{R(v)} -> {R(v)}`` ("the value persists") and ``{R(v)} -> {R(w)}``
   ("the value is replaced by an isomorphic twin"). Merging the
   isomorphic states ``{R(v)}``/``{R(w)}`` conflates those two
   transitions into one self-loop, and the µLP formula ``E x. live(x) &
   R(x) & [-](live(x) & R(x))`` — "some live value survives every move" —
   becomes true in the quotient while false in the exact system. Value
   symmetry for nondeterministic services is instead what RCYCL's
   *recycling* already provides (a pruning that keeps one spare value to
   express "replaced", rather than a quotient). The post-hoc quotient of
   :mod:`repro.semantics.quotient` remains available for *comparing* two
   constructions' quotients, where both sides conflate identically.

2. **Live values are never renamed, even in ``<I, M>`` states.** A
   successor's canonicalization that may touch ``ADOM(I)`` can hand a live
   value's name to a *different* value (the canonical order shifts with
   the structure), manufacturing persistence between unrelated values
   across the quotient edge. Canonicalization therefore renames exactly
   the **dead history** — call-map values outside ``ADOM(I)`` and the
   known constants. The representative keeps its members' database
   verbatim, every quotient edge is a genuine transition of the exact
   semantics, and the relation "state ↔ its dead-canonicalized twin"
   (identity on all live values) is a persistence-preserving bisimulation
   by construction. Dead values may still resurrect (a deterministic call
   re-issued returns its recorded result): the renamed call map answers
   with the renamed value, consistently.

Merging therefore collapses states that differ only in how their dead
history is named — e.g. the histories left behind by different
interleavings of independent actions, or dead stamp receipts cycling
through a pool — which is exactly the state blow-up Lemma C.2 calls
irrelevant.

The quotient-mode transition system is persistence-preserving bisimilar to
the exact one (checked by ``tests/test_symmetry.py`` with
:mod:`repro.bisim.core` on the gallery and seeded ``random_dcds`` sweeps),
so it verifies exactly the µLP properties — :func:`repro.pipeline.verify`
enforces that adequacy gate. RCYCL stays excluded (its used-value pool is
discovery-order dependent), exactly as it is excluded from sharding.

Mode selection: ``symmetry="quotient"`` is opt-in per call (default
``"exact"``); ``REPRO_SYMMETRY`` sets the process default and
``REPRO_NO_SYMMETRY=1`` is the kill switch that forces ``"exact"``
everywhere (mirroring ``REPRO_NO_KERNEL``).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro import env
from repro.engine.explorer import SuccessorGenerator
from repro.engine.generators import DetState, Successor, sorted_call_map
from repro.errors import ReproError
from repro.relational.instance import Instance
from repro.relational.isomorphism import state_canonical_renaming
from repro.relational.kernel import kernel_for
from repro.semantics.transition_system import State
from repro.utils import sorted_values

#: The exploration symmetry modes.
SYMMETRY_MODES = ("exact", "quotient")


def resolve_symmetry(symmetry: Optional[str] = None) -> str:
    """Resolve a ``symmetry=`` argument against the environment.

    ``None`` falls back to ``REPRO_SYMMETRY`` (default ``"exact"``);
    ``REPRO_NO_SYMMETRY=1`` is the kill switch forcing ``"exact"`` no
    matter what was requested.
    """
    if symmetry is None:
        symmetry = env.symmetry_default()
    if symmetry not in SYMMETRY_MODES:
        raise ReproError(
            f"unknown symmetry mode {symmetry!r}; expected one of "
            f"{SYMMETRY_MODES}")
    if symmetry == "quotient" and env.symmetry_disabled():
        return "exact"
    return symmetry


class SymmetryReducer(SuccessorGenerator):
    """Wraps a history-carrying generator; successors become class reps.

    States are :class:`~repro.engine.generators.DetState` pairs ``<I, M>``,
    canonicalized *jointly* over the coded ``<I, M>`` structure but
    renaming only the **dead history** — call-map values outside
    ``ADOM(I)`` and ``dcds.known_constants()`` (see the module docstring
    for why live values must stay put). Dead values get
    ``Fresh(0), Fresh(1), ...`` — or, for finite-pool generators, the
    canonically smallest free pool names (``symmetry_values``), keeping
    representatives inside the value universe the semantics draws from.

    The reducer is itself ``parallel_safe``: canonicalization is a pure,
    process-independent function of the state, so worker-side and
    coordinator-side representatives coincide. Pickling ships only the
    inner generator; per-process memos rebuild empty.
    """

    def __init__(self, inner: SuccessorGenerator):
        if not getattr(inner, "parallel_safe", False):
            raise ReproError(
                f"{type(inner).__name__} is not a pure successor generator; "
                f"symmetry reduction needs expansions that are functions of "
                f"the state alone (RCYCL's used-value pool is discovery-"
                f"order dependent and stays excluded, like in sharding)")
        if not getattr(inner, "quotient_safe", False):
            raise ReproError(
                f"{type(inner).__name__} states do not carry their value "
                f"history, so merging isomorphic states would conflate "
                f"value-persists with value-replaced transitions and break "
                f"µLP (see repro.engine.symmetry); quotient mode supports "
                f"the history-carrying <I, M> generators only")
        self.inner = inner
        self.dcds = inner.dcds
        self.parallel_safe = True
        self.fixed: FrozenSet[Any] = frozenset(self.dcds.known_constants())
        # Closed-universe (finite-pool) generators must keep canonical
        # representatives inside their pool: names are the sorted movable
        # pool values, permuted canonically. Open generators mint
        # Fresh(0), Fresh(1), ... instead.
        universe = getattr(inner, "symmetry_values", None)
        self.names: Optional[tuple] = None if universe is None else tuple(
            sorted_values(set(universe) - self.fixed))
        self._rep_memo: Dict[State, State] = {}
        self.stats: Dict[str, int] = {
            "canonicalizations": 0,
            "identity_states": 0,
            "object_fallbacks": 0,
            "pruned_successors": 0,
        }

    def __reduce__(self):
        # Workers rebuild memos from scratch; canonicalization is
        # deterministic, so worker- and coordinator-side representatives
        # agree without shipping any cache.
        return SymmetryReducer, (self.inner,)

    def attach_memory_budget(self, budget) -> None:
        """Storage-layer hook: the per-state representative memo joins the
        budget's ``interner`` account. Safe to evict — canonicalization is
        a pure function of the state, so a miss recomputes the identical
        representative. ``budget=None`` detaches."""
        from repro.engine.store import BudgetedDict
        if budget is None:
            if isinstance(self._rep_memo, BudgetedDict):
                self._rep_memo = self._rep_memo.unwrap()
            return
        if not isinstance(self._rep_memo, BudgetedDict):
            self._rep_memo = BudgetedDict(
                budget, "interner", data=self._rep_memo)

    # -- the canonical representative ----------------------------------------

    def representative(self, state: State) -> State:
        """The canonical representative of ``state``'s isomorphism class."""
        found = self._rep_memo.get(state)
        if found is not None:
            return found
        if isinstance(state, DetState):
            instance, call_map = state.instance, state.call_map
        else:  # the initial state before any call was made
            instance, call_map = state, ()
        kernel = kernel_for(self.dcds)
        renaming = None
        if kernel is not None:
            renaming = kernel.canonical_renaming(
                instance, call_map, self.names)
        if renaming is None:
            self.stats["object_fallbacks"] += 1
            renaming = state_canonical_renaming(
                instance, call_map, self.fixed, self.names)
        self.stats["canonicalizations"] += 1
        if all(old == new for old, new in renaming.items()):
            rep = state
            self.stats["identity_states"] += 1
        else:
            # Dead-history renamings never touch ADOM(I), so the database
            # carries over verbatim — non-identity renamings only arise
            # from the call map, i.e. on DetStates.
            renamed_map = {
                call.substitute(renaming): renaming.get(value, value)
                for call, value in call_map}
            rep = DetState(instance, sorted_call_map(renamed_map))
        self._rep_memo[state] = rep
        # Canonicalization is idempotent: the representative is its own
        # class representative.
        self._rep_memo.setdefault(rep, rep)
        return rep

    @staticmethod
    def _db_of(state: State) -> Instance:
        return state.instance if isinstance(state, DetState) else state

    # -- SuccessorGenerator protocol -----------------------------------------

    def initial_state(self) -> Tuple[State, Instance]:
        state, _ = self.inner.initial_state()
        rep = self.representative(state)
        return rep, self._db_of(rep)

    def successors(self, state: State) -> Iterator[Successor]:
        return self._reduce(self.inner.successors(state))

    def successors_batch(self, states: List[State]
                         ) -> List[List[Successor]]:
        # The inner generator warms its kernel memos for the whole block;
        # reduction stays per successor (canonicalization is memoized).
        return [list(self._reduce(stream))
                for stream in self.inner.successors_batch(states)]

    def _reduce(self, stream: Iterator[Successor]) -> Iterator[Successor]:
        seen = set()
        for successor, _, label in stream:
            rep = self.representative(successor)
            key = (rep, label)
            if key in seen:
                # Isomorphic successor candidates (e.g. commitments
                # differing only in value names) merge at generation time.
                self.stats["pruned_successors"] += 1
                continue
            seen.add(key)
            yield rep, self._db_of(rep), label

    def on_new_state(self, state: State, instance: Instance) -> None:
        self.inner.on_new_state(state, instance)

    def stats_dict(self) -> Dict[str, int]:
        """Per-process reduction counters (coordinator-side in a sharded
        build — worker-side canonicalizations happen in their processes)."""
        return {**self.stats, "classes": len(set(self._rep_memo.values()))}


def reduced(generator: SuccessorGenerator, symmetry: str
            ) -> SuccessorGenerator:
    """Wrap ``generator`` for the resolved ``symmetry`` mode."""
    if symmetry == "quotient":
        return SymmetryReducer(generator)
    return generator


def attach_symmetry_stats(generator: SuccessorGenerator, ts) -> None:
    """Record the reducer's counters on a built transition system."""
    if isinstance(generator, SymmetryReducer):
        ts.exploration_stats["symmetry"] = generator.stats_dict()
