"""Unified state-space exploration engine (the shared core of Table 1).

All four state-space builders — the deterministic abstraction
(:func:`repro.semantics.build_det_abstraction`), Algorithm RCYCL
(:func:`repro.semantics.rcycl`), the finite-pool concrete exploration
(:func:`repro.semantics.explore_concrete`), and oracle-driven runs
(:func:`repro.semantics.simulate`) — delegate their frontier loop to
:class:`Explorer`, parameterized by a :class:`SuccessorGenerator`.
"""

from repro.engine.explorer import (
    ExplorationBudgetExceeded, ExplorationResult, ExplorationStats, Explorer,
    SuccessorGenerator)
from repro.engine.parallel import (
    ParallelExplorer, default_workers, make_explorer)
from repro.engine.checkpoint import (
    Checkpoint, CheckpointInterrupted, CheckpointWriter, load_checkpoint)
from repro.engine.faults import FaultEvent, FaultPlan
from repro.engine.wire import WireCodec, WireSession, make_codec
from repro.engine.fingerprint import (
    fingerprints_may_be_isomorphic, instance_fingerprint, value_profiles)
from repro.engine.generators import (
    DetAbstractionGenerator, DetState, OracleRunGenerator, PoolDetGenerator,
    PoolNondetGenerator, RcyclGenerator, sigma_label, sorted_call_map)
from repro.engine.interning import InternEntry, InternStats, StateInterner
from repro.engine.store import (
    BudgetedDict, MemoryBudget, PagedStore, RamStore, StateCodec,
    StateStore, StoredTransitionSystem, resolve_memory_budget)
from repro.engine.symmetry import (
    SYMMETRY_MODES, SymmetryReducer, resolve_symmetry)

__all__ = [
    "BudgetedDict", "Checkpoint", "CheckpointInterrupted",
    "CheckpointWriter", "DetAbstractionGenerator", "DetState",
    "ExplorationBudgetExceeded", "ExplorationResult", "ExplorationStats",
    "Explorer", "FaultEvent", "FaultPlan", "InternEntry", "InternStats",
    "MemoryBudget", "OracleRunGenerator", "PagedStore", "ParallelExplorer",
    "PoolDetGenerator", "PoolNondetGenerator", "RamStore",
    "RcyclGenerator", "SYMMETRY_MODES", "StateCodec", "StateInterner",
    "StateStore", "StoredTransitionSystem", "SymmetryReducer", "WireCodec",
    "WireSession", "default_workers", "fingerprints_may_be_isomorphic",
    "instance_fingerprint", "load_checkpoint", "make_codec",
    "make_explorer", "resolve_memory_budget", "resolve_symmetry",
    "sigma_label", "sorted_call_map", "value_profiles",
]
