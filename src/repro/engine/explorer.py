"""The unified state-space exploration engine.

Every decidable route of the paper's Table 1 — the deterministic abstraction
of Theorems 4.3/4.4, Algorithm RCYCL of Theorem 5.4, and the concrete
pool/oracle validation runs — is a frontier-based construction of a
transition system. :class:`Explorer` owns that loop once: the frontier
(BFS by default, DFS on request), state interning, depth/state budgets,
truncation marking, and progress statistics. What varies between the routes
is only how successors of a state are produced, captured by the
:class:`SuccessorGenerator` protocol (implementations live in
:mod:`repro.engine.generators`).

Budget behaviour is pluggable: ``on_budget="raise"`` turns an exceeded
budget into an exception built by ``budget_error`` (the divergence fuse of
the deterministic abstraction), while ``on_budget="truncate"`` stops the
exploration, marks the unexpanded frontier as truncated, and reports
``diverged=True`` (RCYCL's graceful mode).
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any, Callable, Dict, Iterable, List, Optional, Tuple)

from repro import env
from repro.errors import AbstractionDiverged, CheckpointError, ReproError
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema
from repro.semantics.transition_system import State, TransitionSystem

#: Frontier entries popped per batched expansion round. Large enough that
#: a kernel-backed generator's block warm amortizes the per-plan columnar
#: setup across many sibling states; small enough that one block's
#: successor lists stay a modest working set.
BATCH_BLOCK = 64


class ExplorationBudgetExceeded(Exception):
    """Raised by a generator that exhausted its own budget (e.g. RCYCL's
    iteration fuse); the :class:`Explorer` converts it into its configured
    budget behaviour."""


class SuccessorGenerator:
    """Protocol for the pluggable successor semantics.

    Implementations yield ``(state, instance, label)`` triples from
    :meth:`successors`; the Explorer consumes them lazily and calls
    :meth:`on_new_state` the moment a previously unseen state is interned,
    so stateful generators (RCYCL's used-value pool) observe discoveries in
    exactly the order the seed algorithms did.

    ``parallel_safe`` declares that :meth:`successors` is a pure function of
    the state (no mutable cross-expansion state, picklable configuration,
    never raises :class:`ExplorationBudgetExceeded`), so expansions may be
    delegated to :class:`repro.engine.parallel.ParallelExplorer` workers.
    RCYCL is *not* parallel-safe — its used-value pool makes each expansion
    depend on the discovery order — and oracle runs are path-shaped, so
    there is nothing to shard.

    ``quotient_safe`` declares that the generator's states carry their full
    value history (the ``<I, M>`` call map), which is what makes merging
    isomorphic states persistence-preserving: the call map embeds every
    value ever seen, so a joint-state isomorphism is forced to thread
    consistently through all future moves. Plain-instance generators must
    stay ``False`` — without the history, a state quotient conflates
    "value persists" with "value is replaced by an isomorphic twin"
    transitions and breaks µLP (see :mod:`repro.engine.symmetry` for the
    two-line counterexample); value symmetry for nondeterministic services
    is what RCYCL's recycling already provides.

    ``symmetry_values`` declares the closed value universe the generator
    draws call results from (the finite-pool semantics), or ``None`` for
    open fresh-value minting. The symmetry layer
    (:class:`repro.engine.symmetry.SymmetryReducer`) must pick canonical
    names *inside* that universe: renaming a pool value to a fresh name
    would put the class representative outside the pool and change its
    successor set (e.g. lose the "call returns the value already present"
    self-loop).
    """

    parallel_safe = False
    quotient_safe = False
    symmetry_values: Optional[tuple] = None

    def initial_state(self) -> Tuple[State, Instance]:
        raise NotImplementedError

    def successors(self, state: State
                   ) -> Iterable[Tuple[State, Instance, Optional[str]]]:
        raise NotImplementedError

    def successors_batch(self, states: List[State]
                         ) -> List[List[Tuple[State, Instance,
                                              Optional[str]]]]:
        """Successor lists of a frontier block, in block order.

        The default is the per-state loop — identical to repeated
        :meth:`successors` calls by definition, so generators without a
        batched grounding path (RCYCL, oracle runs) are untouched.
        Kernel-backed generators override this to warm the kernel's
        rule/effect memos for the whole block in one columnar pass first
        (see :func:`repro.engine.generators.warm_frontier_block`); the
        per-state calls then replay from the warmed memos, keeping results
        bit-identical by construction.
        """
        return [list(self.successors(state)) for state in states]

    def on_new_state(self, state: State, instance: Instance) -> None:
        """Hook invoked once per newly discovered state (default: no-op)."""


@dataclass
class ExplorationStats:
    """Progress counters of one :meth:`Explorer.run`."""

    states: int = 0
    edges: int = 0
    expansions: int = 0
    frontier_peak: int = 0
    duration: float = 0.0
    growth: List[int] = field(default_factory=list)
    diverged: bool = False
    strategy: str = "bfs"
    intern: Dict[str, Any] = field(default_factory=dict)
    early_stop: Optional[str] = None
    #: Filled by :class:`repro.engine.parallel.ParallelExplorer` with worker
    #: pool counters (workers, batches, speculative waste).
    parallel: Dict[str, Any] = field(default_factory=dict)
    #: Filled by a memory-budgeted run with the paged store's counters
    #: (pages written/read, rehydrations, evictions, budget high water).
    store: Dict[str, Any] = field(default_factory=dict)

    @property
    def states_per_sec(self) -> float:
        return self.states / self.duration if self.duration > 0 else 0.0

    def as_dict(self) -> Dict[str, Any]:
        result = {
            "explored_states": self.states,
            "explored_edges": self.edges,
            "expansions": self.expansions,
            "frontier_peak": self.frontier_peak,
            "duration_sec": self.duration,
            "states_per_sec": self.states_per_sec,
            "growth_trace": tuple(self.growth),
            "diverged": self.diverged,
            "strategy": self.strategy,
        }
        if self.intern:
            result["intern"] = dict(self.intern)
        if self.early_stop is not None:
            result["early_stop"] = self.early_stop
        if self.parallel:
            result["parallel"] = dict(self.parallel)
        if self.store:
            result["store"] = dict(self.store)
        return result


@dataclass
class ExplorationResult:
    """A constructed transition system plus how its construction went."""

    transition_system: TransitionSystem
    stats: ExplorationStats

    @property
    def diverged(self) -> bool:
        return self.stats.diverged


BudgetError = Callable[["Explorer"], Exception]


def _default_budget_error(explorer: "Explorer") -> Exception:
    return AbstractionDiverged(
        f"exploration exceeded {explorer.max_states} states",
        growth_trace=tuple(explorer.stats.growth),
        partial_states=len(explorer.ts))


class Explorer:
    """Owns the frontier loop shared by all Table 1 constructions.

    Parameters
    ----------
    schema:
        Database schema the produced transition system is checked against.
    name:
        Name of the produced transition system.
    max_states:
        Divergence fuse; ``None`` disables it. The budget trips when the
        number of states *exceeds* ``max_states`` (seed convention).
    max_depth:
        Optional truncation bound: states at this depth are marked truncated
        and not expanded.
    on_budget:
        ``"raise"`` (raise ``budget_error(self)``) or ``"truncate"`` (stop,
        mark the remaining frontier truncated, report ``diverged``).
    budget_error:
        Exception factory used by ``on_budget="raise"``.
    strategy:
        ``"bfs"`` (paper order, default) or ``"dfs"``.
    observer:
        Optional ``(state, instance) -> Optional[str]`` hook, invoked once
        per discovered state (including the initial one). Returning a
        non-``None`` reason stops the exploration cleanly: the remaining
        frontier is marked truncated and the reason is recorded in
        ``stats.early_stop``. The on-the-fly verification route uses this to
        terminate on a witness or refutation. Contract relied on by the
        witness layer: a state is interned and its incoming edge recorded
        *before* the observer sees it (see ``_apply_successors``), so even
        an early-stopped partial transition system contains a full run from
        the initial state to the stopping state — and BFS discovery order
        makes that run minimal. ``tests/test_witness.py`` pins this.
    checkpoint:
        Optional crash-safe persistence: a filesystem path (or a
        :class:`repro.engine.checkpoint.Checkpoint` handle) where the
        run's progress is periodically written. When the path already
        holds a valid checkpoint for the same specification and
        configuration, :meth:`run` *resumes* from it instead of starting
        over, and the finished build is bit-identical to an undisturbed
        one. Only pure (``parallel_safe``) generators are checkpointed —
        for others (RCYCL's order-dependent pool) the option is ignored,
        exactly like ``workers=``. See :mod:`repro.engine.checkpoint`.
    """

    def __init__(
        self,
        schema: DatabaseSchema,
        name: str = "",
        max_states: Optional[int] = None,
        max_depth: Optional[int] = None,
        on_budget: str = "raise",
        budget_error: BudgetError = _default_budget_error,
        strategy: str = "bfs",
        observer: Optional[
            Callable[[State, Instance], Optional[str]]] = None,
        checkpoint=None,
        memory_budget: Optional[int] = None,
    ):
        if on_budget not in ("raise", "truncate"):
            raise ReproError(f"unknown budget behaviour {on_budget!r}")
        if strategy not in ("bfs", "dfs"):
            raise ReproError(f"unknown frontier strategy {strategy!r}")
        self.schema = schema
        self.name = name
        self.max_states = max_states
        self.max_depth = max_depth
        self.on_budget = on_budget
        self.budget_error = budget_error
        self.strategy = strategy
        self.observer = observer
        if checkpoint is not None:
            from repro.engine.checkpoint import Checkpoint
            checkpoint = Checkpoint.of(checkpoint)
        self.checkpoint = checkpoint
        self.memory_budget = memory_budget
        self._store = None
        self._memory_budget_account = None
        self._budget_detachers: List[Callable[[], None]] = []
        self._ckpt_writer = None
        self._ckpt_edges: Optional[List[Tuple[State, State,
                                              Optional[str]]]] = None
        self._restored_result: Optional[ExplorationResult] = None
        self.stats = ExplorationStats(strategy=strategy)
        self.ts: Optional[TransitionSystem] = None

    # -- the storage layer (out-of-core state store) ---------------------------

    def _setup_store(self, generator: SuccessorGenerator) -> None:
        """Switch this run to the paged state store when it qualifies.

        Store mode needs an effective ``memory_budget`` (explicit or the
        ``REPRO_MEMORY_BUDGET`` default, vetoed by ``REPRO_NO_SPILL``), the
        paper's BFS order (frontier ids reload in pop order and edge
        sources arrive contiguously only under BFS), a pure
        (``parallel_safe``) generator (rehydration re-expands states, so
        expansion must be a function of the state alone), and a relational
        kernel (the canonical frame codec is coded-term based). Anything
        else keeps today's in-RAM path, exactly as before. Must run before
        the checkpoint load: a store-format checkpoint adopts its frames
        into the (still empty) store.
        """
        if self._store is not None:
            return
        from repro.engine.store import (
            MemoryBudget, PagedStore, resolve_memory_budget)
        budget_bytes = resolve_memory_budget(self.memory_budget)
        if budget_bytes is None:
            return
        if self.strategy != "bfs" \
                or not getattr(generator, "parallel_safe", False):
            return
        from repro.relational.kernel import kernel_for
        dcds = getattr(generator, "dcds", None)
        kernel = kernel_for(dcds) if dcds is not None else None
        if kernel is None:
            return
        budget = MemoryBudget(budget_bytes)
        self._memory_budget_account = budget
        self._store = PagedStore(kernel, budget)
        kernel.attach_memo_budget(budget)
        self._budget_detachers.append(kernel.detach_memo_budget)
        attach = getattr(generator, "attach_memory_budget", None)
        if attach is not None:
            attach(budget)
            self._budget_detachers.append(lambda: attach(None))

    def _demote_store(self) -> None:
        """Abandon store mode (a checkpoint written by a plain run is
        being resumed): detach the budget hooks and drop the empty store —
        the run continues exactly as an unbudgeted one."""
        store = self._store
        self._detach_budget()
        self._store = None
        self._memory_budget_account = None
        if store is not None:
            store.close()

    def _detach_budget(self) -> None:
        """Undo the kernel/generator budget hooks (end of run; the store
        itself stays alive — the returned transition system rehydrates
        through it on demand)."""
        detachers, self._budget_detachers = self._budget_detachers, []
        for detach in detachers:
            detach()

    def _entry_state(self, entry) -> Tuple[State, int, Optional[int]]:
        """``(state, depth, state-id)`` of a frontier entry.

        Plain mode keys the frontier by live state objects (id ``None``);
        store mode by dense state ids, rehydrated here in pop order — the
        spilled cold tail reloads through the store's hot LRU.
        """
        key, depth = entry
        if self._store is not None:
            return self.ts.fetch(key), depth, key
        return key, depth, None

    def _mark_entry_truncated(self, ts: TransitionSystem, entry) -> None:
        if self._store is not None:
            ts.mark_truncated_id(entry[0])
        else:
            ts.mark_truncated(entry[0])

    def _note_store_frontier(self, frontier) -> None:
        """Record how much of the frontier is cold (on pages only)."""
        store = self._store
        if store is None:
            return
        hot = store._hot
        store.note_frontier_cold(
            sum(1 for key, _ in frontier if key not in hot))

    # -- the one frontier loop ------------------------------------------------

    def _start(self, generator: SuccessorGenerator
               ) -> Tuple[TransitionSystem, deque]:
        """Intern the initial state and seed the frontier/stats/observer.

        With ``checkpoint=`` configured (and a pure generator), this is
        also the resume point: a valid on-disk checkpoint restores the
        transition system, frontier, and counters instead of a fresh
        start, and a writer is (re)opened for the rest of the run.
        """
        self._setup_store(generator)
        checkpointing = self.checkpoint is not None \
            and getattr(generator, "parallel_safe", False)
        if checkpointing:
            prepared = self._start_from_checkpoint(generator)
            if prepared is not None:
                return prepared
        initial, initial_db = generator.initial_state()
        if self._store is not None:
            from repro.engine.store import StoredTransitionSystem
            ts = StoredTransitionSystem(
                self.schema, initial, self._store, name=self.name)
            self.ts = ts
            first_key, _ = ts.intern_state(initial, initial_db)
        else:
            ts = TransitionSystem(self.schema, initial, name=self.name)
            self.ts = ts
            ts.add_state(initial, initial_db)
            first_key = initial
        self.stats.growth = [1]
        self.stats.frontier_peak = 1
        if self.observer is not None:
            self.stats.early_stop = self.observer(initial, initial_db)
        if checkpointing:
            from repro.engine.checkpoint import CheckpointWriter
            self._ckpt_writer = CheckpointWriter(
                self.checkpoint, generator, self)
            self._ckpt_edges = []
        return ts, deque([(first_key, 0)])

    def _start_from_checkpoint(self, generator: SuccessorGenerator
                               ) -> Optional[Tuple[TransitionSystem,
                                                   deque]]:
        """Restore from ``self.checkpoint`` (``None`` when no file yet).

        The observer is replayed over the restored discovery order —
        supported observers are pure functions of the state, so this
        reconstructs on-the-fly verification state exactly. A *complete*
        checkpoint short-circuits: the stored result is handed back by
        ``run`` without re-entering the loop.
        """
        from repro.engine.checkpoint import CheckpointWriter, load_checkpoint
        restored = load_checkpoint(self.checkpoint, generator, self)
        if restored is None:
            return None
        ts = restored.ts
        if self._store is not None and getattr(ts, "store", None) \
                is not self._store:
            # The checkpoint was written by a plain (wire/pickle) run:
            # the loader rebuilt an in-RAM transition system, so this
            # resumed run continues unbudgeted rather than re-encoding
            # everything mid-flight.
            self._demote_store()
        self.ts = ts
        stats = self.stats
        stats.growth = list(restored.stats["growth"])
        stats.expansions = restored.stats["expansions"]
        stats.edges = restored.stats["edges"]
        stats.frontier_peak = restored.stats["frontier_peak"]
        if self.observer is not None:
            if restored.states:
                for state in restored.states:
                    self.observer(state, ts.db(state))
            else:
                # Store-format restore: stream the discovery order through
                # the bounded hot LRU instead of holding a full list.
                for position in range(restored.state_count):
                    state = ts.fetch(position)
                    self.observer(state, ts.db(state))
        if restored.complete:
            final = restored.final or {}
            stats.states = len(ts)
            stats.diverged = bool(final.get("diverged"))
            stats.early_stop = final.get("early_stop")
            stats.duration = final.get("duration", 0.0)
            self._restored_result = ExplorationResult(ts, stats)
            return ts, deque()
        self._ckpt_writer = CheckpointWriter(
            self.checkpoint, generator, self, restored=restored)
        self._ckpt_edges = []
        return ts, deque(restored.frontier)

    def _apply_successors(self, generator: SuccessorGenerator,
                          ts: TransitionSystem, frontier: deque,
                          state: State, depth: int, successors,
                          pending: int = 0,
                          sid: Optional[int] = None) -> bool:
        """Apply one state's successor list; return True on budget hit.

        The single place interning, edge insertion, growth accounting, the
        observer hook, and the state budget happen — shared by the
        sequential loop and the :class:`~repro.engine.parallel
        .ParallelExplorer` coordinator so the two cannot drift apart (the
        parallel determinism contract is enforced by construction here).
        ``pending`` is the number of popped-but-unapplied work items beyond
        this one (always 0 sequentially); adding it makes
        ``frontier_peak`` reflect the sequential frontier length.

        ``sid`` is the source's dense state id in store mode (``None``
        otherwise): interning then goes through the paged store and edges/
        frontier entries/truncation marks are id-level, in exactly the
        order the object-level branch would produce them — the storage
        layer's bit-identity is enforced here by construction too.
        """
        stats = self.stats
        ckpt_edges = self._ckpt_edges
        store_mode = sid is not None
        for successor, db, label in successors:
            if store_mode:
                target, is_new = ts.intern_state(successor, db)
                ts.add_edge_id(sid, target, label)
                edge_record = (sid, target, label)
                entry = (target, depth + 1)
            else:
                is_new = successor not in ts
                ts.add_state(successor, db)
                ts.add_edge(state, successor, label)
                edge_record = (state, successor, label)
                entry = (successor, depth + 1)
            if ckpt_edges is not None:
                ckpt_edges.append(edge_record)
            stats.edges += 1
            if not is_new:
                continue
            while len(stats.growth) <= depth + 1:
                stats.growth.append(0)
            stats.growth[depth + 1] += 1
            generator.on_new_state(successor, db)
            if self.observer is not None:
                stats.early_stop = self.observer(successor, db)
                if stats.early_stop is not None:
                    if store_mode:
                        ts.mark_truncated_id(sid)
                        ts.mark_truncated_id(target)
                    else:
                        ts.mark_truncated(state)
                        ts.mark_truncated(successor)
                    return False
            frontier.append(entry)
            effective = len(frontier) + pending
            if effective > stats.frontier_peak:
                stats.frontier_peak = effective
            if self.max_states is not None and len(ts) > self.max_states:
                return True
        return False

    def _finish(self, ts: TransitionSystem, frontier: deque,
                budget_hit: bool, started: float) -> ExplorationResult:
        """Shared run epilogue: budget/early-stop truncation and stats."""
        stats = self.stats
        stats.states = len(ts)
        stats.duration = time.perf_counter() - started
        if budget_hit:
            stats.diverged = True
            if self.on_budget == "raise":
                if self._ckpt_writer is not None:
                    # The divergence fuse is deterministic — resuming
                    # would trip it again — but the data written so far
                    # stays valid for inspection.
                    self._ckpt_writer.close()
                    self._ckpt_writer = None
                raise self.budget_error(self)
            for entry in frontier:
                self._mark_entry_truncated(ts, entry)
        elif stats.early_stop is not None:
            for entry in frontier:
                self._mark_entry_truncated(ts, entry)
        if self._store is not None:
            self._note_store_frontier(frontier)
            stats.store = self._store.stats_dict()
        ts.exploration_stats = stats.as_dict()
        if self._ckpt_writer is not None:
            self._ckpt_writer.finalize(ts, stats, self._ckpt_edges)
            self._ckpt_writer = None
            self._ckpt_edges = None
        return ExplorationResult(ts, stats)

    def run(self, generator: SuccessorGenerator) -> ExplorationResult:
        if self.strategy == "bfs" \
                and getattr(generator, "parallel_safe", False) \
                and not env.batch_disabled():
            return self._run_batched(generator)
        try:
            started = time.perf_counter()
            ts, frontier = self._start(generator)
            if self._restored_result is not None:
                return self._restored_result
            stats = self.stats
            budget_hit = False

            while frontier and stats.early_stop is None:
                if self.strategy == "bfs":
                    entry = frontier.popleft()
                else:
                    entry = frontier.pop()
                state, depth, sid = self._entry_state(entry)
                if self.max_depth is not None and depth >= self.max_depth:
                    self._mark_entry_truncated(ts, entry)
                    continue
                stats.expansions += 1
                try:
                    budget_hit = self._apply_successors(
                        generator, ts, frontier, state, depth,
                        generator.successors(state), sid=sid)
                except ExplorationBudgetExceeded:
                    budget_hit = True
                if budget_hit:
                    break
                if self._ckpt_writer is not None \
                        and stats.early_stop is None:
                    self._ckpt_writer.maybe_write(
                        ts, frontier, stats, self._ckpt_edges)

            return self._finish(ts, frontier, budget_hit, started)
        finally:
            self._detach_budget()

    def resume(self, generator: SuccessorGenerator) -> ExplorationResult:
        """Resume from the configured checkpoint, which must exist.

        :meth:`run` already auto-resumes when a valid checkpoint is on
        disk; this entry point is for callers that *require* prior
        progress — it raises :class:`~repro.errors.CheckpointError`
        instead of silently starting a fresh exploration when the
        checkpoint is missing.
        """
        if self.checkpoint is None:
            raise CheckpointError(
                "resume() needs a checkpoint= configured on the explorer")
        if not os.path.exists(self.checkpoint.manifest_path):
            raise CheckpointError(
                f"no checkpoint manifest at "
                f"{self.checkpoint.manifest_path}; nothing to resume")
        return self.run(generator)

    def _run_batched(self, generator: SuccessorGenerator
                     ) -> ExplorationResult:
        """The frontier-batched twin of the sequential BFS loop.

        Pops whole frontier blocks, expands them through
        :meth:`SuccessorGenerator.successors_batch` (one warmed columnar
        pass for kernel-backed generators), then applies the blocks'
        successor lists strictly in pop order through the same
        :meth:`_apply_successors` as the sequential loop — the
        ParallelExplorer apply contract, so interning, edges, growth,
        observer, and budget behaviour stay bit-identical. Expansion-
        worthiness is decided at pop time but ``max_depth`` truncation is
        marked (and ``expansions`` counted) at apply time; on a budget hit
        or observer early-stop the block's unapplied tail is re-queued so
        the epilogue marks it truncated exactly as it would the sequential
        frontier. Only pure (``parallel_safe``) generators take this path
        — expansion must be a function of the state alone for the
        block-ahead generation to commute with application.
        """
        try:
            started = time.perf_counter()
            ts, frontier = self._start(generator)
            if self._restored_result is not None:
                return self._restored_result
            stats = self.stats
            budget_hit = False

            while frontier and stats.early_stop is None and not budget_hit:
                self._note_store_frontier(frontier)
                block: List[Tuple[State, int, bool, Optional[int]]] = []
                while frontier and len(block) < BATCH_BLOCK:
                    entry = frontier.popleft()
                    state, depth, sid = self._entry_state(entry)
                    expand = self.max_depth is None \
                        or depth < self.max_depth
                    block.append((state, depth, expand, sid))
                results = deque(generator.successors_batch(
                    [state for state, _, expand, _ in block if expand]))
                for position, (state, depth, expand, sid) in enumerate(
                        block):
                    if not expand:
                        if sid is not None:
                            ts.mark_truncated_id(sid)
                        else:
                            ts.mark_truncated(state)
                        continue
                    stats.expansions += 1
                    budget_hit = self._apply_successors(
                        generator, ts, frontier, state, depth,
                        results.popleft(),
                        pending=len(block) - 1 - position, sid=sid)
                    if budget_hit or stats.early_stop is not None:
                        tail = [(sid if sid is not None else state, depth)
                                for state, depth, _, sid
                                in block[position + 1:]]
                        frontier.extendleft(reversed(tail))
                        break
                if self._ckpt_writer is not None and not budget_hit \
                        and stats.early_stop is None:
                    self._ckpt_writer.maybe_write(
                        ts, frontier, stats, self._ckpt_edges)

            return self._finish(ts, frontier, budget_hit, started)
        finally:
            self._detach_budget()
