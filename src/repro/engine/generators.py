"""Successor generators: one per decidable construction of Table 1.

Each class packages the *local* successor semantics of one seed builder;
the frontier loop, dedup, budgets, and stats all live in
:class:`repro.engine.explorer.Explorer`.

* :class:`DetAbstractionGenerator` — equality-commitment branching over
  fresh deterministic service calls (Theorem 4.3, Section 4.1);
* :class:`RcyclGenerator` — Algorithm RCYCL's eventually-recycling candidate
  sets (Appendix C.3, Theorem 5.4), with ``recycle=False`` giving the
  fresh-only ablation of :mod:`repro.semantics.ablations`;
* :class:`PoolDetGenerator` / :class:`PoolNondetGenerator` — the exact
  concrete transition system restricted to a finite value pool (the
  validation target of the bounded-bisimulation tests);
* :class:`OracleRunGenerator` — a single oracle-driven concrete run
  (states are ``(step, instance)`` pairs so the linear trace embeds in a
  transition system without collapsing revisited instances).
"""

from __future__ import annotations

from itertools import product
from typing import (
    Any, Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional,
    Sequence, Set, Tuple)

from repro import env
from repro.core.dcds import DCDS
from repro.core.execution import (
    _sigma_items, do_action, enabled_moves, evaluate_calls)
from repro.engine.explorer import ExplorationBudgetExceeded, SuccessorGenerator
from repro.relational import vector
from repro.relational.instance import Instance
from repro.relational.kernel import kernel_for
from repro.relational.values import Fresh, ServiceCall
from repro.semantics.commitments import enumerate_commitments
from repro.semantics.transition_system import State
from repro.utils import sorted_values

CallMap = Tuple[Tuple[ServiceCall, Any], ...]


class DetState:
    """A state ``<I, M>`` of the (abstract or concrete) deterministic TS.

    Immutable by convention; hashed on every frontier dedup, so the hash is
    cached.
    """

    __slots__ = ("instance", "call_map", "_hash", "_known")

    def __init__(self, instance: Instance, call_map: CallMap):
        self.instance = instance
        self.call_map = call_map
        self._hash = None
        self._known = None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DetState):
            return NotImplemented
        return self.instance == other.instance \
            and self.call_map == other.call_map

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.instance, self.call_map))
        return self._hash

    def __repr__(self) -> str:
        entries = ", ".join(f"{call!r}->{value!r}"
                            for call, value in self.call_map)
        return f"<{self.instance!r} | {entries}>"

    def map_dict(self) -> Dict[ServiceCall, Any]:
        return dict(self.call_map)

    def __reduce__(self):
        # Identity only, no cached hash — parallel workers ship DetStates
        # across process boundaries, where cached hashes would be stale
        # (per-process PYTHONHASHSEED; see ServiceCall.__reduce__).
        return DetState, (self.instance, self.call_map)

    def known_values(self) -> FrozenSet[Any]:
        """Every value this state has ever seen: current adom, call results,
        and call arguments (the history, Section 4.1). Cached — states are
        immutable and the set keys the commitment enumeration."""
        if self._known is None:
            values = set(self.instance.active_domain())
            for call, result in self.call_map:
                values.add(result)
                values.update(call.args)
            self._known = frozenset(values)
        return self._known


def sorted_call_map(mapping: Dict[ServiceCall, Any]) -> CallMap:
    return tuple(sorted(mapping.items(), key=lambda item: repr(item[0])))


def sigma_label(action_name: str, sigma: Dict) -> str:
    if not sigma:
        return action_name
    rendered = ", ".join(f"{param.name}={value!r}"
                         for param, value in sorted(
                             sigma.items(), key=lambda item: item[0].name))
    return f"{action_name}[{rendered}]"


def sigma_key(sigma: Dict) -> tuple:
    return tuple(sorted(((param.name, value) for param, value in sigma.items()),
                        key=lambda item: (item[0], repr(item[1]))))


Successor = Tuple[State, Instance, Optional[str]]


def _kernel_successors(generator, key, state: State) -> Iterator[Successor]:
    """Successor stream with the kernel's per-configuration replay memo.

    Expansion is a pure function of the state for the generators using
    this, so repeated constructions (validation runs, benchmark rounds)
    replay from the memo instead of re-grounding. The stream stays lazy
    and is memoized only when fully consumed: an observer early-stop or
    state budget that abandons it mid-way (the explorer returns without
    draining) neither pays for the unconsumed tail nor caches a truncated
    list.
    """
    kernel = kernel_for(generator.dcds)
    if kernel is None:
        return generator._expand(state)
    memo = kernel.successor_memo(key)
    found = memo.get(state)
    if found is not None:
        return iter(found)
    return _memoized_expansion(generator._expand(state), memo, state)


def _memoized_expansion(expansion: Iterator[Successor], memo: dict,
                        state: State) -> Iterator[Successor]:
    collected = []
    for successor in expansion:
        collected.append(successor)
        yield successor
    memo[state] = tuple(collected)


def warm_frontier_block(generator, key, states: Sequence[State]) -> None:
    """Warm the kernel's grounding memos for a whole frontier block.

    The frontier-batch tier (``Explorer._run_batched`` →
    ``successors_batch``): instead of every frontier state paying its own
    per-plan vector call, the block's distinct instances are stacked into
    one columnar join per compiled plan —
    :meth:`~repro.relational.kernel.RelationalKernel
    .warm_legal_substitutions` for every rule, then
    :meth:`~repro.relational.kernel.RelationalKernel.warm_ground_effects`
    for every ``(effect, sigma)`` group the warmed legal substitutions
    enable. Warming only fills the same per-instance memos the per-state
    entries read, so the ``_expand`` replay that follows is bit-identical
    by construction; with the kernel disabled (or ``REPRO_NO_BATCH=1``)
    this is a no-op and the per-state path runs exactly as before.

    Blocks with fewer distinct unexpanded instances than
    :data:`~repro.relational.vector.MIN_BATCH_GROUPS`, or stacking fewer
    total tuples than :data:`~repro.relational.vector.MIN_BATCH_TUPLES`,
    are skipped (stacking and splitting a handful of tiny groups costs
    about what it saves); the skip is recorded as a thin block in
    ``abstraction_stats["batch"]``.
    """
    kernel = kernel_for(generator.dcds)
    if kernel is None or env.batch_disabled():
        return
    memo = kernel.successor_memo(key)
    pending = [state for state in states if state not in memo]
    instances = list(dict.fromkeys(
        getattr(state, "instance", state) for state in pending))
    if len(instances) < vector.MIN_BATCH_GROUPS \
            or sum(len(instance) for instance in instances) \
            < vector.MIN_BATCH_TUPLES:
        kernel.note_batch_block(len(pending), thin=True)
        return
    kernel.note_batch_block(len(pending), thin=False)
    dcds = generator.dcds
    # Stage 1: legal substitutions of every rule, once per block.
    for rule in dcds.process.rules:
        action = dcds.process.action(rule.action)
        kernel.warm_legal_substitutions(rule, action.params, instances)
    # Stage 2: effect grounding. enabled_moves replays from the memos just
    # warmed; frontier siblings mostly enable the same (effect, sigma)
    # pairs, so grouping across states batches the effect bodies too.
    groups: Dict[Tuple[int, tuple], Tuple[Any, tuple, List[Instance]]] = {}
    for instance in instances:
        for action, sigma in enabled_moves(dcds, instance):
            items = _sigma_items(sigma)
            for effect in action.effects:
                entry = groups.get((id(effect), items))
                if entry is None:
                    groups[(id(effect), items)] = (effect, items, [instance])
                else:
                    entry[2].append(instance)
    for effect, items, sharing in groups.values():
        kernel.warm_ground_effects(effect, items, sharing)


# ---------------------------------------------------------------------------
# Deterministic abstraction (Theorem 4.3)
# ---------------------------------------------------------------------------

class DetAbstractionGenerator(SuccessorGenerator):
    """EXECS of Section 4.1 with equality-commitment branching.

    For every enabled ``(alpha, sigma)``: compute ``DO``, split its calls
    into already-answered (resolved via ``M`` — determinism) and fresh ones,
    enumerate equality commitments for the fresh ones, apply, and keep the
    successors satisfying the equality constraints.
    """

    parallel_safe = True
    quotient_safe = True  # states are <I, M>: history-carrying

    def __init__(self, dcds: DCDS):
        self.dcds = dcds
        self.known_constants = dcds.known_constants()

    def initial_state(self) -> Tuple[DetState, Instance]:
        return DetState(self.dcds.initial, ()), self.dcds.initial

    def _memo_key(self) -> tuple:
        return ("det-abstraction", self.known_constants)

    def successors(self, state: DetState) -> Iterator[Successor]:
        return _kernel_successors(self, self._memo_key(), state)

    def successors_batch(self, states: List[DetState]
                         ) -> List[List[Successor]]:
        warm_frontier_block(self, self._memo_key(), states)
        return [list(self.successors(state)) for state in states]

    def _expand(self, state: DetState) -> Iterator[Successor]:
        dcds = self.dcds
        instance = state.instance
        call_map = state.map_dict()
        known = state.known_values() | self.known_constants

        for action, sigma in enabled_moves(dcds, instance):
            pending = do_action(dcds, instance, action, sigma)
            calls = pending.service_calls()
            resolved = {call: call_map[call]
                        for call in calls if call in call_map}
            new_calls = sorted(
                (call for call in calls if call not in call_map), key=repr)
            label = sigma_label(action.name, sigma)

            for commitment in enumerate_commitments(new_calls, known):
                evaluation = {**resolved, **commitment}
                successor_instance = evaluate_calls(dcds, pending, evaluation)
                if successor_instance is None:
                    continue  # equality constraints filtered this commitment
                extended_map = dict(call_map)
                extended_map.update(commitment)
                successor = DetState(successor_instance,
                                     sorted_call_map(extended_map))
                yield successor, successor_instance, label


# ---------------------------------------------------------------------------
# Algorithm RCYCL (Theorem 5.4) and its fresh-only ablation
# ---------------------------------------------------------------------------

class RcyclGenerator(SuccessorGenerator):
    """Eventually-recycling candidate sets over nondeterministic services.

    ``recycle=False`` drops the recycling preference (candidates always
    fresh), reproducing the ablation that defeats Lemma C.3(i).
    """

    def __init__(self, dcds: DCDS, max_iterations: Optional[int] = None,
                 recycle: bool = True):
        self.dcds = dcds
        self.max_iterations = max_iterations
        self.recycle = recycle
        self.initial_adom = set(dcds.data.initial_adom)
        self.known_constants = set(dcds.known_constants())
        self.used_values: Set[Any] = set(self.initial_adom) \
            | self.known_constants
        self.visited: Set[tuple] = set()
        self.iterations = 0
        self.minted_total = 0

    def initial_state(self) -> Tuple[Instance, Instance]:
        return self.dcds.initial, self.dcds.initial

    def on_new_state(self, state: Instance, instance: Instance) -> None:
        self.used_values |= set(instance.active_domain())

    def _mint_fresh(self, count: int) -> List[Fresh]:
        taken = {value.index for value in self.used_values
                 if isinstance(value, Fresh)}
        minted: List[Fresh] = []
        index = 0
        while len(minted) < count:
            if index not in taken:
                minted.append(Fresh(index))
                taken.add(index)
            index += 1
        return minted

    def _candidates(self, instance: Instance, n_calls: int) -> List[Any]:
        if self.recycle:
            # RecyclableValues := UsedValues − (ADOM(I0) ∪ ADOM(I))
            recyclable = sorted_values(
                self.used_values
                - (self.initial_adom | set(instance.active_domain())))
            if len(recyclable) >= n_calls:
                return recyclable[:n_calls]  # recycled values
        minted = self._mint_fresh(n_calls)  # fresh values
        self.minted_total += len(minted)
        if not self.recycle:
            # Ablation: minted values count as used even if no successor
            # retains them, so fresh indexes are never reconsidered.
            self.used_values.update(minted)
        return minted

    def successors(self, instance: Instance) -> Iterator[Successor]:
        dcds = self.dcds
        for action, sigma in enabled_moves(dcds, instance):
            key = (instance, action.name, sigma_key(sigma))
            if key in self.visited:
                continue
            self.visited.add(key)
            self.iterations += 1
            if self.max_iterations is not None \
                    and self.iterations > self.max_iterations:
                raise ExplorationBudgetExceeded(
                    f"RCYCL exceeded {self.max_iterations} iterations")

            pending = do_action(dcds, instance, action, sigma)
            calls = sorted(pending.service_calls(), key=repr)
            candidates = self._candidates(instance, len(calls))
            evaluation_range = sorted_values(
                self.initial_adom | self.known_constants
                | set(instance.active_domain()) | set(candidates))

            label = action.name if not sigma else \
                f"{action.name}[{sigma_key(sigma)}]"
            for combo in product(evaluation_range, repeat=len(calls)):
                evaluation = dict(zip(calls, combo))
                successor = evaluate_calls(dcds, pending, evaluation)
                if successor is None:
                    continue  # violates an equality constraint
                yield successor, successor, label


# ---------------------------------------------------------------------------
# Finite-pool concrete exploration
# ---------------------------------------------------------------------------

class PoolDetGenerator(SuccessorGenerator):
    """Concrete deterministic semantics restricted to a value pool.

    States are ``<I, M>`` and evaluations must agree with ``M``
    (Section 4.1)."""

    parallel_safe = True
    quotient_safe = True  # states are <I, M>: history-carrying

    def __init__(self, dcds: DCDS, pool: Sequence[Any]):
        self.dcds = dcds
        self.pool = list(pool)
        self.symmetry_values = tuple(self.pool)

    def initial_state(self) -> Tuple[DetState, Instance]:
        return DetState(self.dcds.initial, ()), self.dcds.initial

    def _memo_key(self) -> tuple:
        return ("pool-det", tuple(self.pool))

    def successors(self, state: DetState) -> Iterator[Successor]:
        return _kernel_successors(self, self._memo_key(), state)

    def successors_batch(self, states: List[DetState]
                         ) -> List[List[Successor]]:
        warm_frontier_block(self, self._memo_key(), states)
        return [list(self.successors(state)) for state in states]

    def _expand(self, state: DetState) -> Iterator[Successor]:
        dcds = self.dcds
        call_map = state.map_dict()
        for action, sigma in enabled_moves(dcds, state.instance):
            pending = do_action(dcds, state.instance, action, sigma)
            calls = sorted(pending.service_calls(), key=repr)
            resolved = {call: call_map[call] for call in calls
                        if call in call_map}
            new_calls = [call for call in calls if call not in call_map]
            for combo in product(self.pool, repeat=len(new_calls)):
                evaluation = dict(resolved)
                evaluation.update(zip(new_calls, combo))
                successor_instance = evaluate_calls(dcds, pending, evaluation)
                if successor_instance is None:
                    continue
                extended = dict(call_map)
                extended.update(zip(new_calls, combo))
                successor = DetState(successor_instance,
                                     sorted_call_map(extended))
                yield successor, successor_instance, action.name


class PoolNondetGenerator(SuccessorGenerator):
    """Concrete nondeterministic semantics restricted to a value pool.

    States are instances and every call picks independently from the pool
    (Section 5.1)."""

    parallel_safe = True
    # No symmetry_values here: plain-instance states are not quotient_safe
    # (see repro.engine.symmetry), so the reducer never reads it.

    def __init__(self, dcds: DCDS, pool: Sequence[Any]):
        self.dcds = dcds
        self.pool = list(pool)

    def initial_state(self) -> Tuple[Instance, Instance]:
        return self.dcds.initial, self.dcds.initial

    def _memo_key(self) -> tuple:
        return ("pool-nondet", tuple(self.pool))

    def successors(self, instance: Instance) -> Iterator[Successor]:
        return _kernel_successors(self, self._memo_key(), instance)

    def successors_batch(self, states: List[Instance]
                         ) -> List[List[Successor]]:
        warm_frontier_block(self, self._memo_key(), states)
        return [list(self.successors(state)) for state in states]

    def _expand(self, instance: Instance) -> Iterator[Successor]:
        dcds = self.dcds
        for action, sigma in enabled_moves(dcds, instance):
            pending = do_action(dcds, instance, action, sigma)
            calls = sorted(pending.service_calls(), key=repr)
            for combo in product(self.pool, repeat=len(calls)):
                evaluation = dict(zip(calls, combo))
                successor = evaluate_calls(dcds, pending, evaluation)
                if successor is None:
                    continue
                yield successor, successor, action.name


# ---------------------------------------------------------------------------
# Oracle-driven concrete run (simulate)
# ---------------------------------------------------------------------------

Chooser = Callable[[List[Tuple[Any, Dict]]], int]


class OracleRunGenerator(SuccessorGenerator):
    """One concrete run: the oracle answers calls, the chooser picks moves.

    States are ``(step, instance)`` so the run embeds into a (path-shaped)
    transition system even when the same instance recurs along the trace.
    The run ends (no successor) when no move is enabled or the oracle's
    answers violate the equality constraints — in the concrete semantics the
    chosen successor then simply does not exist.
    """

    def __init__(self, dcds: DCDS, oracle: Callable[[ServiceCall], Any],
                 chooser: Optional[Chooser] = None):
        self.dcds = dcds
        self.oracle = oracle
        self.chooser = chooser

    def initial_state(self) -> Tuple[Tuple[int, Instance], Instance]:
        return (0, self.dcds.initial), self.dcds.initial

    def successors(self, state: Tuple[int, Instance]
                   ) -> Iterator[Successor]:
        step, instance = state
        moves = list(enabled_moves(self.dcds, instance))
        if not moves:
            return
        index = 0 if self.chooser is None else self.chooser(moves)
        action, sigma = moves[index]
        pending = do_action(self.dcds, instance, action, sigma)
        evaluation = {call: self.oracle(call)
                      for call in sorted(pending.service_calls(), key=repr)}
        successor = evaluate_calls(self.dcds, pending, evaluation)
        if successor is None:
            return  # constraint-violating evaluation: no such transition
        yield (step + 1, successor), successor, action.name
