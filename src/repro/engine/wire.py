"""Compact wire codec for parallel exploration.

The first parallel explorer shipped pickled ``DetState``/``Instance`` object
graphs both ways: every batch re-pickled whole instances (relation-name
strings, value objects, service-call trees) and the coordinator re-hashed
every term of every unpickled graph — measured at ~2.4x work inflation
(``BENCH_2026-07-29.json`` ``parallel_probes`` of PR 3).

This codec ships *integer codes* instead, riding the per-process
:class:`~repro.relational.kernel.RelationalKernel`:

* **Snapshot alignment.** At pool creation the coordinator snapshots its
  term table. Under ``fork`` the workers inherit that table; under
  ``spawn`` they rebuild the kernel (deterministic constructor prefix) and
  replay the snapshot, asserting code-for-code alignment. Codes below the
  snapshot size are shared vocabulary and travel bare.
* **Definitions by need.** Terms interned after the snapshot are
  process-local; each message carries a definition list for exactly the
  local terms it mentions (a value pickled once per message, service calls
  as references to argument codes), and references them by definition
  index.
* **Delta results.** A worker answers with each successor as a delta
  against the dispatched parent: indexes of removed parent facts, added
  facts as int tuples, and the call-map entries spliced in (positions in
  the final repr-sorted tuple — no coordinator-side re-sorting). The
  coordinator rebuilds successors through its fact/instance interners, so
  an arriving state re-uses already-hashed objects; nothing is ever
  re-hashed term by term.

The decoded transition system is bit-identical to the sequential build —
the codec moves *identities*, never semantics. Generators without a DCDS
kernel fall back to the legacy pickle path in
:mod:`repro.engine.parallel`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.engine import frames
from repro.engine.frames import (
    FRAME_OVERHEAD, dumps as _dumps, loads as _loads)
from repro.engine.generators import DetState
from repro.relational.kernel import RelationalKernel, kernel_for

#: ``(kind, state, coded_fact_list, call_map)`` for each dispatched state;
#: kind is "d" (DetState) or "i" (bare Instance).
ParentInfo = Tuple[str, Any, Tuple[Tuple[int, Tuple[int, ...]], ...], tuple]

_NO_LABEL = -1

# The frame format itself (magic, header layout, zlib level, dumps/loads)
# moved to repro.engine.frames when the checkpoint layer and the paged
# state store became co-owners of it; the historical underscore names stay
# importable from here for the existing consumers.
_ZLIB_LEVEL = frames.ZLIB_LEVEL
_FRAME_MAGIC = frames.FRAME_MAGIC
_FRAME_HEADER = frames.FRAME_HEADER


def make_codec(generator) -> Optional["WireCodec"]:
    """A codec for the generator's DCDS kernel, or ``None`` (pickle path)."""
    dcds = getattr(generator, "dcds", None)
    if dcds is None:
        return None
    kernel = kernel_for(dcds)
    if kernel is None:
        return None
    return WireCodec(kernel, len(kernel.table))


class WireCodec:
    """Encode/decode exploration traffic against a kernel's term table."""

    def __init__(self, kernel: RelationalKernel, snapshot_size: int):
        self.kernel = kernel
        self.snapshot_size = snapshot_size

    def snapshot(self) -> list:
        """Table payloads for spawn-side replay (see ``TermTable``)."""
        return self.kernel.table.snapshot()[:self.snapshot_size]

    # -- reference encoding --------------------------------------------------

    def _ref(self, code: int, defs: List[Any],
             def_index: Dict[int, int]) -> int:
        """Bare snapshot code, or ``snapshot_size + index`` into ``defs``."""
        if code < self.snapshot_size:
            return code
        found = def_index.get(code)
        if found is None:
            table = self.kernel.table
            term = table.term(code)
            if table.is_call(code):
                arg_refs = tuple(
                    self._ref(table.code(arg), defs, def_index)
                    for arg in term.args)
                payload = ("c", term.function, arg_refs)
            else:
                payload = ("v", term)
            # Reserve the slot before appending: argument definitions above
            # were appended first, so indexes stay consistent.
            found = len(defs)
            defs.append(payload)
            def_index[code] = found
        return self.snapshot_size + found

    def _resolve(self, ref: int, resolved: List[int]) -> int:
        """A message reference back to a local table code."""
        if ref < self.snapshot_size:
            return ref
        return resolved[ref - self.snapshot_size]

    def _resolve_defs(self, defs: List[Any]) -> List[int]:
        """Intern every definition, in order, returning their local codes."""
        kernel = self.kernel
        table = kernel.table
        resolved: List[int] = []
        for payload in defs:
            if payload[0] == "c":
                _, function, arg_refs = payload
                code = kernel.intern_call(function, tuple(
                    self._resolve(ref, resolved) for ref in arg_refs))
            else:
                code = table.code(payload[1])
            resolved.append(code)
        return resolved

    # -- splice helpers (used by WireSession) ------------------------------

    def _encode_map(self, call_map: tuple, defs, def_index) -> tuple:
        """A call map encoded entry by entry (no parent assumption)."""
        table = self.kernel.table
        return tuple(
            (self._ref(table.code(call), defs, def_index),
             self._ref(table.code(value), defs, def_index))
            for call, value in call_map)

    def _decode_map(self, coded_map: tuple, resolved: List[int]) -> tuple:
        table = self.kernel.table
        return tuple(
            (table.term(self._resolve(call_ref, resolved)),
             table.term(self._resolve(value_ref, resolved)))
            for call_ref, value_ref in coded_map)

    @staticmethod
    def _extends(parent_map: tuple, successor_map: tuple) -> bool:
        """Do the parent entries form a subsequence of the successor's?

        True for raw generator successors (commitments only *add* fresh
        calls, both maps repr-sorted); false when the symmetry reducer
        renamed dead history entries — those ship as full maps.
        """
        position = 0
        n_parent = len(parent_map)
        for entry in successor_map:
            if position < n_parent and entry == parent_map[position]:
                position += 1
        return position == n_parent

    def _encode_splice(self, parent_map: tuple, successor_map: tuple,
                       defs, def_index) -> tuple:
        """New call-map entries with their positions in the successor tuple.

        Only called when :meth:`_extends` holds — the parent entries form
        a subsequence and the coordinator can splice without sorting.
        """
        table = self.kernel.table
        splice = []
        parent_position = 0
        n_parent = len(parent_map)
        for position, entry in enumerate(successor_map):
            if parent_position < n_parent \
                    and entry == parent_map[parent_position]:
                parent_position += 1
                continue
            call, value = entry
            splice.append((position,
                           self._ref(table.code(call), defs, def_index),
                           self._ref(table.code(value), defs, def_index)))
        return tuple(splice)

    def _decode_splice(self, parent_map: tuple, splice: tuple,
                       resolved: List[int]) -> tuple:
        if not splice:
            return parent_map
        table = self.kernel.table
        merged: List[Any] = []
        inserts = {position: (call_ref, value_ref)
                   for position, call_ref, value_ref in splice}
        parent_iter = iter(parent_map)
        total = len(parent_map) + len(splice)
        for position in range(total):
            insert = inserts.get(position)
            if insert is None:
                merged.append(next(parent_iter))
            else:
                call_ref, value_ref = insert
                merged.append(
                    (table.term(self._resolve(call_ref, resolved)),
                     table.term(self._resolve(value_ref, resolved))))
        return tuple(merged)


# ---------------------------------------------------------------------------
# Stateful per-link session: token references for already-known states
# ---------------------------------------------------------------------------

class WireSession:
    """The codec plus a per-link state registry, symmetric on both ends.

    Dispatch and result streams between the coordinator and *one* worker are
    FIFO (dedicated pipe), so both ends observe the same event order and can
    assign identical token numbers without ever exchanging them: dispatched
    states register in the dispatch space ("d", index) at encode time on the
    coordinator and at decode time on the worker; new result states register
    in the result space ("r", index) at encode time on the worker and decode
    time on the coordinator. A state either side has registered travels as a
    single token afterwards — the common case under worker affinity, where a
    frontier state returns to the worker that produced it.
    """

    def __init__(self, codec: WireCodec, link_id: Optional[int] = None):
        self.codec = codec
        #: Worker slot this session serves, stamped onto every
        #: :class:`WireIntegrityError` its decode paths raise so the
        #: supervisor knows which link to recycle.
        self.link_id = link_id
        #: Registered states with their *agreed* coded-fact list. The list
        #: order is fixed by the message that introduced the state (never
        #: by local code order, which differs per process past the
        #: snapshot) — result deltas reference parent facts by index into
        #: exactly this list on both ends.
        self.d_states: List[Tuple[Any, tuple]] = []
        self.r_states: List[Tuple[Any, tuple]] = []
        self.token_of: Dict[Any, Tuple[str, int]] = {}

    def knows(self, state) -> bool:
        return state in self.token_of

    def _register(self, space: str, state, fact_list: tuple) -> None:
        states = self.d_states if space == "d" else self.r_states
        self.token_of.setdefault(state, (space, len(states)))
        states.append((state, fact_list))

    def _lookup(self, space: str, token: int) -> Tuple[Any, tuple]:
        return self.d_states[token] if space == "d" else \
            self.r_states[token]

    # -- coordinator side ----------------------------------------------------

    def encode_dispatch(self, states: List[Any]
                        ) -> Tuple[bytes, List[Optional[ParentInfo]]]:
        """Token-or-full encoding of a batch; parents align with entries."""
        codec = self.codec
        kernel = codec.kernel
        table = kernel.table
        table_code = table.code
        snap = codec.snapshot_size
        ref = codec._ref
        defs: List[Any] = []
        def_index: Dict[int, int] = {}
        entries = []
        parents: List[ParentInfo] = []
        # Fact code tuples repeat massively across a batch's states (a
        # frontier shares most of its facts), so translated tuples are
        # memoized per message — the defs/def_index they reference are
        # per-message, which bounds the memo's validity.
        translated: Dict[tuple, tuple] = {}
        for state in states:
            if isinstance(state, DetState):
                kind, instance, call_map = \
                    "d", state.instance, state.call_map
            else:
                kind, instance, call_map = "i", state, ()
            known = self.token_of.get(state)
            if known is not None:
                entries.append(known)
                _, fact_list = self._lookup(*known)
                parents.append((kind, state, fact_list, call_map))
                continue
            fact_list = tuple(sorted(kernel.coded_fact_set(instance)))
            facts_out = []
            for relation, codes in fact_list:
                moved = translated.get(codes)
                if moved is None:
                    if not codes or max(codes) < snap:
                        moved = codes  # all shared vocabulary: ship as-is
                    else:
                        moved = tuple(
                            code if code < snap
                            else ref(code, defs, def_index)
                            for code in codes)
                    translated[codes] = moved
                facts_out.append((relation, moved))
            facts = tuple(facts_out)
            coded_map = tuple(
                (ref(table_code(call), defs, def_index),
                 ref(table_code(value), defs, def_index))
                for call, value in call_map)
            entries.append(("n", kind, facts, coded_map))
            self._register("d", state, fact_list)
            parents.append((kind, state, fact_list, call_map))
        return _dumps((defs, entries)), parents

    def decode_results(self, payload: bytes,
                       parents: List[ParentInfo]) -> List[List[tuple]]:
        codec = self.codec
        kernel = codec.kernel
        table = kernel.table
        snap = codec.snapshot_size
        defs, encoded = _loads(payload, self.link_id)
        resolved = codec._resolve_defs(defs)
        results: List[List[tuple]] = []
        for (kind, _, parent_facts, parent_map), entries in zip(
                parents, encoded):
            successors = []
            for entry in entries:
                tag = entry[0]
                if tag not in ("n", "f"):
                    _, token, label_ref = entry
                    state, _ = self._lookup(tag, token)
                    instance = state.instance if kind == "d" else state
                else:
                    _, removed, added, map_part, label_ref = entry
                    removed_set = set(removed)
                    # The successor's agreed list: surviving parent facts
                    # in parent order, then added facts in message order —
                    # both ends derive it identically.
                    fact_list = [
                        fact for index, fact in enumerate(parent_facts)
                        if index not in removed_set]
                    fact_list.extend(
                        (relation, tuple(
                            ref if ref < snap else resolved[ref - snap]
                            for ref in refs))
                        for relation, refs in added)
                    fact_list = tuple(fact_list)
                    instance = kernel._intern_coded_instance(
                        frozenset(fact_list))
                    if tag == "f":
                        # Full call map: the symmetry reducer rewrote
                        # parent history entries, no splice possible.
                        state = DetState(
                            instance,
                            codec._decode_map(map_part, resolved))
                    elif kind == "d":
                        call_map = codec._decode_splice(
                            parent_map, map_part, resolved)
                        state = DetState(instance, call_map)
                    else:
                        state = instance
                    self._register("r", state, fact_list)
                label = None if label_ref == _NO_LABEL else \
                    table.term(codec._resolve(label_ref, resolved))
                successors.append((state, instance, label))
            results.append(successors)
        return results

    # -- worker side ---------------------------------------------------------

    def decode_dispatch(self, payload: bytes
                        ) -> Tuple[List[Any], List[ParentInfo]]:
        codec = self.codec
        kernel = codec.kernel
        table = kernel.table
        snap = codec.snapshot_size
        defs, entries = _loads(payload, self.link_id)
        resolved = codec._resolve_defs(defs)
        states: List[Any] = []
        parents: List[ParentInfo] = []
        for entry in entries:
            tag = entry[0]
            if tag != "n":
                state, fact_list = self._lookup(tag, entry[1])
            else:
                _, kind, facts, coded_map = entry
                fact_list = tuple(
                    (relation, tuple(
                        ref if ref < snap else resolved[ref - snap]
                        for ref in refs))
                    for relation, refs in facts)
                instance = kernel._intern_coded_instance(
                    frozenset(fact_list))
                if kind == "d":
                    call_map = tuple(
                        (table.term(codec._resolve(call_ref, resolved)),
                         table.term(codec._resolve(value_ref, resolved)))
                        for call_ref, value_ref in coded_map)
                    state = DetState(instance, call_map)
                else:
                    state = instance
                self._register("d", state, fact_list)
            if isinstance(state, DetState):
                kind, instance, call_map = \
                    "d", state.instance, state.call_map
            else:
                kind, instance, call_map = "i", state, ()
            states.append(state)
            parents.append((kind, state, fact_list, call_map))
        return states, parents

    def encode_results(self, parents: List[ParentInfo],
                       results: List[List[tuple]]) -> bytes:
        codec = self.codec
        kernel = codec.kernel
        table = kernel.table
        snap = codec.snapshot_size
        ref = codec._ref
        defs: List[Any] = []
        def_index: Dict[int, int] = {}
        encoded = []
        for (kind, _, parent_facts, parent_map), successors in zip(
                parents, results):
            parent_set = set(parent_facts)
            entries = []
            for successor, _, label in successors:
                label_ref = _NO_LABEL if label is None else \
                    ref(table.code(label), defs, def_index)
                known = self.token_of.get(successor)
                if known is not None:
                    entries.append((known[0], known[1], label_ref))
                    continue
                instance = successor.instance if kind == "d" \
                    else successor
                succ_facts = kernel.coded_fact_set(instance)
                removed = tuple(
                    index for index, fact in enumerate(parent_facts)
                    if fact not in succ_facts)
                added_facts = tuple(sorted(succ_facts - parent_set))
                added = tuple(
                    (relation, tuple(
                        code if code < snap else ref(code, defs, def_index)
                        for code in codes))
                    for relation, codes in added_facts)
                if kind == "d" and not codec._extends(
                        parent_map, successor.call_map):
                    # Dead-history renaming (symmetry reduction) rewrote
                    # parent entries: ship the successor's map verbatim.
                    map_part = codec._encode_map(
                        successor.call_map, defs, def_index)
                    entries.append(("f", removed, added, map_part,
                                    label_ref))
                else:
                    if kind == "d":
                        map_part = codec._encode_splice(
                            parent_map, successor.call_map, defs,
                            def_index)
                    else:
                        map_part = ()
                    entries.append(("n", removed, added, map_part,
                                    label_ref))
                removed_set = set(removed)
                fact_list = tuple(
                    fact for index, fact in enumerate(parent_facts)
                    if index not in removed_set) + added_facts
                self._register("r", successor, fact_list)
            encoded.append(entries)
        return _dumps((defs, encoded))
