"""The shared CRC32 record frame: one format, three consumers.

``RW1`` frames were born as the parallel engine's wire format
(:mod:`repro.engine.wire`), then reused record-for-record by the
checkpoint layer (:mod:`repro.engine.checkpoint`) and the paged state
store (:mod:`repro.engine.store`). The framing and the two file-level
helpers live here so the three consumers cannot drift apart: a frame is

    ``b"RW1" + <u32 body length> + <u32 CRC32(body)> + body``

with ``body = zlib(pickle(message))``. The checksum turns a truncated
pipe read, a torn checkpoint record, or a corrupted store page into a
structured :class:`~repro.errors.WireIntegrityError` instead of a
``zlib``/unpickle traceback deep inside a codec.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import Any, Optional, Tuple

from repro.errors import WireIntegrityError

#: zlib level for payloads. The coded messages are streams of small ints
#: in repetitive tuple shapes — level 3 shrinks them ~8x at ~GB/s
#: throughput, and the byte counts recorded in ``parallel``/``store``
#: stats are what actually crosses a process or disk boundary.
ZLIB_LEVEL = 3

FRAME_MAGIC = b"RW1"
FRAME_HEADER = struct.Struct("<3sII")
FRAME_OVERHEAD = FRAME_HEADER.size


def dumps(message: Any) -> bytes:
    """``message`` as one framed record (deterministic for equal input)."""
    body = zlib.compress(
        pickle.dumps(message, pickle.HIGHEST_PROTOCOL), ZLIB_LEVEL)
    return FRAME_HEADER.pack(FRAME_MAGIC, len(body),
                             zlib.crc32(body)) + body


def loads(payload: bytes, link: Optional[int] = None) -> Any:
    """Decode one framed record, validating magic, length, and CRC32."""
    if len(payload) < FRAME_OVERHEAD:
        raise WireIntegrityError(
            f"wire frame truncated: {len(payload)} bytes is shorter than "
            f"the {FRAME_OVERHEAD}-byte frame header", link=link)
    magic, length, checksum = FRAME_HEADER.unpack_from(payload)
    if magic != FRAME_MAGIC:
        raise WireIntegrityError(
            f"wire frame misframed: bad magic {magic!r}", link=link)
    body = payload[FRAME_OVERHEAD:]
    if len(body) != length:
        raise WireIntegrityError(
            f"wire frame truncated: header promises {length} body bytes, "
            f"got {len(body)}", link=link)
    if zlib.crc32(body) != checksum:
        raise WireIntegrityError(
            "wire frame corrupted: CRC32 checksum mismatch", link=link)
    try:
        return pickle.loads(zlib.decompress(body))
    except Exception as error:  # CRC passed but payload still unusable
        raise WireIntegrityError(
            f"wire frame undecodable despite a valid checksum: "
            f"{type(error).__name__}: {error}", link=link) from error


def write_record(handle, record: Any) -> int:
    """Append ``record`` as one frame; returns the bytes written."""
    payload = dumps(record)
    handle.write(payload)
    return len(payload)


def read_record(handle, remaining: int) -> Tuple[Any, int]:
    """The next framed record from ``handle``, bounded by ``remaining``.

    ``remaining`` is how many validly-written bytes the caller believes
    are left (a checkpoint's manifest-covered region, a store page's
    length); a frame that would extend past it — or a file physically
    shorter than promised — raises :class:`WireIntegrityError` instead
    of reading a torn tail.
    """
    if remaining < FRAME_OVERHEAD:
        raise WireIntegrityError(
            f"framed data ends mid-frame ({remaining} bytes left inside "
            f"the valid region)")
    header = handle.read(FRAME_OVERHEAD)
    if len(header) < FRAME_OVERHEAD:
        raise WireIntegrityError(
            "framed data file is shorter than its metadata promises")
    _, length, _ = FRAME_HEADER.unpack(header)
    if remaining < FRAME_OVERHEAD + length:
        raise WireIntegrityError(
            "framed record extends past the valid region")
    body = handle.read(length)
    return loads(header + body), FRAME_OVERHEAD + length
