"""Seeded random DCDS generators for scaling sweeps and property tests.

``random_dcds`` generates layered specifications whose acyclicity class is
chosen up front:

* ``shape="weakly-acyclic"`` — special edges go strictly up a relation
  order, ordinary edges never go down, so no cycle can cross a special edge;
* ``shape="gr-acyclic"`` — relations split into a *copy layer* (may have
  copy cycles, never receives service calls) and an ordered *sink layer*
  (receives calls, no cycles, no edges back), so no generate cycle can feed
  a recall cycle;
* ``shape="free"`` — unconstrained (may be run-/state-unbounded; useful for
  probe benchmarks).

``commitment_blowup_dcds`` builds the family used by the complexity
benchmark (§6: the abstract transition system is exponential in the DCDS
size): one action issuing ``n`` independent service calls, so the first
abstraction level enumerates all equality commitments over ``n`` calls.

Determinism contract: ``random_dcds(seed, ...)`` is a pure function of its
arguments — every random draw goes through the one ``random.Random(seed)``
instance created at entry (threaded explicitly through the helper
functions; the module-level ``random`` API must never be touched), and no
draw is conditioned on anything but earlier draws and the arguments. The
differential-testing harness (``tests/test_differential.py``) relies on
this to reproduce failures from a seed alone, and
``tests/test_workloads.py`` pins it with a same-seed structural-equality
regression test.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core import DCDS, DCDSBuilder, ServiceSemantics


def random_dcds(seed: int,
                n_relations: int = 3,
                max_arity: int = 2,
                n_actions: int = 2,
                effects_per_action: int = 2,
                n_services: int = 2,
                p_service_call: float = 0.4,
                shape: str = "weakly-acyclic",
                semantics: ServiceSemantics = ServiceSemantics.DETERMINISTIC
                ) -> DCDS:
    """Generate a random DCDS with the requested acyclicity shape."""
    if shape not in ("weakly-acyclic", "gr-acyclic", "free"):
        raise ValueError(f"unknown shape {shape!r}")
    rng = random.Random(seed)
    builder = DCDSBuilder(name=f"random[{seed},{shape}]")

    arities = [rng.randint(1, max_arity) for _ in range(n_relations)]
    for index, arity in enumerate(arities):
        builder.schema(f"R{index}/{arity}")
    for index in range(n_services):
        builder.service(f"f{index}/1")

    # Initial instance: one fact per relation over a tiny constant pool.
    constants = ["c0", "c1"]
    facts = []
    for index, arity in enumerate(arities):
        terms = ", ".join(f"'{rng.choice(constants)}'" for _ in range(arity))
        facts.append(f"R{index}({terms})")
    builder.initial(", ".join(facts))

    # Which relation may an effect write into, given its body relation?
    # The helpers take the seeded rng explicitly: every draw must come from
    # the one Random(seed) instance (see the module determinism contract).
    sink_start = max(1, n_relations // 2)

    def ordinary_target(rng: random.Random, source: int) -> Optional[int]:
        if shape == "weakly-acyclic":
            return rng.randint(source, n_relations - 1)
        if shape == "gr-acyclic":
            if source < sink_start:
                return rng.randint(0, sink_start - 1)  # copy layer cycles ok
            if source >= n_relations - 1:
                return None  # last sink: any head would close a sink cycle
            return rng.randint(source + 1, n_relations - 1)  # strictly forward
        return rng.randint(0, n_relations - 1)

    def special_target(rng: random.Random, source: int) -> Optional[int]:
        if shape == "weakly-acyclic":
            if source >= n_relations - 1:
                return None
            return rng.randint(source + 1, n_relations - 1)
        if shape == "gr-acyclic":
            if source >= n_relations - 1:
                return None
            return rng.randint(max(source + 1, sink_start), n_relations - 1)
        return rng.randint(0, n_relations - 1)

    for action_index in range(n_actions):
        effects: List[str] = []
        for _ in range(effects_per_action):
            source = rng.randrange(n_relations)
            body_vars = [f"x{i}" for i in range(arities[source])]
            body = f"R{source}({', '.join(body_vars)})"
            use_call = rng.random() < p_service_call
            target = special_target(rng, source) if use_call else None
            if target is None:
                use_call = False
                target = ordinary_target(rng, source)
            if target is None:
                continue  # no legal head for this source in this shape
            head_terms = []
            for position in range(arities[target]):
                if use_call and position == 0:
                    service = rng.randrange(n_services)
                    head_terms.append(f"f{service}({rng.choice(body_vars)})")
                else:
                    head_terms.append(rng.choice(body_vars + [
                        f"'{rng.choice(constants)}'"]))
            effects.append(
                f"{body} ~> R{target}({', '.join(head_terms)})")
        builder.action(f"act{action_index}", *effects)
        builder.rule("true", f"act{action_index}")
    return builder.build(semantics)


def commitment_blowup_dcds(n_calls: int) -> DCDS:
    """One action, ``n_calls`` independent service calls — weakly acyclic,
    with an abstraction whose first level is the full commitment lattice."""
    builder = DCDSBuilder(name=f"blowup[{n_calls}]")
    builder.schema("Seed/1", *(f"Out{i}/1" for i in range(n_calls)))
    builder.initial("Seed('c')")
    effects = ["Seed(x) ~> Seed(x)"]
    for index in range(n_calls):
        builder.service(f"g{index}/1")
        effects.append(f"Seed(x) ~> Out{index}(g{index}(x))")
    builder.action("fire", *effects)
    builder.rule("true", "fire")
    return builder.build(ServiceSemantics.DETERMINISTIC)


def lattice_dcds(k: int) -> DCDS:
    """A join-heavy grid workload: dense relational evaluation, tiny
    state space.

    The initial instance is a ``side x side`` grid graph (symmetric
    ``E``, one diagonal per cell so triangles exist) with
    ``side = 4*(k+1)``. One action copies ``E`` and materializes
    triangle, open-wedge, and open-3-path summaries — multiway
    self-joins with negation whose intermediate result grows like
    ``|E| * degree^2``. No service calls and no feedback into ``E``, so
    the abstraction closes after one application (trivially weakly
    acyclic) and ``build_det_abstraction`` cost is almost entirely the
    grounding joins: the benchmark family for the columnar vector
    backend, complementing ``chain``/``blowup`` (many tiny instances).
    """
    side = 4 * (k + 1)
    builder = DCDSBuilder(name=f"lattice[{k}]")
    builder.schema("E/2", "Tri/1", "Wedge/1", "Far/1")
    edges = set()
    for row in range(side):
        for column in range(side):
            here = f"n{row}_{column}"
            if column + 1 < side:
                edges.add((here, f"n{row}_{column + 1}"))
            if row + 1 < side:
                edges.add((here, f"n{row + 1}_{column}"))
            if row + 1 < side and column + 1 < side:
                edges.add((here, f"n{row + 1}_{column + 1}"))
    facts = []
    for a, b in sorted(edges):
        facts.append(f"E('{a}', '{b}')")
        facts.append(f"E('{b}', '{a}')")
    builder.initial(", ".join(facts))
    builder.action(
        "survey",
        "E(x, y) ~> E(x, y)",
        "E(x, y) & E(y, z) & E(z, x) ~> Tri(x)",
        "E(x, y) & E(y, z) & ~E(x, z) ~> Wedge(x)",
        "E(x, y) & E(y, z) & E(z, w) & ~E(x, w) ~> Far(x)",
    )
    builder.rule("true", "survey")
    return builder.build(ServiceSemantics.DETERMINISTIC)


def conveyor_dcds(k: int) -> DCDS:
    """A deep, wide-frontier workload: distinguishable tokens on a line.

    ``k + 1`` tokens sit on a ``2*k + 3``-cell conveyor (``Next`` chain);
    the parameterized action ``advance(t)`` moves one token monotonically
    (its trail of visited cells is kept, so states are position vectors
    and the space is ``cells^tokens`` with diameter ``tokens * (cells-1)``).
    Every application re-derives a 3-way self-join summary ``M`` over the
    **static** payload graph ``P`` (a bidirectional grid), so per-state
    grounding cost is join-dominated while the instances in a frontier
    share their ``P`` block verbatim — the benchmark family for
    frontier-batched grounding with cross-state dedup, complementing
    ``lattice`` (one huge state) and ``chain`` (thin frontiers). No
    service calls, so the system is trivially weakly acyclic and the
    exact space is finite.
    """
    tokens = k + 1
    cells = 2 * k + 3
    builder = DCDSBuilder(name=f"conveyor[{k}]")
    builder.schema("At/2", "Next/2", "P/2", "M/1")
    facts = []
    for cell in range(cells - 1):
        facts.append(f"Next('c{cell}', 'c{cell + 1}')")
    for token in range(tokens):
        facts.append(f"At('t{token}', 'c0')")
    side = 4
    edges = set()
    for row in range(side):
        for column in range(side):
            here = f"p{row}_{column}"
            if column + 1 < side:
                edges.add((here, f"p{row}_{column + 1}"))
            if row + 1 < side:
                edges.add((here, f"p{row + 1}_{column}"))
    for a, b in sorted(edges):
        facts.append(f"P('{a}', '{b}')")
        facts.append(f"P('{b}', '{a}')")
    builder.initial(", ".join(facts))
    builder.action(
        "advance(t)",
        "P(x, y) ~> P(x, y)",
        "P(x, y) & P(y, z) & P(z, w) ~> M(x)",
        "At(u, x) ~> At(u, x)",
        "Next(x, y) ~> Next(x, y)",
        "At($t, x) & Next(x, y) ~> At($t, y)",
    )
    builder.rule("exists x, y. At($t, x) & Next(x, y)", "advance")
    return builder.build(ServiceSemantics.DETERMINISTIC)


def warehouse_dcds(k: int, payload: int = 120) -> DCDS:
    """An over-RAM workload: many states, each carrying a wide payload.

    The ``conveyor`` movement core — ``k + 1`` tokens advancing
    monotonically along a ``2*k + 3``-cell line, so the space is
    ``cells^tokens`` position vectors (``6561`` states at ``k=3``) —
    but every state also carries a **static** ``payload``-row catalog
    relation copied verbatim across transitions. Grounding stays cheap
    (no joins, no service calls, trivially weakly acyclic); the cost is
    purely the per-state footprint, which makes the full in-RAM object
    graph the bottleneck long before CPU is. The benchmark family for
    the out-of-core storage layer (:mod:`repro.engine.store`): canonical
    frames compress the shared catalog well, and only the budgeted hot
    set stays live.
    """
    tokens = k + 1
    cells = 2 * k + 3
    builder = DCDSBuilder(name=f"warehouse[{k}]")
    builder.schema("At/2", "Next/2", "Cat/3")
    facts = []
    for cell in range(cells - 1):
        facts.append(f"Next('c{cell}', 'c{cell + 1}')")
    for token in range(tokens):
        facts.append(f"At('t{token}', 'c0')")
    for item in range(payload):
        facts.append(
            f"Cat('sku{item}', 'bin{item % 16}', 'lot{item % 7}')")
    builder.initial(", ".join(facts))
    builder.action(
        "move(t)",
        "Cat(x, y, z) ~> Cat(x, y, z)",
        "At(u, x) ~> At(u, x)",
        "Next(x, y) ~> Next(x, y)",
        "At($t, x) & Next(x, y) ~> At($t, y)",
    )
    builder.rule("exists x, y. At($t, x) & Next(x, y)", "move")
    return builder.build(ServiceSemantics.DETERMINISTIC)


def chain_dcds(length: int,
               semantics: ServiceSemantics = ServiceSemantics.DETERMINISTIC
               ) -> DCDS:
    """A weakly acyclic value pipeline ``L0 -f0-> L1 -f1-> ... -> Ln``.

    Rank of position ``(Li, 0)`` is ``i``; used to test the rank computation
    and depth-proportional abstraction growth.
    """
    builder = DCDSBuilder(name=f"chain[{length}]")
    builder.schema(*(f"L{i}/1" for i in range(length + 1)))
    builder.initial("L0('c')")
    effects = ["L0(x) ~> L0(x)"]
    for index in range(length):
        builder.service(f"h{index}/1")
        effects.append(f"L{index}(x) ~> L{index + 1}(h{index}(x))")
    builder.action("push", *effects)
    builder.rule("true", "push")
    return builder.build(semantics)
