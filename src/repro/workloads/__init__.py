"""Workload generators for benchmarks and property-based tests."""

from repro.workloads.random_dcds import (
    chain_dcds, commitment_blowup_dcds, conveyor_dcds, lattice_dcds,
    random_dcds, warehouse_dcds)

__all__ = ["chain_dcds", "commitment_blowup_dcds", "conveyor_dcds",
           "lattice_dcds", "random_dcds", "warehouse_dcds"]
