"""Small shared helpers: value ordering, fresh pools, partition enumeration."""

from __future__ import annotations

from itertools import chain, combinations
from typing import Any, Hashable, Iterable, Iterator, Sequence


def value_sort_key(value: Any) -> tuple:
    """Total order over mixed-type hashable values.

    Canonical forms sort active domains that mix strings, integers, and
    :class:`~repro.relational.values.Fresh` values; Python refuses to compare
    those directly, so we order by (type rank, repr).
    """
    from repro.relational.values import Fresh, ServiceCall

    if isinstance(value, Fresh):
        return (2, value.index, "")
    if isinstance(value, ServiceCall):
        return (3, 0, repr(value))
    if isinstance(value, bool):
        return (0, int(value), "")
    if isinstance(value, int):
        return (0, value, "")
    if isinstance(value, float):
        return (0, value, "")
    if isinstance(value, str):
        return (1, 0, value)
    return (4, 0, repr(value))


def sorted_values(values: Iterable[Any]) -> list:
    """Sort mixed-type values deterministically."""
    return sorted(values, key=value_sort_key)


def powerset(items: Sequence) -> Iterator[tuple]:
    """All subsets of ``items``, smallest first."""
    return chain.from_iterable(
        combinations(items, size) for size in range(len(items) + 1))


def set_partitions(items: Sequence) -> Iterator[list[list]]:
    """Enumerate all partitions of ``items`` into non-empty blocks.

    Blocks appear in order of their smallest member index, which makes the
    enumeration deterministic — the equality-commitment machinery relies on
    this to assign canonical fresh values per block.
    """
    items = list(items)
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in set_partitions(rest):
        # Put ``first`` in its own block (kept first to preserve ordering).
        yield [[first]] + [list(block) for block in partition]
        # Or add it to each existing block.
        for index in range(len(partition)):
            copied = [list(block) for block in partition]
            copied[index].insert(0, first)
            yield copied


def pairwise_disjoint(sets: Iterable[frozenset]) -> bool:
    """True when no element appears in two of the given sets."""
    seen: set = set()
    for current in sets:
        if seen & current:
            return False
        seen |= current
    return True


class FreshPool:
    """Deterministic source of fresh values ``Fresh(0), Fresh(1), ...``.

    ``reserve`` lets callers skip indices already present in a state so the
    "smallest unused" discipline of the abstraction algorithms holds.
    """

    def __init__(self, used: Iterable[Hashable] = ()):
        from repro.relational.values import Fresh

        self._used_indices = {
            value.index for value in used if isinstance(value, Fresh)}

    def take(self) -> "Fresh":
        from repro.relational.values import Fresh

        index = 0
        while index in self._used_indices:
            index += 1
        self._used_indices.add(index)
        return Fresh(index)

    def take_many(self, count: int) -> list:
        return [self.take() for _ in range(count)]


def stable_dedup(items: Iterable) -> list:
    """Remove duplicates preserving first-occurrence order."""
    seen = set()
    result = []
    for item in items:
        if item not in seen:
            seen.add(item)
            result.append(item)
    return result
