"""Action execution: legal parameters, ``DO()``, and service-call handling.

This module implements the state-transformation primitives shared by both
service semantics (Sections 4.1 and 5.1):

* :func:`legal_substitutions` — the parameter substitutions ``sigma`` allowed
  by a condition-action rule in a state;
* :func:`do_action` — ``DO(I, alpha sigma)``: the instance (possibly
  containing ground service-call terms) produced by applying all effects;
* :func:`evaluate_calls` — apply an evaluation ``theta`` (service call ->
  value) and check the equality constraints, yielding the successor instance.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.errors import ExecutionError, IllegalParameters
from repro.core.dcds import DCDS
from repro.core.process_layer import Action, CARule, EffectSpec
from repro.fol.evaluation import answers, evaluation_domain
from repro.relational.instance import Fact, Instance
from repro.relational.values import (
    Param, ServiceCall, Var, is_value, substitute_term)
from repro.utils import value_sort_key

ParamSubstitution = Dict[Param, Any]
CallEvaluation = Dict[ServiceCall, Any]


def _param_to_var(param: Param) -> Var:
    """Internal variable standing for an action parameter in rule queries."""
    return Var(f"@{param.name}")


def legal_substitutions(
    dcds: DCDS, instance: Instance, rule: CARule
) -> List[ParamSubstitution]:
    """All legal parameter substitutions for ``rule`` in ``instance``.

    A substitution ``sigma`` is legal when ``<p1, ..., pm> sigma`` is an
    answer of the rule's query over the current instance (Section 4.1).
    """
    action = dcds.process.action(rule.action)
    if not action.params:
        domain = evaluation_domain(instance, rule.query,
                                   dcds.data.initial_adom)
        if answers(rule.query, instance, domain=domain):
            return [{}]
        return []

    to_var = {param: _param_to_var(param) for param in action.params}
    query = rule.query.substitute(to_var)
    domain = evaluation_domain(instance, query, dcds.data.initial_adom)
    substitutions = []
    for theta in answers(query, instance, domain=domain):
        substitutions.append(
            {param: theta[to_var[param]] for param in action.params})

    def order(sigma: ParamSubstitution) -> tuple:
        return tuple(value_sort_key(sigma[param]) for param in action.params)

    substitutions.sort(key=order)
    return substitutions


def is_legal(dcds: DCDS, instance: Instance, rule: CARule,
             sigma: ParamSubstitution) -> bool:
    """Check one substitution for legality."""
    return sigma in legal_substitutions(dcds, instance, rule)


def enabled_moves(
    dcds: DCDS, instance: Instance
) -> Iterator[Tuple[Action, ParamSubstitution]]:
    """All (action, sigma) pairs enabled by some rule in the current state."""
    seen = set()
    for rule in dcds.process.rules:
        action = dcds.process.action(rule.action)
        for sigma in legal_substitutions(dcds, instance, rule):
            key = (action.name, tuple(sorted(
                ((param.name, sigma[param]) for param in action.params),
            )))
            if key not in seen:
                seen.add(key)
                yield action, sigma


def ground_effect(
    dcds: DCDS, instance: Instance, effect: EffectSpec,
    sigma: ParamSubstitution
) -> FrozenSet[Fact]:
    """The facts contributed by one effect: ``E sigma theta`` for every
    answer ``theta`` of ``(q+ ∧ Q−) sigma`` over the instance."""
    body = effect.body.substitute(sigma)
    remaining_params = body.parameters()
    if remaining_params:
        raise IllegalParameters(
            f"effect body still has parameters {sorted(remaining_params, key=repr)} "
            f"after substitution")
    domain = evaluation_domain(instance, body, dcds.data.initial_adom)
    produced = set()
    for theta in answers(body, instance, domain=domain):
        for atom_ in effect.head:
            terms = []
            for term in atom_.terms:
                grounded = substitute_term(
                    substitute_term(term, sigma), theta)
                if isinstance(grounded, (Var, Param)):
                    raise ExecutionError(
                        f"head term {term!r} not grounded by sigma/theta")
                if isinstance(grounded, ServiceCall) and not grounded.is_ground():
                    raise ExecutionError(
                        f"service call {grounded!r} has non-ground arguments")
                terms.append(grounded)
            produced.add(Fact(atom_.relation, tuple(terms)))
    return frozenset(produced)


def do_action(
    dcds: DCDS, instance: Instance, action: Action,
    sigma: ParamSubstitution
) -> Instance:
    """``DO(I, alpha sigma)``: union of all grounded effects (Section 4.1).

    The result may contain ground service-call terms awaiting evaluation.
    """
    declared = frozenset(action.params)
    if frozenset(sigma) != declared:
        raise IllegalParameters(
            f"substitution binds {sorted(sigma, key=repr)}, action "
            f"{action.name!r} declares {sorted(declared, key=repr)}")
    produced: set = set()
    for effect in action.effects:
        produced.update(ground_effect(dcds, instance, effect, sigma))
    return Instance(produced)


def calls_of(pending: Instance) -> List[ServiceCall]:
    """``CALLS(I)``: the ground service calls in a pending instance, sorted."""
    return sorted(pending.service_calls(), key=repr)


def evaluate_calls(
    dcds: DCDS, pending: Instance, evaluation: CallEvaluation,
    check_constraints: bool = True
) -> Optional[Instance]:
    """Apply a service-call evaluation and check equality constraints.

    Returns the successor instance, or ``None`` when the evaluation violates
    some equality constraint (such successors do not exist — condition 4 of
    EXECS / N-EXECS).
    """
    successor = pending.apply_call_map(evaluation)
    if check_constraints and not dcds.data.satisfies_constraints(successor):
        return None
    return successor


def successor_via(
    dcds: DCDS, instance: Instance, action: Action,
    sigma: ParamSubstitution, evaluation: CallEvaluation,
    check_constraints: bool = True
) -> Optional[Instance]:
    """One-shot: ``DO`` then evaluate calls then constraint check."""
    pending = do_action(dcds, instance, action, sigma)
    missing = pending.service_calls() - set(evaluation)
    if missing:
        raise ExecutionError(
            f"evaluation misses calls {sorted(missing, key=repr)}")
    return evaluate_calls(dcds, pending, evaluation, check_constraints)
