"""Action execution: legal parameters, ``DO()``, and service-call handling.

This module implements the state-transformation primitives shared by both
service semantics (Sections 4.1 and 5.1):

* :func:`legal_substitutions` — the parameter substitutions ``sigma`` allowed
  by a condition-action rule in a state;
* :func:`do_action` — ``DO(I, alpha sigma)``: the instance (possibly
  containing ground service-call terms) produced by applying all effects;
* :func:`evaluate_calls` — apply an evaluation ``theta`` (service call ->
  value) and check the equality constraints, yielding the successor instance.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.errors import ExecutionError, IllegalParameters, InstanceError
from repro.core.dcds import DCDS
from repro.core.process_layer import Action, CARule, EffectSpec
from repro.fol.ast import Formula
from repro.fol.evaluation import (
    answers, evaluation_domain, has_answer, iter_answers)
from repro.relational.instance import Fact, Instance
from repro.relational.kernel import clear_kernel_caches, kernel_for
from repro.relational.values import (
    Param, ServiceCall, Var, is_value, substitute_term)
from repro.utils import sorted_values, value_sort_key

ParamSubstitution = Dict[Param, Any]
CallEvaluation = Dict[ServiceCall, Any]


def _param_to_var(param: Param) -> Var:
    """Internal variable standing for an action parameter in rule queries."""
    return Var(f"@{param.name}")


@lru_cache(maxsize=4096)
def _param_query(rule: CARule, params: Tuple[Param, ...]) -> Formula:
    """The rule query with parameters replaced by internal variables."""
    return rule.query.substitute(
        {param: _param_to_var(param) for param in params})


@lru_cache(maxsize=16384)
def _substituted(formula: Formula, items: Tuple[Tuple[Any, Any], ...]
                 ) -> Formula:
    """Memoized ``formula.substitute(dict(items))``.

    Substituting a query is a full AST rebuild; explorations apply the same
    handful of substitutions to the same rule/effect bodies at every state.
    """
    return formula.substitute(dict(items))


def _sigma_items(sigma: ParamSubstitution) -> Tuple[Tuple[Param, Any], ...]:
    return tuple(sorted(sigma.items(), key=lambda item: item[0].name))


def legal_substitutions(
    dcds: DCDS, instance: Instance, rule: CARule
) -> List[ParamSubstitution]:
    """All legal parameter substitutions for ``rule`` in ``instance``.

    A substitution ``sigma`` is legal when ``<p1, ..., pm> sigma`` is an
    answer of the rule's query over the current instance (Section 4.1).

    The computation is memoized per ``(rule, instance)``: explorations
    evaluate every rule against every discovered state, and the same state
    (an immutable instance) recurs across builders (abstraction vs concrete
    validation runs) and across repeated constructions. Fresh dicts are
    returned on every call, so callers may mutate them.
    """
    action = dcds.process.action(rule.action)
    kernel = kernel_for(dcds)
    if kernel is not None:
        items = kernel.legal_substitution_items(
            rule, action.params, instance)
        if items is not None:
            return [dict(sigma_items) for sigma_items in items]
    items = _legal_subs_cached(rule, action.params, instance,
                               dcds.data.initial_adom)
    return [dict(sigma_items) for sigma_items in items]


@lru_cache(maxsize=65536)
def _legal_subs_cached(
    rule: CARule, params: Tuple[Param, ...], instance: Instance,
    initial_adom: FrozenSet[Any]
) -> Tuple[Tuple[Tuple[Param, Any], ...], ...]:
    if not params:
        domain = evaluation_domain(instance, rule.query, initial_adom)
        if has_answer(rule.query, instance, domain=domain):
            return ((),)
        return ()

    query = _param_query(rule, params)
    to_var = {param: _param_to_var(param) for param in params}
    domain = evaluation_domain(instance, query, initial_adom)
    substitutions = []
    for theta in answers(query, instance, domain=domain):
        substitutions.append(
            tuple((param, theta[to_var[param]]) for param in params))

    def order(sigma_items: Tuple[Tuple[Param, Any], ...]) -> tuple:
        return tuple(value_sort_key(value) for _, value in sigma_items)

    substitutions.sort(key=order)
    return tuple(substitutions)


def is_legal(dcds: DCDS, instance: Instance, rule: CARule,
             sigma: ParamSubstitution) -> bool:
    """Check one substitution for legality.

    Short-circuits on the first witness instead of materializing the full
    ``legal_substitutions`` list: ``sigma`` is substituted into the rule's
    query and the resulting closed formula is checked for satisfiability
    over the same evaluation domain the answer semantics would use (so a
    ``sigma`` binding values outside that domain is still illegal, matching
    the active-domain semantics of footnote 3).
    """
    action = dcds.process.action(rule.action)
    if frozenset(sigma) != frozenset(action.params):
        return False
    if not action.params:
        domain = evaluation_domain(instance, rule.query,
                                   dcds.data.initial_adom)
        return has_answer(rule.query, instance, domain=domain)

    query = _param_query(rule, action.params)
    domain = evaluation_domain(instance, query, dcds.data.initial_adom)
    if any(value not in domain for value in sigma.values()):
        return False
    bound = _substituted(rule.query, _sigma_items(sigma))
    return has_answer(bound, instance, domain=domain)


def enabled_moves(
    dcds: DCDS, instance: Instance
) -> Iterator[Tuple[Action, ParamSubstitution]]:
    """All (action, sigma) pairs enabled by some rule in the current state."""
    seen = set()
    for rule in dcds.process.rules:
        action = dcds.process.action(rule.action)
        for sigma in legal_substitutions(dcds, instance, rule):
            key = (action.name, tuple(sorted(
                ((param.name, sigma[param]) for param in action.params),
            )))
            if key not in seen:
                seen.add(key)
                yield action, sigma


@lru_cache(maxsize=1024)
def _effect_body(effect: EffectSpec) -> Formula:
    """Memoized ``effect.body`` (the property rebuilds ``q+ ∧ Q−``)."""
    return effect.body


@lru_cache(maxsize=16384)
def _formula_parameters(formula: Formula) -> FrozenSet[Param]:
    """Memoized ``formula.parameters()`` (an AST walk per grounding)."""
    return formula.parameters()


def _term_is_ground(term: Any) -> bool:
    if isinstance(term, (Var, Param)):
        return False
    if isinstance(term, ServiceCall):
        return term.is_ground()
    return True


@lru_cache(maxsize=16384)
def _grounded_head(effect: EffectSpec,
                   sigma_items: Tuple[Tuple[Param, Any], ...]) -> tuple:
    """Head atoms with ``sigma`` pre-applied, compiled for fast theta loops.

    Returns ``(relation, terms, open_positions, ready_fact)`` per head atom:
    ``open_positions`` are the term indexes still containing variables (to be
    filled per answer ``theta``); atoms with none get a prebuilt ``ready``
    :class:`Fact` that is shared across all successor states, so its hash is
    computed once for the whole exploration.
    """
    sigma = dict(sigma_items)
    compiled = []
    for atom_ in effect.head:
        terms = tuple(substitute_term(term, sigma) for term in atom_.terms)
        open_positions = tuple(
            position for position, term in enumerate(terms)
            if not _term_is_ground(term))
        ready = Fact(atom_.relation, terms) if not open_positions else None
        compiled.append((atom_.relation, terms, open_positions, ready))
    return tuple(compiled)


def ground_effect(
    dcds: DCDS, instance: Instance, effect: EffectSpec,
    sigma: ParamSubstitution
) -> FrozenSet[Fact]:
    """The facts contributed by one effect: ``E sigma theta`` for every
    answer ``theta`` of ``(q+ ∧ Q−) sigma`` over the instance.

    Memoized per ``(effect, sigma, instance)``: the same grounding
    subproblem recurs whenever a state is re-expanded by another builder
    (abstraction vs concrete validation) or a construction is repeated.

    When the DCDS has a :mod:`repro.relational.kernel`, the grounding runs
    on the compiled join plan over integer codes (observably identical
    facts; the reference path below stays authoritative for parity tests
    and as the fallback for uncompilable effects).
    """
    kernel = kernel_for(dcds)
    if kernel is not None:
        produced = kernel.ground_effect(effect, _sigma_items(sigma),
                                        instance)
        if produced is not None:
            return produced
    return _ground_effect_cached(effect, _sigma_items(sigma), instance,
                                 dcds.data.initial_adom)


@lru_cache(maxsize=65536)
def _ground_effect_cached(
    effect: EffectSpec, sigma_items: Tuple[Tuple[Param, Any], ...],
    instance: Instance, initial_adom: FrozenSet[Any]
) -> FrozenSet[Fact]:
    body = _substituted(_effect_body(effect), sigma_items)
    remaining_params = _formula_parameters(body)
    if remaining_params:
        raise IllegalParameters(
            f"effect body still has parameters {sorted(remaining_params, key=repr)} "
            f"after substitution")
    head = _grounded_head(effect, sigma_items)
    domain = evaluation_domain(instance, body, initial_adom)
    produced = set()
    # iter_answers may repeat bindings; the produced-facts set dedups, so
    # the sort/dedup work of answers() would be wasted here.
    for theta in iter_answers(body, instance, domain=domain):
        for relation, terms, open_positions, ready in head:
            if ready is not None:
                produced.add(ready)
                continue
            filled = list(terms)
            for position in open_positions:
                grounded = substitute_term(filled[position], theta)
                if isinstance(grounded, (Var, Param)):
                    raise ExecutionError(
                        f"head term {filled[position]!r} not grounded "
                        f"by sigma/theta")
                if isinstance(grounded, ServiceCall) \
                        and not grounded.is_ground():
                    raise ExecutionError(
                        f"service call {grounded!r} has non-ground arguments")
                filled[position] = grounded
            produced.add(Fact(relation, tuple(filled)))
    return frozenset(produced)


def do_action(
    dcds: DCDS, instance: Instance, action: Action,
    sigma: ParamSubstitution
) -> Instance:
    """``DO(I, alpha sigma)``: union of all grounded effects (Section 4.1).

    The result may contain ground service-call terms awaiting evaluation.
    On the kernel path the pending instance is shared per
    ``(action, sigma, instance)``, so its service-call set and coded form
    stay warm when isomorphic regions of the state space replay the action.
    """
    declared = frozenset(action.params)
    if frozenset(sigma) != declared:
        raise IllegalParameters(
            f"substitution binds {sorted(sigma, key=repr)}, action "
            f"{action.name!r} declares {sorted(declared, key=repr)}")
    kernel = kernel_for(dcds)
    if kernel is not None:
        sigma_items = _sigma_items(sigma)
        pending = kernel.do_action_instance(
            action, sigma_items, instance,
            lambda effect: _ground_effect_cached(
                effect, sigma_items, instance, dcds.data.initial_adom))
        if pending is not None:
            return pending
    produced: set = set()
    for effect in action.effects:
        produced.update(ground_effect(dcds, instance, effect, sigma))
    return Instance._trusted(frozenset(produced))


def calls_of(pending: Instance) -> List[ServiceCall]:
    """``CALLS(I)``: the ground service calls in a pending instance, sorted."""
    return sorted(pending.service_calls(), key=repr)


def evaluate_calls(
    dcds: DCDS, pending: Instance, evaluation: CallEvaluation,
    check_constraints: bool = True
) -> Optional[Instance]:
    """Apply a service-call evaluation and check equality constraints.

    Returns the successor instance, or ``None`` when the evaluation violates
    some equality constraint (such successors do not exist — condition 4 of
    EXECS / N-EXECS).

    On the kernel path the substitution and constraint check run over
    integer codes and the successor comes back from the instance interner:
    every distinct successor instance is materialized (and hashed) once per
    process, and constraint-violating evaluations never materialize one.
    """
    kernel = kernel_for(dcds)
    if kernel is not None:
        missing = pending.service_calls() - set(evaluation)
        if missing:
            raise InstanceError(
                f"unresolved service calls: {sorted_values(missing)}")
        handled, successor = kernel.evaluate_calls(
            pending, evaluation, check_constraints)
        if handled:
            return successor
    successor = pending.apply_call_map(evaluation)
    if check_constraints and not dcds.data.satisfies_constraints(successor):
        return None
    return successor


def clear_subproblem_caches() -> None:
    """Release the memoized evaluation subproblems.

    The ``lru_cache``s here and in :mod:`repro.fol.evaluation` /
    :mod:`repro.engine.fingerprint` key on (immutable) instances, which
    pins explored state databases in memory until eviction. They are
    bounded, so this is never required for correctness — call it between
    unrelated long-running explorations to return the memory early.
    """
    from repro.engine.fingerprint import instance_fingerprint
    from repro.fol.evaluation import clear_domain_caches

    _legal_subs_cached.cache_clear()
    _ground_effect_cached.cache_clear()
    _grounded_head.cache_clear()
    _substituted.cache_clear()
    instance_fingerprint.cache_clear()
    clear_domain_caches()
    clear_kernel_caches()


def successor_via(
    dcds: DCDS, instance: Instance, action: Action,
    sigma: ParamSubstitution, evaluation: CallEvaluation,
    check_constraints: bool = True
) -> Optional[Instance]:
    """One-shot: ``DO`` then evaluate calls then constraint check."""
    pending = do_action(dcds, instance, action, sigma)
    missing = pending.service_calls() - set(evaluation)
    if missing:
        raise ExecutionError(
            f"evaluation misses calls {sorted(missing, key=repr)}")
    return evaluate_calls(dcds, pending, evaluation, check_constraints)
