"""The process layer of a DCDS (Section 2.2).

``P = <F, A, rho>``: service functions, actions, and condition-action rules.

An action ``alpha(p1, ..., pn) : {e1, ..., em}`` has effect specifications
``e = q+ ∧ Q− ~> E`` where ``q+`` is a UCQ selecting bindings, ``Q−`` an
arbitrary FO filter over the variables of ``q+``, and ``E`` a set of facts
whose terms may be constants, parameters, free variables of ``q+``, and
service calls over those.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterator, Optional, Tuple

from repro.errors import ProcessError
from repro.fol.ast import (
    And, Atom, Formula, TRUE, is_positive_existential)
from repro.relational.values import (
    Param, ServiceCall, Var, is_value, term_parameters, term_service_calls,
    term_values, term_variables)


@dataclass(frozen=True)
class ServiceFunction:
    """Interface to an external service: a function name with an arity.

    ``deterministic`` may override the DCDS-level semantics per function,
    enabling the mixed semantics of Section 6 (``None`` = inherit).
    """

    name: str
    arity: int
    deterministic: Optional[bool] = None

    def __repr__(self) -> str:
        return f"{self.name}/{self.arity}"


@dataclass(frozen=True)
class EffectSpec:
    """One effect specification ``q+ ∧ Q− ~> E``.

    ``q_plus`` must be positive existential (UCQ); ``q_minus`` is an arbitrary
    FO formula whose free variables are included in those of ``q_plus`` (plus
    parameters); ``head`` is the tuple of facts to produce.
    """

    q_plus: Formula
    q_minus: Formula
    head: Tuple[Atom, ...]

    def __post_init__(self):
        if not is_positive_existential(self.q_plus):
            raise ProcessError(
                f"q+ must be a UCQ, got {self.q_plus!r}")
        plus_vars = self.q_plus.free_variables()
        minus_extra = self.q_minus.free_variables() - plus_vars
        if minus_extra:
            raise ProcessError(
                f"Q- uses variables {sorted(v.name for v in minus_extra)} "
                f"not free in q+")
        for atom_ in self.head:
            for variable in self.head_variables_of(atom_):
                if variable not in plus_vars:
                    raise ProcessError(
                        f"head {atom_!r} uses variable {variable!r} "
                        f"not free in q+ {self.q_plus!r}")

    @staticmethod
    def head_variables_of(atom_: Atom) -> Iterator[Var]:
        for term in atom_.terms:
            yield from term_variables(term)

    @property
    def body(self) -> Formula:
        """``q+ ∧ Q−`` as a single formula."""
        return And.of(self.q_plus, self.q_minus)

    def __repr__(self) -> str:
        head = ", ".join(repr(atom_) for atom_ in self.head)
        return f"{self.body!r} ~> {{{head}}}"

    def parameters(self) -> FrozenSet[Param]:
        found = set(self.q_plus.parameters()) | set(self.q_minus.parameters())
        for atom_ in self.head:
            for term in atom_.terms:
                found.update(term_parameters(term))
        return frozenset(found)

    def service_calls(self) -> FrozenSet[ServiceCall]:
        """The (non-ground) service-call templates in the head."""
        found = set()
        for atom_ in self.head:
            for term in atom_.terms:
                found.update(term_service_calls(term))
        return frozenset(found)

    def head_relations(self) -> FrozenSet[str]:
        return frozenset(atom_.relation for atom_ in self.head)

    def constants(self) -> FrozenSet[Any]:
        found = set(self.q_plus.constants()) | set(self.q_minus.constants())
        for atom_ in self.head:
            for term in atom_.terms:
                found.update(term_values(term))
        return frozenset(found)


def effect(q_plus: Formula, head: Tuple[Atom, ...],
           q_minus: Formula = TRUE) -> EffectSpec:
    """Convenience constructor with the filter defaulting to ``true``."""
    return EffectSpec(q_plus, q_minus, tuple(head))


@dataclass(frozen=True)
class Action:
    """``alpha(p1, ..., pn) : {e1, ..., em}``."""

    name: str
    params: Tuple[Param, ...]
    effects: Tuple[EffectSpec, ...]

    def __post_init__(self):
        if len(set(self.params)) != len(self.params):
            raise ProcessError(f"action {self.name!r} has duplicate parameters")
        declared = frozenset(self.params)
        for effect_ in self.effects:
            undeclared = effect_.parameters() - declared
            if undeclared:
                raise ProcessError(
                    f"action {self.name!r} effect uses undeclared parameters "
                    f"{sorted(p.name for p in undeclared)}")

    def __repr__(self) -> str:
        params = ", ".join(p.name for p in self.params)
        return f"{self.name}({params})"

    def service_calls(self) -> FrozenSet[ServiceCall]:
        found = set()
        for effect_ in self.effects:
            found.update(effect_.service_calls())
        return frozenset(found)

    def service_functions_used(self) -> FrozenSet[Tuple[str, int]]:
        return frozenset((call.function, call.arity)
                         for call in self.service_calls())

    def head_relations(self) -> FrozenSet[str]:
        found = set()
        for effect_ in self.effects:
            found.update(effect_.head_relations())
        return frozenset(found)

    def constants(self) -> FrozenSet[Any]:
        found = set()
        for effect_ in self.effects:
            found.update(effect_.constants())
        return frozenset(found)


@dataclass(frozen=True)
class CARule:
    """A condition-action rule ``Q |-> alpha``.

    The free variables of ``Q`` must be exactly the parameters of the action;
    we represent them as :class:`Param` terms inside the query.
    """

    query: Formula
    action: str

    def __post_init__(self):
        free = self.query.free_variables()
        if free:
            raise ProcessError(
                f"rule query must bind parameters via $p terms and quantify "
                f"other variables; found free variables "
                f"{sorted(v.name for v in free)}")

    def __repr__(self) -> str:
        return f"{self.query!r} |-> {self.action}"


@dataclass(frozen=True)
class ProcessLayer:
    """``P = <F, A, rho>``."""

    functions: Tuple[ServiceFunction, ...]
    actions: Tuple[Action, ...]
    rules: Tuple[CARule, ...]

    def __post_init__(self):
        names = [function.name for function in self.functions]
        if len(set(names)) != len(names):
            raise ProcessError("duplicate service function name")
        action_names = [action.name for action in self.actions]
        if len(set(action_names)) != len(action_names):
            raise ProcessError("duplicate action name")
        declared = {(f.name, f.arity) for f in self.functions}
        for action in self.actions:
            missing = action.service_functions_used() - declared
            if missing:
                raise ProcessError(
                    f"action {action.name!r} calls undeclared services "
                    f"{sorted(missing)}")
        known_actions = set(action_names)
        for rule in self.rules:
            if rule.action not in known_actions:
                raise ProcessError(
                    f"rule {rule!r} refers to unknown action")
            action = next(a for a in self.actions if a.name == rule.action)
            rule_params = rule.query.parameters()
            if rule_params != frozenset(action.params):
                raise ProcessError(
                    f"rule for {rule.action!r} binds parameters "
                    f"{sorted(p.name for p in rule_params)}, action declares "
                    f"{sorted(p.name for p in action.params)}")

    def action(self, name: str) -> Action:
        for candidate in self.actions:
            if candidate.name == name:
                return candidate
        raise ProcessError(f"unknown action {name!r}")

    def function(self, name: str) -> ServiceFunction:
        for candidate in self.functions:
            if candidate.name == name:
                return candidate
        raise ProcessError(f"unknown service function {name!r}")

    def rules_for(self, action_name: str) -> Tuple[CARule, ...]:
        return tuple(rule for rule in self.rules
                     if rule.action == action_name)

    def constants(self) -> FrozenSet[Any]:
        found = set()
        for action in self.actions:
            found.update(action.constants())
        for rule in self.rules:
            found.update(rule.query.constants())
        return frozenset(found)
