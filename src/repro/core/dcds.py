"""The DCDS itself: a data layer plus a process layer (Section 2).

The service semantics (deterministic, Section 4, vs. nondeterministic,
Section 5) is a property of how the transition system is constructed, so it
is carried by the DCDS as :class:`ServiceSemantics`; individual functions may
override it for the mixed semantics of Section 6.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Any, FrozenSet, Iterable, Tuple

from repro.errors import ProcessError, SchemaError
from repro.core.data_layer import DataLayer
from repro.core.process_layer import Action, CARule, ProcessLayer


class ServiceSemantics(enum.Enum):
    """How external services behave across invocations."""

    DETERMINISTIC = "deterministic"
    NONDETERMINISTIC = "nondeterministic"


@dataclass(frozen=True)
class DCDS:
    """``S = <D, P>`` with a chosen service semantics."""

    data: DataLayer
    process: ProcessLayer
    semantics: ServiceSemantics = ServiceSemantics.DETERMINISTIC
    name: str = "dcds"

    def __post_init__(self):
        schema = self.data.schema
        for action in self.process.actions:
            for effect in action.effects:
                for atom_ in effect.q_plus.atoms():
                    self._check_atom(schema, atom_, action)
                for atom_ in effect.q_minus.atoms():
                    self._check_atom(schema, atom_, action)
                for atom_ in effect.head:
                    self._check_atom(schema, atom_, action)
        for rule in self.process.rules:
            for atom_ in rule.query.atoms():
                if atom_.relation not in schema:
                    raise SchemaError(
                        f"rule {rule!r} mentions undeclared relation "
                        f"{atom_.relation!r}")

    @staticmethod
    def _check_atom(schema, atom_, action: Action) -> None:
        if atom_.relation not in schema:
            raise SchemaError(
                f"action {action.name!r} mentions undeclared relation "
                f"{atom_.relation!r}")
        if len(atom_.terms) != schema.arity(atom_.relation):
            raise SchemaError(
                f"action {action.name!r} uses {atom_.relation!r} with arity "
                f"{len(atom_.terms)}, schema says "
                f"{schema.arity(atom_.relation)}")

    # -- accessors -------------------------------------------------------------

    @property
    def schema(self):
        return self.data.schema

    @property
    def initial(self):
        return self.data.initial

    def known_constants(self) -> FrozenSet[Any]:
        """``ADOM(I0)`` plus constants mentioned in the process layer.

        The paper assumes wlog that all constants used in formulae appear in
        I0 (footnote 2); in practice specifications mention fresh constants
        (e.g. status literals), so we track the union.
        """
        return self.data.initial_adom | self.process.constants()

    def is_deterministic(self, function_name: str) -> bool:
        """Effective semantics of one service function (mixed semantics, §6)."""
        function = self.process.function(function_name)
        if function.deterministic is not None:
            return function.deterministic
        return self.semantics is ServiceSemantics.DETERMINISTIC

    def has_mixed_semantics(self) -> bool:
        default_det = self.semantics is ServiceSemantics.DETERMINISTIC
        return any(function.deterministic is not None
                   and function.deterministic != default_det
                   for function in self.process.functions)

    def with_semantics(self, semantics: ServiceSemantics) -> "DCDS":
        return replace(self, semantics=semantics)

    def size(self) -> int:
        """A rough size measure (relations + actions + effects + rules)."""
        effects = sum(len(action.effects) for action in self.process.actions)
        return (len(self.schema) + len(self.process.actions) + effects
                + len(self.process.rules))

    def spec_signature(self) -> Tuple[Any, ...]:
        """A hashable canonical summary of the whole specification.

        Two DCDSs with equal signatures have the same schema, initial
        instance, constraints, services, actions (with effects), CA rules,
        and semantics — the structural-equality notion used by the
        determinism regression tests and the differential harness. Renders
        through ``repr``/sorted facts, which are deterministic for every
        specification component.
        """
        return (
            self.semantics.value,
            repr(self.schema),
            tuple(f.sort_key() for f in self.initial.sorted_facts()),
            tuple(repr(c) for c in self.data.constraints),
            # repr is name/arity only; the per-function deterministic
            # override (Section 6 mixed semantics) changes verify() routing
            # and must be part of the signature.
            tuple((f.name, f.arity, f.deterministic)
                  for f in self.process.functions),
            tuple((action.name, tuple(repr(p) for p in action.params),
                   tuple(repr(e) for e in action.effects))
                  for action in self.process.actions),
            tuple(repr(rule) for rule in self.process.rules),
        )

    def describe(self) -> str:
        """Human-readable multi-line summary of the specification."""
        lines = [f"DCDS {self.name!r} ({self.semantics.value} services)"]
        lines.append(f"  schema: {self.schema!r}")
        lines.append(f"  I0: {self.initial!r}")
        for constraint in self.data.constraints:
            lines.append(f"  constraint: {constraint!r}")
        for function in self.process.functions:
            lines.append(f"  service: {function!r}")
        for action in self.process.actions:
            lines.append(f"  action {action!r}:")
            for effect in action.effects:
                lines.append(f"    {effect!r}")
        for rule in self.process.rules:
            lines.append(f"  rule: {rule!r}")
        return "\n".join(lines)
