"""The DCDS core: data layer, process layer, execution engine, builder."""

from repro.core.builder import (
    DCDSBuilder, parse_constraint, parse_effect, parse_facts, split_body)
from repro.core.data_layer import (
    DataLayer, EqualityConstraint, functional_dependency, key_constraint)
from repro.core.dcds import DCDS, ServiceSemantics
from repro.core.execution import (
    calls_of, do_action, enabled_moves, evaluate_calls, ground_effect,
    is_legal, legal_substitutions, successor_via)
from repro.core.process_layer import (
    Action, CARule, EffectSpec, ProcessLayer, ServiceFunction, effect)

__all__ = [
    "Action", "CARule", "DCDS", "DCDSBuilder", "DataLayer", "EffectSpec",
    "EqualityConstraint", "ProcessLayer", "ServiceFunction",
    "ServiceSemantics", "calls_of", "do_action", "effect", "enabled_moves",
    "evaluate_calls", "functional_dependency", "ground_effect", "is_legal",
    "key_constraint", "legal_substitutions", "parse_constraint",
    "parse_effect", "parse_facts", "split_body", "successor_via",
]
