"""Fluent builder for DCDS specifications.

Lets a DCDS be written close to the paper's notation::

    builder = DCDSBuilder(name="example41", constants={"a"})
    builder.schema("P/1", "Q/2", "R/1")
    builder.initial("P(a), Q(a, a)")
    builder.service("f/1")
    builder.service("g/1")
    builder.action("alpha",
                   "Q(a, a) & P(x) ~> R(x)",
                   "P(x) ~> P(x), Q(f(x), g(x))")
    builder.rule("true", "alpha")
    dcds = builder.build()

Effect syntax: ``body ~> head1, head2, ...`` where the body is an FO formula
(positive conjuncts become ``q+``, the rest become the filter ``Q−``) and the
heads are atoms whose terms may be service calls. Parameters are written
``$p`` in both rule conditions and effects.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.errors import ParseError, ProcessError
from repro.core.data_layer import (
    DataLayer, EqualityConstraint, functional_dependency, key_constraint)
from repro.core.dcds import DCDS, ServiceSemantics
from repro.core.process_layer import (
    Action, CARule, EffectSpec, ProcessLayer, ServiceFunction)
from repro.fol.ast import And, Atom, Eq, Formula, TRUE, is_positive_existential
from repro.fol.parser import FormulaParser, parse_formula, parse_head_atom
from repro.relational.instance import Fact, Instance
from repro.relational.schema import DatabaseSchema, parse_relation_spec
from repro.relational.values import Param, Var


def _split_top_level(text: str, separator: str) -> List[str]:
    """Split on a separator at paren depth 0, respecting quoted strings."""
    parts: List[str] = []
    depth = 0
    in_string = False
    start = 0
    index = 0
    while index < len(text):
        char = text[index]
        if in_string:
            if char == "'":
                in_string = False
        elif char == "'":
            in_string = True
        elif char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        elif depth == 0 and text.startswith(separator, index):
            parts.append(text[start:index])
            index += len(separator)
            start = index
            continue
        index += 1
    parts.append(text[start:])
    return parts


def parse_facts(text: str) -> List[Fact]:
    """Parse ``"P(a), Q(a, b), R()"`` — bare identifiers are constants."""
    facts: List[Fact] = []
    for chunk in _split_top_level(text, ","):
        chunk = chunk.strip()
        if not chunk:
            continue
        open_paren = chunk.index("(")
        name = chunk[:open_paren].strip()
        inner = chunk[open_paren + 1:chunk.rindex(")")].strip()
        terms: List[Any] = []
        if inner:
            for raw in _split_top_level(inner, ","):
                raw = raw.strip()
                if raw.startswith("'") and raw.endswith("'"):
                    terms.append(raw[1:-1])
                elif raw.lstrip("-").isdigit():
                    terms.append(int(raw))
                else:
                    terms.append(raw)
        facts.append(Fact(name, tuple(terms)))
    return facts


def parse_effect(text: str, constants: Iterable[str] = ()) -> EffectSpec:
    """Parse ``"body ~> head1, head2"`` into an :class:`EffectSpec`.

    Top-level positive-existential conjuncts of the body become ``q+``; the
    remaining conjuncts become the filter ``Q−``.
    """
    pieces = _split_top_level(text, "~>")
    if len(pieces) != 2:
        raise ParseError(f"effect must contain exactly one '~>': {text!r}")
    body_text, head_text = pieces
    body = parse_formula(body_text.strip(), constants)
    q_plus, q_minus = split_body(body)
    heads = tuple(
        parse_head_atom(chunk.strip(), constants)
        for chunk in _split_top_level(head_text, ",") if chunk.strip())
    if not heads:
        raise ParseError(f"effect has no head atoms: {text!r}")
    return EffectSpec(q_plus, q_minus, heads)


def split_body(body: Formula) -> Tuple[Formula, Formula]:
    """Split an effect body into ``(q+, Q−)``.

    Positive-existential top-level conjuncts go to ``q+``; everything else is
    the filter. If the whole body is positive it becomes ``q+`` wholesale.
    """
    if is_positive_existential(body):
        return body, TRUE
    if isinstance(body, And):
        plus = [sub for sub in body.subs if is_positive_existential(sub)]
        minus = [sub for sub in body.subs if not is_positive_existential(sub)]
        return And.of(*plus), And.of(*minus)
    # Entirely non-positive body: q+ is true, the body is all filter.
    return TRUE, body


def parse_constraint(text: str, constants: Iterable[str] = (),
                     name: str = "") -> EqualityConstraint:
    """Parse ``"P(x) & Q(y, z) -> x = y"`` into an equality constraint."""
    pieces = _split_top_level(text, "->")
    if len(pieces) != 2:
        raise ParseError(
            f"constraint must contain exactly one top-level '->': {text!r}")
    query = parse_formula(pieces[0].strip(), constants)
    equalities: List[Tuple[Any, Any]] = []
    for chunk in _split_top_level(pieces[1], "&"):
        parsed = parse_formula(chunk.strip(), constants)
        if not isinstance(parsed, Eq):
            raise ParseError(
                f"constraint right-hand side must be equalities: {chunk!r}")
        equalities.append((parsed.left, parsed.right))
    return EqualityConstraint(query, tuple(equalities), name)


class DCDSBuilder:
    """Accumulates the pieces of a DCDS and validates on :meth:`build`."""

    def __init__(self, name: str = "dcds",
                 constants: Iterable[str] = ()):
        self.name = name
        self.constants: Set[str] = set(constants)
        self._schema_specs: List[Any] = []
        self._initial_facts: List[Fact] = []
        self._constraints: List[EqualityConstraint] = []
        self._functions: List[ServiceFunction] = []
        self._actions: List[Action] = []
        self._rules: List[CARule] = []

    # -- data layer -----------------------------------------------------------

    def schema(self, *specs: Any) -> "DCDSBuilder":
        self._schema_specs.extend(specs)
        return self

    def initial(self, facts: Union[str, Iterable[Fact]]) -> "DCDSBuilder":
        if isinstance(facts, str):
            self._initial_facts.extend(parse_facts(facts))
        else:
            self._initial_facts.extend(facts)
        return self

    def constraint(self, spec: Union[str, EqualityConstraint],
                   name: str = "") -> "DCDSBuilder":
        if isinstance(spec, str):
            spec = parse_constraint(spec, self.constants, name)
        self._constraints.append(spec)
        return self

    def key(self, relation: str, *key_positions: int) -> "DCDSBuilder":
        """Declare key positions (0-based) for a relation."""
        arity = self._arity_of(relation)
        self._constraints.extend(
            key_constraint(relation, arity, tuple(key_positions),
                           name=f"key:{relation}"))
        return self

    def functional(self, relation: str, determinant: Tuple[int, ...],
                   dependent: int) -> "DCDSBuilder":
        arity = self._arity_of(relation)
        self._constraints.append(
            functional_dependency(relation, arity, determinant, dependent))
        return self

    def _arity_of(self, relation: str) -> int:
        for spec in self._schema_specs:
            parsed = spec if not isinstance(spec, str) \
                else parse_relation_spec(spec)
            if not isinstance(parsed, tuple) and parsed.name == relation:
                return parsed.arity
        raise ProcessError(f"relation {relation!r} not declared yet")

    # -- process layer ----------------------------------------------------------

    def service(self, spec: str,
                deterministic: Optional[bool] = None) -> "DCDSBuilder":
        """Declare a service function from ``"f/2"`` notation."""
        name, _, arity = spec.partition("/")
        self._functions.append(
            ServiceFunction(name.strip(), int(arity), deterministic))
        return self

    def action(self, signature: str, *effects: Union[str, EffectSpec]
               ) -> "DCDSBuilder":
        """Declare an action. Signature: ``"alpha"`` or ``"alpha(p, q)"``."""
        signature = signature.strip()
        if "(" in signature:
            name = signature[:signature.index("(")].strip()
            inner = signature[signature.index("(") + 1:signature.rindex(")")]
            params = tuple(Param(p.strip()) for p in inner.split(",")
                           if p.strip())
        else:
            name, params = signature, ()
        parsed_effects = tuple(
            parse_effect(item, self.constants) if isinstance(item, str)
            else item
            for item in effects)
        self._actions.append(Action(name, params, parsed_effects))
        return self

    def rule(self, condition: Union[str, Formula], action: str
             ) -> "DCDSBuilder":
        if isinstance(condition, str):
            condition = parse_formula(condition, self.constants)
        self._rules.append(CARule(condition, action))
        return self

    # -- assembly -----------------------------------------------------------------

    def build(self,
              semantics: ServiceSemantics = ServiceSemantics.DETERMINISTIC
              ) -> DCDS:
        schema = DatabaseSchema.of(*self._schema_specs)
        data = DataLayer(schema, tuple(self._constraints),
                         Instance(self._initial_facts))
        process = ProcessLayer(tuple(self._functions), tuple(self._actions),
                               tuple(self._rules))
        return DCDS(data, process, semantics, self.name)

    def build_deterministic(self) -> DCDS:
        return self.build(ServiceSemantics.DETERMINISTIC)

    def build_nondeterministic(self) -> DCDS:
        return self.build(ServiceSemantics.NONDETERMINISTIC)
