"""The data layer of a DCDS (Section 2.1).

A data layer ``D = <C, R, E, I0>`` bundles a relational schema, a finite set
of equality constraints, and the initial instance. The infinite domain ``C``
is implicit (any hashable value); what matters operationally is ``ADOM(I0)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, Iterable, List, Tuple

from repro.errors import ConstraintViolation, SchemaError
from repro.fol.ast import Formula
from repro.fol.evaluation import answers, evaluation_domain
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema
from repro.relational.values import Param, Var, is_value


@dataclass(frozen=True)
class EqualityConstraint:
    """An equality constraint ``Q -> z1 = y1 & ... & zk = yk``.

    ``query`` is a domain-independent FO query; each pair in ``equalities``
    relates free variables of the query and/or constants. The constraint is
    satisfied by an instance when every answer of the query equates the
    corresponding terms (Section 2.1).
    """

    query: Formula
    equalities: Tuple[Tuple[Any, Any], ...]
    name: str = ""

    def __post_init__(self):
        free = self.query.free_variables()
        for left, right in self.equalities:
            for term in (left, right):
                if isinstance(term, Param):
                    raise SchemaError(
                        "equality constraints cannot mention parameters")
                if isinstance(term, Var) and term not in free:
                    raise SchemaError(
                        f"equality term {term!r} is not a free variable "
                        f"of the constraint query")

    def __repr__(self) -> str:
        pairs = " & ".join(f"{l!r} = {r!r}" for l, r in self.equalities)
        label = f"{self.name}: " if self.name else ""
        return f"{label}{self.query!r} -> {pairs}"

    def satisfied_by(self, instance: Instance,
                     extra_domain: Iterable[Any] = ()) -> bool:
        """Check the constraint against an instance."""
        domain = evaluation_domain(instance, self.query, extra_domain)
        for theta in answers(self.query, instance, domain=domain):
            for left, right in self.equalities:
                left_value = theta.get(left, left) if isinstance(left, Var) \
                    else left
                right_value = theta.get(right, right) if isinstance(right, Var) \
                    else right
                if left_value != right_value:
                    return False
        return True

    def violations(self, instance: Instance,
                   extra_domain: Iterable[Any] = ()) -> List[dict]:
        """The answers of the query that violate some equality (diagnostics)."""
        domain = evaluation_domain(instance, self.query, extra_domain)
        found = []
        for theta in answers(self.query, instance, domain=domain):
            for left, right in self.equalities:
                left_value = theta.get(left, left) if isinstance(left, Var) \
                    else left
                right_value = theta.get(right, right) if isinstance(right, Var) \
                    else right
                if left_value != right_value:
                    found.append(theta)
                    break
        return found


def functional_dependency(relation: str, arity: int,
                          determinant: Tuple[int, ...],
                          dependent: int, name: str = "") -> EqualityConstraint:
    """An FD ``determinant -> dependent`` on a relation, as an equality constraint.

    Positions are 0-based. Used e.g. to declare keys (proofs of Theorems 4.1
    and 6.1 rely on key/FD constraints).
    """
    from repro.fol.ast import And, Atom

    left_vars = tuple(Var(f"u{i}") for i in range(arity))
    right_vars = tuple(
        left_vars[i] if i in determinant else Var(f"w{i}")
        for i in range(arity))
    query = And.of(Atom(relation, left_vars), Atom(relation, right_vars))
    constraint_name = name or (
        f"fd:{relation}[{','.join(map(str, determinant))}]->{dependent}")
    return EqualityConstraint(
        query, ((left_vars[dependent], right_vars[dependent]),),
        constraint_name)


def key_constraint(relation: str, arity: int, key_positions: Tuple[int, ...],
                   name: str = "") -> List[EqualityConstraint]:
    """Key positions determine every other position (one FD per dependent)."""
    return [
        functional_dependency(relation, arity, key_positions, position,
                              name=name and f"{name}:{position}")
        for position in range(arity) if position not in key_positions]


@dataclass(frozen=True)
class DataLayer:
    """``D = <C, R, E, I0>`` — schema, equality constraints, initial instance."""

    schema: DatabaseSchema
    constraints: Tuple[EqualityConstraint, ...]
    initial: Instance

    def __post_init__(self):
        self.initial.validate(self.schema)
        for constraint in self.constraints:
            for atom_ in constraint.query.atoms():
                if atom_.relation not in self.schema:
                    raise SchemaError(
                        f"constraint {constraint!r} mentions undeclared "
                        f"relation {atom_.relation!r}")
                if len(atom_.terms) != self.schema.arity(atom_.relation):
                    raise SchemaError(
                        f"constraint {constraint!r} uses {atom_.relation!r} "
                        f"with wrong arity")
        violated = [c for c in self.constraints
                    if not c.satisfied_by(self.initial)]
        if violated:
            raise ConstraintViolation(
                f"initial instance violates constraints: {violated}")

    @property
    def initial_adom(self) -> FrozenSet[Any]:
        return self.initial.active_domain()

    def satisfies_constraints(self, instance: Instance) -> bool:
        """True when the instance satisfies every equality constraint."""
        extra = self.initial_adom
        return all(constraint.satisfied_by(instance, extra)
                   for constraint in self.constraints)

    def check_constraints(self, instance: Instance) -> None:
        """Raise :class:`ConstraintViolation` with diagnostics on failure."""
        extra = self.initial_adom
        for constraint in self.constraints:
            broken = constraint.violations(instance, extra)
            if broken:
                raise ConstraintViolation(
                    f"constraint {constraint!r} violated by {broken[:3]}")

    def without_constraints(self) -> "DataLayer":
        """The data layer of the positive approximate (Section 4.3)."""
        return DataLayer(self.schema, (), self.initial)
