"""Witness and counterexample certificates for verification verdicts.

``pipeline.verify`` answers yes/no; this module turns the two decidable
answer *shapes* into checkable evidence:

* a :class:`Witness` certifies a positive ``EF``/``EF_live`` verdict — a
  minimal run from the initial state to a state satisfying the body, guard
  values live in every entered state;
* a :class:`Violation` certifies a negative ``AG``/``AG_live`` verdict —
  the dual µ-witness: a minimal run to a state violating the body (or,
  for the guarded encoding, to a state whose active domain dropped a
  guard value).

Certificates are plain data: a tuple of :class:`TraceStep` entries carrying
the state, the action label of the edge taken into it, the service-call
results that edge minted, the remaining rank (distance to discharge), and
the subformula the step discharges. Extraction
(:func:`extract_certificate`) walks the transition system's predecessor
index backwards from the terminal states — rank-annotated µ-approximants,
see :mod:`repro.mucalc.engine.witness` — optionally bounded by the
compiled checker's converged fixpoint cell. Crucially, a certificate can
be validated *without* the engine that produced it:
:mod:`repro.mucalc.certify` replays the run against the raw transition
system with an independent evaluator, which is what the differential
suites pin.

``REPRO_NO_WITNESS=1`` disables extraction in the pipeline (see
:mod:`repro.env`); this module itself has no global state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Optional, Tuple

from repro.mucalc.ast import Live, MuFormula
from repro.mucalc.ctl import (
    GuardedShape, invariant_shape, reachability_shape)
from repro.mucalc.engine.onthefly import is_state_local
from repro.errors import ReproError
from repro.mucalc.engine.witness import (
    RawTrace, body_holds, call_bindings, guard_live, violation_trace,
    witness_trace)
from repro.relational.values import Var
from repro.semantics.transition_system import State, TransitionSystem


@dataclass(frozen=True)
class TraceStep:
    """One state of a certificate run.

    ``action`` is the label of the edge taken *into* the state (``None``
    for the initial step), ``call_bindings`` the service-call results that
    edge minted, ``rank`` the number of steps remaining until the run
    discharges, and ``discharges`` the subformula this step's presence
    discharges (a fixpoint unfolding for intermediate steps, the terminal
    condition for the last).
    """

    state: State
    action: Optional[str]
    rank: int
    discharges: str
    call_bindings: Tuple[Tuple[Any, Any], ...] = ()


@dataclass(frozen=True)
class Certificate:
    """Shared shape of :class:`Witness` and :class:`Violation`."""

    formula: MuFormula
    body: MuFormula
    guard: Tuple[Any, ...]
    steps: Tuple[TraceStep, ...]

    kind: ClassVar[str] = "certificate"

    @property
    def states(self) -> Tuple[State, ...]:
        return tuple(step.state for step in self.steps)

    @property
    def final(self) -> State:
        return self.steps[-1].state

    @property
    def length(self) -> int:
        """Number of edges (0 for a single-state certificate)."""
        return len(self.steps) - 1

    def trace(self, ts: TransitionSystem):
        """Diagnostics-style ``(state, db, label)`` triples (see
        :func:`repro.mucalc.diagnostics.render_trace`)."""
        return [(step.state, ts.db(step.state), step.action)
                for step in self.steps]


class Witness(Certificate):
    """Certifies a *positive* reachability (``EF``-shape) verdict."""

    kind: ClassVar[str] = "witness"


class Violation(Certificate):
    """Certifies a *negative* invariant (``AG``-shape) verdict."""

    kind: ClassVar[str] = "violation"


@dataclass(frozen=True)
class ExtractionOutcome:
    """Certificate plus the reason token surfaced in checking stats."""

    certificate: Optional[Certificate]
    reason: str


def _guard_repr(guard: Tuple[Any, ...]) -> str:
    return repr(Live(guard))


def _support(ts: TransitionSystem, engine, kind: str):
    """Support set from the engine's converged outermost fixpoint cell.

    A witness run lies inside the µ-extension; a violation run's
    non-terminal states lie outside the ν-extension (its terminal may not —
    the extractor exempts terminals). ``None`` when no engine/cell is
    available; extraction is then unrestricted, same result, more states
    ranked."""
    if engine is None:
        return None
    compiled = getattr(engine, "compiled", None)
    root = getattr(compiled, "root", None)
    if root is None or root.kind != "fix":
        return None
    extension = engine.fixpoint_extension(root.cell.index)
    if extension is None:
        return None
    return extension if kind == "witness" else ts.states - extension


def _annotate(ts: TransitionSystem, raw: RawTrace, body: MuFormula,
              guard: Tuple[Any, ...], kind: str
              ) -> Tuple[TraceStep, ...]:
    if kind == "witness":
        unfold = f"<->({_guard_repr(guard)} & Z)" if guard else "<->Z"
    else:
        unfold = f"~[-]({_guard_repr(guard)} & Z)" if guard else "~[-]Z"
    steps = []
    last = len(raw) - 1
    previous: Optional[State] = None
    for index, (label, state) in enumerate(raw):
        if index < last:
            discharges = unfold
        elif kind == "witness":
            discharges = repr(body)
        elif not body_holds(ts, state, body):
            discharges = f"~({body!r})"
        else:
            discharges = f"~{_guard_repr(guard)}"
        bindings = call_bindings(previous, state) if previous is not None \
            else ()
        steps.append(TraceStep(
            state=state, action=label, rank=last - index,
            discharges=discharges, call_bindings=bindings))
        previous = state
    return tuple(steps)


def extract(ts: TransitionSystem, formula: MuFormula, holds: bool,
            engine=None) -> ExtractionOutcome:
    """Try to certify a verdict; always explains the outcome.

    ``engine`` is an optional :class:`~repro.mucalc.engine.evaluator.
    CompiledChecker` that already evaluated ``formula`` over ``ts`` (see
    :meth:`ModelChecker.engine_for`). It contributes two already-computed
    sets: the converged root fixpoint cell bounds the extraction support,
    and the body's own extension (:meth:`CompiledChecker.body_extension`,
    a memo read) replaces the state-by-state local scan — the same set,
    since for a state-local body both confine quantifiers to the active
    domain. Correctness never depends on the engine being present.
    """
    shape: Optional[GuardedShape] = reachability_shape(formula)
    kind = "witness"
    if shape is None:
        shape = invariant_shape(formula)
        kind = "violation"
    if shape is None:
        return ExtractionOutcome(None, "unrecognized-shape")
    if kind == "witness" and not holds:
        # A refuted EF has no finite run as evidence (the certificate
        # would be the whole state space); same for a confirmed AG below.
        return ExtractionOutcome(None, "reachability-fails")
    if kind == "violation" and holds:
        return ExtractionOutcome(None, "invariant-holds")
    body, guard = shape.body, shape.guard
    if body.free_pvars() or body.free_ivars():
        return ExtractionOutcome(None, "open-body")
    if not is_state_local(body):
        return ExtractionOutcome(None, "non-state-local-body")
    if any(isinstance(term, Var) for term in guard):
        return ExtractionOutcome(None, "non-ground-guard")
    support = _support(ts, engine, kind)
    extension = None
    if engine is not None:
        try:
            extension = engine.body_extension()
        except ReproError:
            extension = None
    if kind == "witness":
        targets = None if extension is None else frozenset(extension)
        raw = witness_trace(ts, body, guard, support, targets=targets)
    else:
        bad = None if extension is None \
            else frozenset(ts.states) - extension
        raw = violation_trace(ts, body, guard, support, bad=bad)
    if raw is None:
        return ExtractionOutcome(None, "no-certifying-run")
    steps = _annotate(ts, raw, body, guard, kind)
    cls = Witness if kind == "witness" else Violation
    return ExtractionOutcome(cls(formula, body, guard, steps), kind)


def extract_certificate(ts: TransitionSystem, formula: MuFormula,
                        holds: bool, engine=None) -> Optional[Certificate]:
    """Certificate for the verdict, or ``None`` (shape/polarity permitting
    no finite evidence — use :func:`extract` for the reason)."""
    return extract(ts, formula, holds, engine).certificate


def render_certificate(ts: TransitionSystem,
                       certificate: Certificate) -> str:
    """Human-readable rendering (one block per step, databases shown)."""
    noun = "steps" if certificate.length != 1 else "step"
    lines = [f"{certificate.kind} ({certificate.length} {noun}) "
             f"for {certificate.formula!r}"]
    for index, step in enumerate(certificate.steps):
        arrow = f"--[{step.action}]--> " if step.action else ""
        lines.append(f"  {index}: {arrow}{ts.db(step.state)!r}")
        lines.append(f"     discharges {step.discharges}")
        if step.call_bindings:
            minted = ", ".join(f"{call!r}={value!r}"
                               for call, value in step.call_bindings)
            lines.append(f"     minted {minted}")
    return "\n".join(lines)
