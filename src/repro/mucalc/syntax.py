"""Syntactic analysis of µ-calculus formulas: monotonicity, fragments.

The fragments of Section 3 are syntactic shapes:

* **µL** — anything produced by the grammar, subject only to syntactic
  monotonicity of fixpoints;
* **µLA** (history-preserving) — quantification only via
  ``E x.(LIVE(x) & Phi)`` and ``A x.(LIVE(x) -> Phi)``;
* **µLP** (persistence-preserving) — µLA where additionally every modality
  is guarded: ``<->(LIVE(x...) & Phi)`` / ``[-](LIVE(x...) & Phi)`` (or the
  implication forms), with ``x...`` exactly the free variables of ``Phi``
  *after substituting each bound predicate variable by its bounding fixpoint
  formula* (the proviso of Section 3.2).
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Optional, Tuple

from repro.errors import FragmentError, MonotonicityError
from repro.mucalc.ast import (
    Box, Diamond, Live, MAnd, MExists, MForall, MNot, MOr, Mu, MuFormula,
    Nu, PredVar, QF)
from repro.relational.values import Var


class Fragment(enum.Enum):
    """The verification logics of the paper, ordered by inclusion."""

    MU_LP = "muLP"
    MU_LA = "muLA"
    MU_L = "muL"

    def includes(self, other: "Fragment") -> bool:
        order = {Fragment.MU_LP: 0, Fragment.MU_LA: 1, Fragment.MU_L: 2}
        return order[other] <= order[self]


def check_monotone(formula: MuFormula) -> None:
    """Raise :class:`MonotonicityError` if some fixpoint variable occurs
    under an odd number of negations within its binder."""

    def walk(node: MuFormula, polarity: Dict[str, int]) -> None:
        if isinstance(node, PredVar):
            if node.name in polarity and polarity[node.name] % 2 == 1:
                raise MonotonicityError(
                    f"predicate variable {node.name} occurs negatively")
            return
        if isinstance(node, MNot):
            flipped = {name: count + 1 for name, count in polarity.items()}
            walk(node.sub, flipped)
            return
        if isinstance(node, (Mu, Nu)):
            inner = dict(polarity)
            inner[node.var] = 0
            walk(node.sub, inner)
            return
        for child in node.children():
            walk(child, polarity)

    walk(formula, {})


def free_ivars_unfolded(
    formula: MuFormula,
    env: Optional[Dict[str, FrozenSet[Var]]] = None,
) -> FrozenSet[Var]:
    """Free individual variables under the µLP proviso.

    Occurrences of a bound predicate variable ``Z`` contribute the free
    individual variables of its bounding formula (which, by unfolding, equal
    the free variables of the binder's body with ``Z`` contributing nothing).
    ``env`` carries that information for predicate variables bound by
    *enclosing* binders when analyzing a subformula in context.
    """
    env = env or {}

    def compute(node: MuFormula,
                scope: Dict[str, FrozenSet[Var]]) -> FrozenSet[Var]:
        if isinstance(node, PredVar):
            return scope.get(node.name, frozenset())
        if isinstance(node, (Mu, Nu)):
            inner = dict(scope)
            inner[node.var] = frozenset()
            binder_free = compute(node.sub, inner)
            # A second pass with the binder's own free vars is unnecessary:
            # unfolding substitutes the same formula, adding no new variables.
            return binder_free
        if isinstance(node, (MExists, MForall)):
            return compute(node.sub, scope) - frozenset(node.variables)
        if isinstance(node, (QF, Live)):
            return node.free_ivars()
        result: FrozenSet[Var] = frozenset()
        for child in node.children():
            result |= compute(child, scope)
        return result

    return compute(formula, dict(env))


def _live_guard(node: MuFormula) -> Optional[Tuple[FrozenSet[Var], MuFormula]]:
    """Destructure ``LIVE(x...) & Phi`` or ``~LIVE(x...) | Phi``.

    Returns ``(guarded_vars, remainder)`` or ``None`` if the node does not
    have either guarded shape. A bare ``LIVE(x...)`` (or ``~LIVE(x...)``)
    is the degenerate guard with remainder ``true``.
    """
    if isinstance(node, Live):
        return node.free_ivars(), QF_TRUE
    if isinstance(node, MNot) and isinstance(node.sub, Live):
        return node.sub.free_ivars(), QF_TRUE
    if isinstance(node, MAnd):
        guards = [sub for sub in node.subs if isinstance(sub, Live)]
        rest = [sub for sub in node.subs if not isinstance(sub, Live)]
        if guards:
            variables = frozenset(
                v for guard in guards for v in guard.free_ivars())
            remainder = MAnd.of(*rest) if rest else QF_TRUE
            return variables, remainder
        return None
    if isinstance(node, MOr):
        # Recognize implication shapes: ~LIVE(x) | Phi, and
        # ~(LIVE(x) & Psi) | Phi  (i.e. LIVE(x) & Psi -> Phi, the way the
        # paper writes guarded universals in Examples 3.2/3.3).
        variables: set = set()
        rest: list = []
        found = False
        for sub in node.subs:
            if isinstance(sub, MNot) and isinstance(sub.sub, Live):
                variables.update(sub.sub.free_ivars())
                found = True
            elif isinstance(sub, MNot) and isinstance(sub.sub, MAnd) and \
                    any(isinstance(conjunct, Live)
                        for conjunct in sub.sub.subs):
                lives = [conjunct for conjunct in sub.sub.subs
                         if isinstance(conjunct, Live)]
                others = [conjunct for conjunct in sub.sub.subs
                          if not isinstance(conjunct, Live)]
                for guard in lives:
                    variables.update(guard.free_ivars())
                found = True
                if others:
                    rest.append(MNot(MAnd.of(*others)))
            else:
                rest.append(sub)
        if found:
            remainder = MOr.of(*rest) if rest else QF_TRUE
            return frozenset(variables), remainder
        return None
    return None


from repro.fol.ast import TRUE as _FO_TRUE  # noqa: E402

QF_TRUE = QF(_FO_TRUE)


def classify(formula: MuFormula) -> Fragment:
    """The tightest fragment the formula belongs to.

    Also enforces syntactic monotonicity (raising
    :class:`MonotonicityError` otherwise).
    """
    check_monotone(formula)
    if _is_muLP(formula):
        return Fragment.MU_LP
    if _is_muLA(formula):
        return Fragment.MU_LA
    return Fragment.MU_L


def formula_constants(formula: MuFormula) -> frozenset:
    """All data constants the formula mentions (QF atoms and LIVE guards).

    The quotient-mode adequacy gate of :func:`repro.pipeline.verify` needs
    these: canonical renaming fixes only the specification's known
    constants, so a formula naming any *other* value would be evaluated
    against renamed states and could change its verdict.
    """
    found = set()
    for node in formula.walk():
        if isinstance(node, QF):
            found |= node.query.constants()
        elif isinstance(node, Live):
            found.update(term for term in node.terms
                         if not isinstance(term, Var))
    return frozenset(found)


def is_in_fragment(formula: MuFormula, fragment: Fragment) -> bool:
    return fragment.includes(classify(formula))


def require_fragment(formula: MuFormula, fragment: Fragment) -> None:
    actual = classify(formula)
    if not fragment.includes(actual):
        raise FragmentError(
            f"formula is in {actual.value}, required {fragment.value}: "
            f"{formula!r}")


def _quantifier_guarded(node: MuFormula) -> bool:
    """Is a quantifier node in the µLA shape?"""
    if isinstance(node, MExists):
        guard = _live_guard(node.sub)
        if guard is None:
            return False
        variables, _ = guard
        return frozenset(node.variables) <= variables
    if isinstance(node, MForall):
        # A x. (LIVE(x) -> Phi) is represented as A x. (~LIVE(x) | Phi)
        # or, dually, A x. (LIVE(x) & Phi) is also within the fragment
        # (stronger than required).
        guard = _live_guard(node.sub)
        if guard is None:
            return False
        variables, _ = guard
        return frozenset(node.variables) <= variables
    return True


def _is_muLA(formula: MuFormula) -> bool:
    for node in formula.walk():
        if isinstance(node, (MExists, MForall)) \
                and not _quantifier_guarded(node):
            return False
    return True


def _is_muLP(formula: MuFormula) -> bool:
    if not _is_muLA(formula):
        return False
    verdict = [True]

    def visit(node: MuFormula, env: Dict[str, FrozenSet[Var]]) -> None:
        if not verdict[0]:
            return
        if isinstance(node, (Mu, Nu)):
            inner = dict(env)
            inner[node.var] = frozenset()
            inner[node.var] = free_ivars_unfolded(node.sub, inner)
            visit(node.sub, inner)
            return
        if isinstance(node, (Diamond, Box)):
            sub_free = free_ivars_unfolded(node.sub, env)
            if sub_free:
                guard = _live_guard(node.sub)
                if guard is None:
                    verdict[0] = False
                    return
                variables, remainder = guard
                # The proviso: the guard covers the free variables of the
                # remainder (computed with bound predicate variables
                # substituted by their bounding formulas).
                if free_ivars_unfolded(remainder, env) - variables:
                    verdict[0] = False
                    return
            visit(node.sub, env)
            return
        for child in node.children():
            visit(child, env)

    visit(formula, {})
    return verdict[0]
