"""Model checker for first-order µ-calculus over finite transition systems.

Implements the extension function of Figure 1 (plus ``LIVE``): ``evaluate``
maps a formula, an individual valuation ``v``, and a predicate valuation
``V`` to the set of states where the formula holds. Fixpoints are computed
by Knaster–Tarski iteration, sound because of syntactic monotonicity
(checked up front and cached per formula).

Two evaluation paths share this one public API:

* the **compiled path** (default) delegates to
  :mod:`repro.mucalc.engine` — the formula is compiled once per
  ``(checker, formula)`` pair into positive normal form with fixpoint
  cells, then evaluated with predecessor-index modalities, lazy
  LIVE-restricted quantifiers, cross-iteration memoization, and
  Emerson–Lei warm-started fixpoints; ``last_checking_stats`` reports the
  iteration/reset/memo counters of the most recent run;
* the **reference path** (``compiled=False``) is the seed-era recursive
  evaluator, kept verbatim (modulo lazy quantifier enumeration) as the
  semantic baseline the parity tests pin the compiled path against.

First-order quantification ranges over the *finite* value set of the
transition system (plus the formula's constants). Over the abstract
transition system of a run-bounded DCDS this agrees with the PROP()
translation of Theorem 4.4; over an arbitrary finite TS it is the natural
finite-domain semantics of µL.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, FrozenSet, Iterable, Mapping, Optional, Set, Tuple

from repro.errors import VerificationError
from repro.fol.evaluation import holds
from repro.mucalc.ast import (
    Box, Diamond, Live, MAnd, MExists, MForall, MNot, MOr, Mu, MuFormula,
    Nu, PredVar, QF)
from repro.mucalc.engine.bitset import BitsetChecker, bitset_enabled
from repro.mucalc.engine.compiler import compile_formula
from repro.mucalc.engine.evaluator import CompiledChecker
from repro.mucalc.syntax import check_monotone
from repro.relational.values import Var, is_value
from repro.semantics.transition_system import State, TransitionSystem
from repro.utils import sorted_values

Valuation = Dict[Var, Any]
PredValuation = Dict[str, FrozenSet[State]]


class ModelChecker:
    """Evaluates µL formulas over one finite transition system."""

    def __init__(self, ts: TransitionSystem,
                 extra_domain: Iterable[Any] = (),
                 compiled: bool = True):
        self.ts = ts
        self.states: FrozenSet[State] = ts.states
        self.compiled = compiled
        self._domain = frozenset(ts.values()) | frozenset(extra_domain)
        self._adom_cache: Dict[State, FrozenSet[Any]] = {}
        # Per-(checker, formula) caches: monotonicity verdicts, quantifier
        # domains, and compiled engines — all were recomputed on every
        # ``evaluate`` call by the seed checker, even inside fixpoint
        # iteration via the PROP()-style helpers.
        self._monotone_ok: Set[MuFormula] = set()
        self._domain_cache: Dict[MuFormula, FrozenSet[Any]] = {}
        self._engines: Dict[Tuple[MuFormula, type], CompiledChecker] = {}
        #: Counters of the most recent compiled evaluation (iterations,
        #: resets, peak extension size, memo hits); surfaced by
        #: ``pipeline.verify`` as ``VerificationReport.checking_stats``.
        self.last_checking_stats: Dict[str, Any] = {}

    # -- public API -----------------------------------------------------------

    def domain(self, formula: Optional[MuFormula] = None) -> FrozenSet[Any]:
        """Quantification domain: TS values plus the formula's constants.

        Memoized per formula — fixpoint iteration and diagnostics evaluate
        the same formula repeatedly."""
        if formula is None:
            return self._domain
        cached = self._domain_cache.get(formula)
        if cached is None:
            found = set(self._domain)
            for node in formula.walk():
                if isinstance(node, QF):
                    found.update(node.query.constants())
                elif isinstance(node, Live):
                    found.update(t for t in node.terms if is_value(t))
            cached = frozenset(found)
            self._domain_cache[formula] = cached
        return cached

    def evaluate(self, formula: MuFormula,
                 valuation: Optional[Valuation] = None,
                 predicates: Optional[PredValuation] = None
                 ) -> FrozenSet[State]:
        """The extension ``(Phi)^Upsilon_{v,V}`` (Figure 1)."""
        self._ensure_monotone(formula)
        if self.compiled:
            # Backend choice is re-read per formula: a kill-switch flip
            # between evaluations gets a fresh engine rather than a stale
            # cached one (the key carries the backend).
            backend = BitsetChecker if bitset_enabled() else CompiledChecker
            key = (formula, backend)
            engine = self._engines.get(key)
            if engine is None:
                engine = backend(
                    self.ts, compile_formula(formula),
                    self.domain(formula), adom=self._adom)
                self._engines[key] = engine
            result = engine.evaluate(valuation, predicates)
            self.last_checking_stats = engine.last_stats
            return result
        self.last_checking_stats = {"mode": "reference"}
        return self._eval(formula, dict(valuation or {}),
                          dict(predicates or {}),
                          self.domain(formula))

    def models(self, formula: MuFormula,
               valuation: Optional[Valuation] = None) -> bool:
        """``Upsilon |= Phi``: does the initial state satisfy the formula?"""
        free_p = formula.free_pvars()
        if free_p:
            raise VerificationError(
                f"formula has free predicate variables {sorted(free_p)}")
        unbound = formula.free_ivars() - set(valuation or {})
        if unbound:
            raise VerificationError(
                f"formula has unbound individual variables "
                f"{sorted(v.name for v in unbound)}")
        return self.ts.initial in self.evaluate(formula, valuation)

    def holding_states(self, formula: MuFormula) -> FrozenSet[State]:
        return self.evaluate(formula)

    def engine_for(self, formula: MuFormula) -> Optional[CompiledChecker]:
        """The cached compiled engine of ``formula``'s last evaluation.

        Used by the witness layer to read the converged fixpoint cells
        (:meth:`CompiledChecker.fixpoint_extension`) without re-evaluating.
        ``None`` on the reference path or before the first ``evaluate`` of
        the formula with the currently selected backend."""
        if not self.compiled:
            return None
        backend = BitsetChecker if bitset_enabled() else CompiledChecker
        return self._engines.get((formula, backend))

    # -- shared plumbing -------------------------------------------------------

    def _ensure_monotone(self, formula: MuFormula) -> None:
        if formula not in self._monotone_ok:
            check_monotone(formula)
            self._monotone_ok.add(formula)

    def _adom(self, state: State) -> FrozenSet[Any]:
        if state not in self._adom_cache:
            self._adom_cache[state] = self.ts.db(state).active_domain()
        return self._adom_cache[state]

    # -- reference evaluation (the seed-era recursive path) --------------------

    def _eval(self, formula: MuFormula, v: Valuation, V: PredValuation,
              domain: FrozenSet[Any]) -> FrozenSet[State]:
        if isinstance(formula, QF):
            return self._eval_query(formula, v)
        if isinstance(formula, Live):
            return self._eval_live(formula, v)
        if isinstance(formula, MNot):
            return self.states - self._eval(formula.sub, v, V, domain)
        if isinstance(formula, MAnd):
            result = self.states
            for sub in formula.subs:
                result &= self._eval(sub, v, V, domain)
                if not result:
                    break
            return result
        if isinstance(formula, MOr):
            result: FrozenSet[State] = frozenset()
            for sub in formula.subs:
                result |= self._eval(sub, v, V, domain)
                if result == self.states:
                    break
            return result
        if isinstance(formula, MExists):
            return self._eval_exists(formula, v, V, domain)
        if isinstance(formula, MForall):
            negated = MExists(formula.variables, MNot(formula.sub))
            return self.states - self._eval(negated, v, V, domain)
        if isinstance(formula, Diamond):
            target = self._eval(formula.sub, v, V, domain)
            return frozenset(
                state for state in self.states
                if self.ts.successors(state) & target)
        if isinstance(formula, Box):
            target = self._eval(formula.sub, v, V, domain)
            return frozenset(
                state for state in self.states
                if self.ts.successors(state) <= target)
        if isinstance(formula, PredVar):
            if formula.name not in V:
                raise VerificationError(
                    f"unbound predicate variable {formula.name}")
            return V[formula.name]
        if isinstance(formula, Mu):
            return self._fixpoint(formula, v, V, domain, least=True)
        if isinstance(formula, Nu):
            return self._fixpoint(formula, v, V, domain, least=False)
        raise VerificationError(f"cannot evaluate node {formula!r}")

    def _eval_query(self, formula: QF, v: Valuation) -> FrozenSet[State]:
        query = formula.query
        relevant = {var: value for var, value in v.items()
                    if var in query.free_variables()}
        missing = query.free_variables() - set(relevant)
        if missing:
            raise VerificationError(
                f"query {query!r} has unbound variables "
                f"{sorted(var.name for var in missing)}")
        return frozenset(
            state for state in self.states
            if holds(query, self.ts.db(state), relevant))

    def _eval_live(self, formula: Live, v: Valuation) -> FrozenSet[State]:
        values = []
        for term in formula.terms:
            if isinstance(term, Var):
                if term not in v:
                    raise VerificationError(
                        f"LIVE uses unbound variable {term.name}")
                values.append(v[term])
            else:
                values.append(term)
        return frozenset(
            state for state in self.states
            if all(value in self._adom(state) for value in values))

    def _eval_exists(self, formula: MExists, v: Valuation,
                     V: PredValuation, domain: FrozenSet[Any]
                     ) -> FrozenSet[State]:
        variables = formula.variables
        result: FrozenSet[State] = frozenset()
        # Enumerate assignments lazily — materializing the domain^k list up
        # front blows memory on wide domains; the product preserves the
        # historical (last-variable-fastest) order.
        ordered = sorted_values(domain)
        for combo in itertools.product(ordered, repeat=len(variables)):
            extended = dict(v)
            extended.update(zip(variables, combo))
            result |= self._eval(formula.sub, extended, V, domain)
            if result == self.states:
                break
        return result

    def _fixpoint(self, formula, v: Valuation, V: PredValuation,
                  domain: FrozenSet[Any], least: bool) -> FrozenSet[State]:
        current: FrozenSet[State] = frozenset() if least else self.states
        while True:
            extended = dict(V)
            extended[formula.var] = current
            updated = self._eval(formula.sub, v, extended, domain)
            if updated == current:
                return current
            current = updated


def check(ts: TransitionSystem, formula: MuFormula,
          valuation: Optional[Valuation] = None,
          extra_domain: Iterable[Any] = (),
          compiled: bool = True) -> bool:
    """Convenience: ``ts |= formula``."""
    return ModelChecker(ts, extra_domain, compiled).models(formula,
                                                           valuation)


def extension(ts: TransitionSystem, formula: MuFormula,
              valuation: Optional[Valuation] = None,
              extra_domain: Iterable[Any] = (),
              compiled: bool = True) -> FrozenSet[State]:
    """Convenience: the set of states satisfying the formula."""
    return ModelChecker(ts, extra_domain, compiled).evaluate(formula,
                                                             valuation)
