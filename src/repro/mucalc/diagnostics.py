"""Verification diagnostics: witnesses and counterexamples.

The paper reduces verification to computing extensions over the finite
abstract transition system; for practical use one also wants *evidence*.
For the two most common property shapes this module extracts it:

* invariants ``AG phi`` — a shortest path from the initial state to a
  ``~phi`` state (a counterexample trace);
* reachability ``EF phi`` — a shortest path to a ``phi`` state (a witness
  trace).

Traces are lists of ``(state, db, label)`` triples, where ``label`` is the
action annotation of the edge taken into the state.
"""

from __future__ import annotations

from collections import deque
from typing import FrozenSet, List, Optional, Tuple

from repro.mucalc.ast import MuFormula
from repro.mucalc.checker import ModelChecker
from repro.mucalc.ctl import invariant_body, reachability_body
from repro.semantics.transition_system import State, TransitionSystem

Trace = List[Tuple[State, "Instance", Optional[str]]]


def shortest_path_to(ts: TransitionSystem,
                     targets: FrozenSet[State]) -> Optional[Trace]:
    """BFS path from the initial state into ``targets`` (inclusive)."""
    if not targets:
        return None
    parent = {ts.initial: None}
    labels = {ts.initial: None}
    queue = deque([ts.initial])
    goal = ts.initial if ts.initial in targets else None
    while queue and goal is None:
        current = queue.popleft()
        for label, successor in sorted(ts.labeled_edges(current),
                                       key=lambda item: repr(item)):
            if successor not in parent:
                parent[successor] = current
                labels[successor] = label
                if successor in targets:
                    goal = successor
                    break
                queue.append(successor)
    if goal is None:
        return None
    path: Trace = []
    cursor = goal
    while cursor is not None:
        path.append((cursor, ts.db(cursor), labels[cursor]))
        cursor = parent[cursor]
    path.reverse()
    return path


def counterexample(ts: TransitionSystem, invariant: MuFormula,
                   checker: Optional[ModelChecker] = None
                   ) -> Optional[Trace]:
    """A shortest trace to a reachable state violating ``invariant``.

    ``invariant`` is the *state* property (the ``phi`` of ``AG phi``); the
    full fixpoint encoding ``nu Z. phi & [-]Z`` is also accepted and
    destructured. Returns ``None`` when the invariant holds on all
    reachable states.
    """
    body = invariant_body(invariant)
    if body is not None:
        invariant = body
    checker = checker or ModelChecker(ts)
    good = checker.evaluate(invariant)
    bad = frozenset(ts.reachable_from()) - good
    return shortest_path_to(ts, bad)


def witness(ts: TransitionSystem, goal: MuFormula,
            checker: Optional[ModelChecker] = None) -> Optional[Trace]:
    """A shortest trace reaching a state satisfying ``goal`` (EF-witness).

    ``goal`` is the state property; the full encoding ``mu Z. phi | <->Z``
    is also accepted and destructured."""
    body = reachability_body(goal)
    if body is not None:
        goal = body
    checker = checker or ModelChecker(ts)
    targets = checker.evaluate(goal) & frozenset(ts.reachable_from())
    return shortest_path_to(ts, targets)


def render_trace(trace: Trace) -> str:
    """Human-readable rendering of a diagnostic trace."""
    if not trace:
        return "(empty trace)"
    lines = []
    for index, (state, db, label) in enumerate(trace):
        arrow = f" --[{label}]--> " if label else ""
        lines.append(f"  {index}: {arrow}{db!r}")
    return "\n".join(lines)
