"""µ-calculus: ASTs, parser, fragments, model checking, PROP() reduction."""

from repro.mucalc.ast import (
    Box, Diamond, Live, MAnd, MExists, MForall, MNot, MOr, Mu, MuFormula,
    Nu, PredVar, QF, box_live, box_live_implies, diamond_live,
    diamond_live_implies, exists_live, forall_live, live)
from repro.mucalc.checker import ModelChecker, check, extension
from repro.mucalc.ctl import (
    AF, AG, AG_live, AU, AU_live, AX, EF, EF_live, EG, EU, EX,
    invariant_body, reachability_body)
from repro.mucalc.engine import (
    CompiledChecker, CompiledFormula, OnTheFlyVerifier, compile_formula,
    evaluate_local, recognize_shape, to_pnf)
from repro.mucalc.parser import parse_mu
from repro.mucalc.prop import (
    Labeling, PropFormula, prop_check, propositionalize)
from repro.mucalc.syntax import (
    Fragment, check_monotone, classify, free_ivars_unfolded, is_in_fragment,
    require_fragment)

__all__ = [
    "AF", "AG", "AG_live", "AU", "AU_live", "AX", "Box", "CompiledChecker",
    "CompiledFormula", "Diamond", "EF", "EF_live", "EG", "EU", "EX",
    "Fragment", "Labeling", "Live", "MAnd", "MExists", "MForall", "MNot",
    "MOr", "ModelChecker", "Mu", "MuFormula", "Nu", "OnTheFlyVerifier",
    "PredVar", "PropFormula", "QF", "box_live", "box_live_implies",
    "check", "check_monotone", "classify", "compile_formula",
    "diamond_live", "diamond_live_implies", "evaluate_local", "exists_live",
    "extension", "forall_live", "free_ivars_unfolded", "invariant_body",
    "is_in_fragment", "live", "parse_mu", "prop_check", "propositionalize",
    "reachability_body", "recognize_shape", "require_fragment", "to_pnf",
]
