"""µ-calculus: ASTs, parser, fragments, model checking, PROP() reduction."""

from repro.mucalc.ast import (
    Box, Diamond, Live, MAnd, MExists, MForall, MNot, MOr, Mu, MuFormula,
    Nu, PredVar, QF, box_live, box_live_implies, diamond_live,
    diamond_live_implies, exists_live, forall_live, live)
from repro.mucalc.certify import (
    CertificateError, ReplayReport, replay, state_holds, validate)
from repro.mucalc.checker import ModelChecker, check, extension
from repro.mucalc.ctl import (
    AF, AG, AG_live, AU, AU_live, AX, EF, EF_live, EG, EU, EX, GuardedShape,
    invariant_body, invariant_shape, reachability_body, reachability_shape)
from repro.mucalc.engine import (
    CompiledChecker, CompiledFormula, OnTheFlyVerifier, compile_formula,
    evaluate_local, recognize_shape, to_pnf)
from repro.mucalc.parser import parse_mu
from repro.mucalc.witness import (
    Certificate, ExtractionOutcome, TraceStep, Violation, Witness, extract,
    extract_certificate, render_certificate)
from repro.mucalc.prop import (
    Labeling, PropFormula, prop_check, propositionalize)
from repro.mucalc.syntax import (
    Fragment, check_monotone, classify, free_ivars_unfolded, is_in_fragment,
    require_fragment)

__all__ = [
    "AF", "AG", "AG_live", "AU", "AU_live", "AX", "Box", "Certificate",
    "CertificateError", "CompiledChecker", "CompiledFormula", "Diamond",
    "EF", "EF_live", "EG", "EU", "EX", "ExtractionOutcome", "Fragment",
    "GuardedShape", "Labeling", "Live", "MAnd", "MExists", "MForall",
    "MNot", "MOr", "ModelChecker", "Mu", "MuFormula", "Nu",
    "OnTheFlyVerifier", "PredVar", "PropFormula", "QF", "ReplayReport",
    "TraceStep", "Violation", "Witness", "box_live", "box_live_implies",
    "check", "check_monotone", "classify", "compile_formula",
    "diamond_live", "diamond_live_implies", "evaluate_local", "exists_live",
    "extension", "extract", "extract_certificate", "forall_live",
    "free_ivars_unfolded", "invariant_body", "invariant_shape",
    "is_in_fragment", "live", "parse_mu", "prop_check", "propositionalize",
    "reachability_body", "reachability_shape", "recognize_shape",
    "render_certificate", "replay", "require_fragment", "state_holds",
    "to_pnf", "validate",
]
