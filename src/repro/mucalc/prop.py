"""Propositionalization: the PROP() translation of Theorem 4.4.

Over a *finite* transition system, a µLA formula can be translated into a
propositional µ-calculus formula by expanding every quantifier into a
disjunction/conjunction over the finite value set and turning the resulting
ground FO queries and ground LIVE facts into propositions. Model checking
the propositional formula over the labeled transition system then agrees
with the direct first-order evaluation — which is exactly how the paper
reduces DCDS verification to conventional µ-calculus model checking.

This module provides both the translation and a standalone propositional
µ-calculus model checker, so tests can confirm
``check(ts, phi) == prop_check(ts, *propositionalize(phi, ts))``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, Optional, Tuple

from repro.errors import VerificationError
from repro.fol.evaluation import holds
from repro.mucalc.ast import (
    Box, Diamond, Live, MAnd, MExists, MForall, MNot, MOr, Mu, MuFormula,
    Nu, PredVar, QF)
from repro.relational.values import Var, is_value
from repro.semantics.transition_system import State, TransitionSystem
from repro.utils import sorted_values


# ---------------------------------------------------------------------------
# Propositional µ-calculus
# ---------------------------------------------------------------------------

class PropFormula:
    """Base class for propositional µ-calculus formulas."""

    __slots__ = ()


@dataclass(frozen=True)
class PAtom(PropFormula):
    key: str

    def __repr__(self) -> str:
        return self.key


@dataclass(frozen=True)
class PTrue(PropFormula):
    def __repr__(self) -> str:
        return "true"


@dataclass(frozen=True)
class PNot(PropFormula):
    sub: PropFormula

    def __repr__(self) -> str:
        return f"~({self.sub!r})"


@dataclass(frozen=True)
class PAnd(PropFormula):
    subs: Tuple[PropFormula, ...]

    def __repr__(self) -> str:
        return "(" + " & ".join(map(repr, self.subs)) + ")"


@dataclass(frozen=True)
class POr(PropFormula):
    subs: Tuple[PropFormula, ...]

    def __repr__(self) -> str:
        return "(" + " | ".join(map(repr, self.subs)) + ")"


@dataclass(frozen=True)
class PDiamond(PropFormula):
    sub: PropFormula

    def __repr__(self) -> str:
        return f"<->({self.sub!r})"


@dataclass(frozen=True)
class PBox(PropFormula):
    sub: PropFormula

    def __repr__(self) -> str:
        return f"[-]({self.sub!r})"


@dataclass(frozen=True)
class PVar(PropFormula):
    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PMu(PropFormula):
    var: str
    sub: PropFormula

    def __repr__(self) -> str:
        return f"mu {self.var}. ({self.sub!r})"


@dataclass(frozen=True)
class PNu(PropFormula):
    var: str
    sub: PropFormula

    def __repr__(self) -> str:
        return f"nu {self.var}. ({self.sub!r})"


Labeling = Dict[str, FrozenSet[State]]


def prop_check(ts: TransitionSystem, formula: PropFormula,
               labeling: Labeling) -> FrozenSet[State]:
    """Standard propositional µ-calculus model checking (Emerson [22]).

    Modalities propagate backward along the transition system's
    predecessor index (shared with the compiled first-order checker)
    instead of scanning every state."""
    from repro.mucalc.engine.evaluator import (
        box_states, deadlock_states, diamond_states)

    states = ts.states
    deadlocks = deadlock_states(ts)

    def evaluate(node: PropFormula,
                 env: Dict[str, FrozenSet[State]]) -> FrozenSet[State]:
        if isinstance(node, PTrue):
            return states
        if isinstance(node, PAtom):
            if node.key not in labeling:
                raise VerificationError(f"unlabeled atom {node.key}")
            return labeling[node.key]
        if isinstance(node, PNot):
            return states - evaluate(node.sub, env)
        if isinstance(node, PAnd):
            result = states
            for sub in node.subs:
                result &= evaluate(sub, env)
            return result
        if isinstance(node, POr):
            result: FrozenSet[State] = frozenset()
            for sub in node.subs:
                result |= evaluate(sub, env)
            return result
        if isinstance(node, PDiamond):
            target = evaluate(node.sub, env)
            return diamond_states(ts, target)
        if isinstance(node, PBox):
            target = evaluate(node.sub, env)
            return box_states(ts, target, deadlocks)
        if isinstance(node, PVar):
            return env[node.name]
        if isinstance(node, (PMu, PNu)):
            current = frozenset() if isinstance(node, PMu) else states
            while True:
                extended = dict(env)
                extended[node.var] = current
                updated = evaluate(node.sub, extended)
                if updated == current:
                    return current
                current = updated
        raise VerificationError(f"cannot evaluate {node!r}")

    return evaluate(formula, {})


# ---------------------------------------------------------------------------
# PROP() translation
# ---------------------------------------------------------------------------

def propositionalize(
    formula: MuFormula, ts: TransitionSystem,
    extra_domain: Iterable[Any] = ()
) -> Tuple[PropFormula, Labeling]:
    """Translate a closed µL formula into propositional form over ``ts``.

    Quantifiers expand over ``ADOM(Theta)`` (the TS's value set plus formula
    constants), ground queries and ground LIVE facts become labeled atoms —
    the inductive definition of PROP() in Theorem 4.4.
    """
    domain = set(ts.values()) | set(extra_domain)
    for node in formula.walk():
        if isinstance(node, QF):
            domain.update(node.query.constants())
        elif isinstance(node, Live):
            domain.update(t for t in node.terms if is_value(t))
    ordered_domain = sorted_values(domain)

    labeling: Labeling = {}

    def label_query(query) -> str:
        key = f"q[{query!r}]"
        if key not in labeling:
            labeling[key] = frozenset(
                state for state in ts.states if holds(query, ts.db(state)))
        return key

    def label_live(values: Tuple[Any, ...]) -> str:
        key = f"live[{values!r}]"
        if key not in labeling:
            labeling[key] = frozenset(
                state for state in ts.states
                if all(value in ts.db(state).active_domain()
                       for value in values))
        return key

    def translate(node: MuFormula) -> PropFormula:
        if isinstance(node, QF):
            if node.query.free_variables():
                raise VerificationError(
                    f"query {node.query!r} not ground during PROP()")
            return PAtom(label_query(node.query))
        if isinstance(node, Live):
            if node.free_ivars():
                raise VerificationError(
                    f"LIVE not ground during PROP(): {node!r}")
            return PAtom(label_live(node.terms))
        if isinstance(node, MNot):
            return PNot(translate(node.sub))
        if isinstance(node, MAnd):
            return PAnd(tuple(translate(sub) for sub in node.subs))
        if isinstance(node, MOr):
            return POr(tuple(translate(sub) for sub in node.subs))
        if isinstance(node, Diamond):
            return PDiamond(translate(node.sub))
        if isinstance(node, Box):
            return PBox(translate(node.sub))
        if isinstance(node, PredVar):
            return PVar(node.name)
        if isinstance(node, Mu):
            return PMu(node.var, translate(node.sub))
        if isinstance(node, Nu):
            return PNu(node.var, translate(node.sub))
        if isinstance(node, MExists):
            disjuncts = tuple(
                translate(_ground(node, combo))
                for combo in _assignments(node.variables, ordered_domain))
            return POr(disjuncts) if disjuncts else PNot(PTrue())
        if isinstance(node, MForall):
            conjuncts = tuple(
                translate(_ground_forall(node, combo))
                for combo in _assignments(node.variables, ordered_domain))
            return PAnd(conjuncts) if conjuncts else PTrue()
        raise VerificationError(f"cannot propositionalize {node!r}")

    def _ground(node: MExists, combo) -> MuFormula:
        return node.sub.substitute(dict(zip(node.variables, combo)))

    def _ground_forall(node: MForall, combo) -> MuFormula:
        return node.sub.substitute(dict(zip(node.variables, combo)))

    return translate(formula), labeling


def _assignments(variables, domain):
    combos = [()]
    for _ in variables:
        combos = [prefix + (value,) for prefix in combos for value in domain]
    return combos
