"""Independent replay-checking of witness/violation certificates.

This is the test oracle of the witness layer: given a
:class:`~repro.mucalc.witness.Certificate` and the transition system it
claims to certify, :func:`replay` re-validates every claim against the raw
states and edges — *without* consulting the fixpoint engines that produced
the certificate. The only shared machinery is the AST, the syntactic
shape destructurers (:mod:`repro.mucalc.ctl` — pure pattern matching), and
the base first-order evaluator over a single database
(:func:`repro.fol.evaluation.holds`); the state-set semantics
(quantifier confinement, guard liveness, terminal conditions, minimality,
shortestness) are re-implemented here from the definitions.

Checked, in order:

1. **structure** — non-empty run starting at the initial state, every hop
   an actual labeled edge, honest rank and service-call-binding fields;
2. **shape** — the certificate's ``body``/``guard`` really are the
   destructuring of its ``formula``, and the guard is ground;
3. **semantics** — witness: the final state satisfies the body and every
   *entered* state keeps the guard live; violation: the final state
   refutes the body, or (guarded encoding, at least one step taken) drops
   a guard value;
4. **minimality** (optional) — no strict prefix certifies;
5. **shortestness** (optional) — an independent forward BFS confirms no
   certifying run is shorter.

Use :func:`validate` to raise on the first problem instead of collecting a
report.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import (
    Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple)

from repro.errors import ReproError
from repro.fol.evaluation import holds
from repro.mucalc.ast import (
    Live, MAnd, MExists, MForall, MNot, MOr, MuFormula, QF)
from repro.mucalc.ctl import invariant_shape, reachability_shape
from repro.mucalc.witness import Certificate, Violation, Witness
from repro.relational.instance import Instance
from repro.relational.values import Var
from repro.semantics.transition_system import State, TransitionSystem
from repro.utils import sorted_values


class CertificateError(ReproError):
    """A certificate failed replay (or is structurally unevaluable)."""


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of replaying one certificate."""

    ok: bool
    failures: Tuple[str, ...]
    checked_steps: int

    def __bool__(self) -> bool:
        return self.ok


# ---------------------------------------------------------------------------
# Independent state-local evaluation
# ---------------------------------------------------------------------------

def _covered_exists(sub: MuFormula) -> Set[Var]:
    """Variables a LIVE guard confines in ``E x. (LIVE(x) & ...)``."""
    conjuncts = sub.subs if isinstance(sub, MAnd) else (sub,)
    covered: Set[Var] = set()
    for conjunct in conjuncts:
        if isinstance(conjunct, Live):
            covered |= {t for t in conjunct.terms if isinstance(t, Var)}
    return covered


def _covered_forall(sub: MuFormula) -> Set[Var]:
    """Variables a LIVE guard confines in ``A x. (~LIVE(x) | ...)``."""
    disjuncts = sub.subs if isinstance(sub, MOr) else (sub,)
    covered: Set[Var] = set()
    for disjunct in disjuncts:
        if isinstance(disjunct, MNot) and isinstance(disjunct.sub, Live):
            covered |= {t for t in disjunct.sub.terms
                        if isinstance(t, Var)}
    return covered


def state_holds(formula: MuFormula, instance: Instance,
                valuation: Optional[Dict[Var, Any]] = None) -> bool:
    """Truth of a state-local body on one database instance.

    Quantifiers must be LIVE-guarded (the µLA shapes) so enumeration over
    the instance's active domain is exhaustive: dead values fail an
    existential's guard and satisfy a universal's vacuously. Raises
    :class:`CertificateError` on modalities, fixpoints, predicate
    variables, or unguarded quantifiers — such a body cannot appear in a
    well-formed certificate.
    """
    adom = instance.active_domain()
    return _holds(formula, instance, adom, dict(valuation or {}))


def _holds(formula: MuFormula, instance: Instance, adom: FrozenSet[Any],
           valuation: Dict[Var, Any]) -> bool:
    if isinstance(formula, QF):
        relevant = {var: value for var, value in valuation.items()
                    if var in formula.query.free_variables()}
        return holds(formula.query, instance, relevant)
    if isinstance(formula, Live):
        for term in formula.terms:
            value = valuation.get(term, term) if isinstance(term, Var) \
                else term
            if value not in adom:
                return False
        return True
    if isinstance(formula, MNot):
        return not _holds(formula.sub, instance, adom, valuation)
    if isinstance(formula, MAnd):
        return all(_holds(sub, instance, adom, valuation)
                   for sub in formula.subs)
    if isinstance(formula, MOr):
        return any(_holds(sub, instance, adom, valuation)
                   for sub in formula.subs)
    if isinstance(formula, (MExists, MForall)):
        exists = isinstance(formula, MExists)
        covered = _covered_exists(formula.sub) if exists \
            else _covered_forall(formula.sub)
        if not frozenset(formula.variables) <= covered:
            raise CertificateError(
                f"certificate body has an unguarded quantifier: {formula!r}")
        candidates = sorted_values(adom)
        for combo in itertools.product(candidates,
                                       repeat=len(formula.variables)):
            extended = dict(valuation)
            extended.update(zip(formula.variables, combo))
            satisfied = _holds(formula.sub, instance, adom, extended)
            if satisfied == exists:
                return exists
        return not exists
    raise CertificateError(
        f"certificate body is not state-local: {formula!r}")


def _guard_live(guard: Tuple[Any, ...], instance: Instance) -> bool:
    if not guard:
        return True
    adom = instance.active_domain()
    return all(value in adom for value in guard)


# ---------------------------------------------------------------------------
# Independent shortest certifying run
# ---------------------------------------------------------------------------

def shortest_certifying_length(
        ts: TransitionSystem,
        terminal: Callable[[State, bool], bool],
        enterable: Callable[[State], bool]) -> Optional[int]:
    """Length (edges) of a shortest certifying run, by forward BFS.

    ``terminal(state, entered)`` decides whether a run may end at
    ``state`` given whether it was entered by a step; ``enterable`` gates
    which states a step may enter at all. ``None`` when no run certifies.
    """
    if terminal(ts.initial, False):
        return 0
    seen = {ts.initial}
    frontier = [ts.initial]
    depth = 0
    while frontier:
        depth += 1
        next_frontier: List[State] = []
        for state in frontier:
            for successor in ts.sorted_successors(state):
                if not enterable(successor):
                    continue
                if terminal(successor, True):
                    return depth
                if successor not in seen:
                    seen.add(successor)
                    next_frontier.append(successor)
        frontier = next_frontier
    return None


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------

def replay(ts: TransitionSystem, certificate: Certificate, *,
           minimal: bool = True, shortest: bool = True) -> ReplayReport:
    """Validate a certificate against the transition system it talks about.

    Collects every failed claim (it does not stop at the first); a
    certificate whose body cannot even be evaluated yields a single
    structural failure entry rather than an exception.
    """
    failures: List[str] = []
    steps = certificate.steps
    if not steps:
        return ReplayReport(False, ("certificate has no steps",), 0)

    # 1. structure ----------------------------------------------------------
    if steps[0].state != ts.initial:
        failures.append("run does not start at the initial state")
    if steps[0].action is not None:
        failures.append("initial step carries an action label")
    if steps[0].call_bindings:
        failures.append("initial step carries call bindings")
    for index, step in enumerate(steps):
        if step.state not in ts:
            failures.append(f"step {index}: state not in transition system")
        expected_rank = len(steps) - 1 - index
        if step.rank != expected_rank:
            failures.append(
                f"step {index}: rank {step.rank} != {expected_rank}")
    for index in range(1, len(steps)):
        source, step = steps[index - 1].state, steps[index]
        if (step.action, step.state) not in ts.labeled_edges(source):
            failures.append(
                f"step {index}: no edge --[{step.action}]--> to its state")
            continue
        source_map = getattr(source, "call_map", None)
        target_map = getattr(step.state, "call_map", None)
        if source_map is not None and target_map is not None:
            known = set(source_map)
            minted = tuple(entry for entry in target_map
                           if entry not in known)
            if step.call_bindings != minted:
                failures.append(
                    f"step {index}: call bindings "
                    f"{step.call_bindings!r} != minted {minted!r}")
    if failures:
        # Semantic claims are meaningless over a broken run.
        return ReplayReport(False, tuple(failures), len(steps))

    # 2. shape --------------------------------------------------------------
    if isinstance(certificate, Witness):
        shape = reachability_shape(certificate.formula)
        kind = "witness"
    elif isinstance(certificate, Violation):
        shape = invariant_shape(certificate.formula)
        kind = "violation"
    else:
        return ReplayReport(
            False, ("certificate is neither Witness nor Violation",),
            len(steps))
    if shape is None:
        failures.append("formula does not destructure to the claimed shape")
    elif shape.body != certificate.body or shape.guard != certificate.guard:
        failures.append("certificate body/guard do not match its formula")
    if any(isinstance(term, Var) for term in certificate.guard):
        failures.append("guard is not ground")
    if failures:
        return ReplayReport(False, tuple(failures), len(steps))

    body, guard = certificate.body, certificate.guard

    def bad(state: State) -> bool:
        return not state_holds(body, ts.db(state))

    def live(state: State) -> bool:
        return _guard_live(guard, ts.db(state))

    # 3. semantics ----------------------------------------------------------
    try:
        if kind == "witness":
            if bad(steps[-1].state):
                failures.append("final state does not satisfy the body")
            for index, step in enumerate(steps[1:], start=1):
                if not live(step.state):
                    failures.append(
                        f"step {index}: guard value dead in entered state")
        else:
            final = steps[-1].state
            discharged = bad(final) or (
                bool(guard) and len(steps) > 1 and not live(final))
            if not discharged:
                failures.append(
                    "final state neither refutes the body nor (after a "
                    "step) drops a guard value")

        # 4. minimality -----------------------------------------------------
        if minimal and not failures:
            for index, step in enumerate(steps[:-1]):
                if kind == "witness":
                    if not bad(step.state):
                        failures.append(
                            f"not minimal: prefix ending at step {index} "
                            f"already satisfies the body")
                else:
                    if bad(step.state) or (
                            bool(guard) and index > 0
                            and not live(step.state)):
                        failures.append(
                            f"not minimal: prefix ending at step {index} "
                            f"already certifies the violation")

        # 5. shortestness ---------------------------------------------------
        if shortest and not failures:
            if kind == "witness":
                best = shortest_certifying_length(
                    ts,
                    lambda state, entered: not bad(state),
                    live)
            else:
                best = shortest_certifying_length(
                    ts,
                    lambda state, entered: bad(state) or (
                        bool(guard) and entered and not live(state)),
                    lambda state: True)
            if best is None:
                failures.append(
                    "independent search finds no certifying run at all")
            elif best != certificate.length:
                failures.append(
                    f"not shortest: run has {certificate.length} steps, "
                    f"a {best}-step run certifies")
    except CertificateError as error:
        failures.append(str(error))

    return ReplayReport(not failures, tuple(failures), len(steps))


def validate(ts: TransitionSystem, certificate: Certificate, *,
             minimal: bool = True, shortest: bool = True) -> None:
    """:func:`replay`, raising :class:`CertificateError` on any failure."""
    report = replay(ts, certificate, minimal=minimal, shortest=shortest)
    if not report.ok:
        raise CertificateError(
            "certificate failed replay: " + "; ".join(report.failures))
