"""First-order µ-calculus ASTs: µL and its fragments µLA, µLP (Section 3).

The grammar is::

    Phi ::= Q | LIVE(x...) | ~Phi | Phi & Phi | Phi '|' Phi
          | E x. Phi | A x. Phi | <-> Phi | [-] Phi | Z | mu Z. Phi | nu Z. Phi

where ``Q`` is an FO query (:class:`repro.fol.Formula`). The fragments are
*syntactic shapes* over this one AST:

* µLA quantifies only via ``E x. (LIVE(x) & Phi)`` / ``A x. (LIVE(x) -> Phi)``;
* µLP additionally guards every modality: ``<->(LIVE(x...) & Phi)`` etc.

Helper constructors (:func:`exists_live`, :func:`diamond_live`, ...) produce
exactly those shapes; :mod:`repro.mucalc.syntax` classifies arbitrary
formulas into the fragments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Iterator, Mapping, Tuple, Union

from repro.errors import FormulaError
from repro.fol.ast import Formula
from repro.relational.values import Var, is_value, substitute_term


class MuFormula:
    """Base class for µ-calculus formulas."""

    __slots__ = ()

    def __and__(self, other: "MuFormula") -> "MuFormula":
        return MAnd.of(self, other)

    def __or__(self, other: "MuFormula") -> "MuFormula":
        return MOr.of(self, other)

    def __invert__(self) -> "MuFormula":
        return MNot(self)

    def implies(self, other: "MuFormula") -> "MuFormula":
        return MOr.of(MNot(self), other)

    # -- shared structural API -------------------------------------------------

    def children(self) -> Tuple["MuFormula", ...]:
        return ()

    def free_ivars(self) -> FrozenSet[Var]:
        """Free individual variables (no fixpoint unfolding; see syntax.py
        for the µLP proviso variant)."""
        result: FrozenSet[Var] = frozenset()
        for child in self.children():
            result |= child.free_ivars()
        return result

    def free_pvars(self) -> FrozenSet[str]:
        """Free predicate variables."""
        result: FrozenSet[str] = frozenset()
        for child in self.children():
            result |= child.free_pvars()
        return result

    def is_closed(self) -> bool:
        return not self.free_ivars() and not self.free_pvars()

    def substitute(self, substitution: Mapping[Var, Any]) -> "MuFormula":
        raise NotImplementedError

    def walk(self) -> Iterator["MuFormula"]:
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class QF(MuFormula):
    """An embedded (possibly open) FO query over the current database."""

    query: Formula

    def __repr__(self) -> str:
        return repr(self.query)

    def free_ivars(self) -> FrozenSet[Var]:
        return self.query.free_variables()

    def substitute(self, substitution: Mapping[Var, Any]) -> "QF":
        return QF(self.query.substitute(substitution))


@dataclass(frozen=True)
class Live(MuFormula):
    """``LIVE(t1, ..., tn)``: every term is in the current active domain."""

    terms: Tuple[Any, ...]

    def __post_init__(self):
        if not self.terms:
            raise FormulaError("LIVE needs at least one term")

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.terms)
        return f"live({inner})"

    def free_ivars(self) -> FrozenSet[Var]:
        return frozenset(t for t in self.terms if isinstance(t, Var))

    def substitute(self, substitution: Mapping[Var, Any]) -> "Live":
        return Live(tuple(substitute_term(t, substitution)
                          for t in self.terms))


@dataclass(frozen=True)
class MNot(MuFormula):
    sub: MuFormula

    def __repr__(self) -> str:
        return f"~({self.sub!r})"

    def children(self) -> Tuple[MuFormula, ...]:
        return (self.sub,)

    def substitute(self, substitution: Mapping[Var, Any]) -> "MNot":
        return MNot(self.sub.substitute(substitution))


@dataclass(frozen=True)
class MAnd(MuFormula):
    subs: Tuple[MuFormula, ...]

    @classmethod
    def of(cls, *subs: MuFormula) -> MuFormula:
        flattened = []
        for sub in subs:
            if isinstance(sub, MAnd):
                flattened.extend(sub.subs)
            else:
                flattened.append(sub)
        if len(flattened) == 1:
            return flattened[0]
        if not flattened:
            raise FormulaError("empty conjunction")
        return cls(tuple(flattened))

    def __repr__(self) -> str:
        return "(" + " & ".join(repr(sub) for sub in self.subs) + ")"

    def children(self) -> Tuple[MuFormula, ...]:
        return self.subs

    def substitute(self, substitution: Mapping[Var, Any]) -> MuFormula:
        return MAnd.of(*(sub.substitute(substitution) for sub in self.subs))


@dataclass(frozen=True)
class MOr(MuFormula):
    subs: Tuple[MuFormula, ...]

    @classmethod
    def of(cls, *subs: MuFormula) -> MuFormula:
        flattened = []
        for sub in subs:
            if isinstance(sub, MOr):
                flattened.extend(sub.subs)
            else:
                flattened.append(sub)
        if len(flattened) == 1:
            return flattened[0]
        if not flattened:
            raise FormulaError("empty disjunction")
        return cls(tuple(flattened))

    def __repr__(self) -> str:
        return "(" + " | ".join(repr(sub) for sub in self.subs) + ")"

    def children(self) -> Tuple[MuFormula, ...]:
        return self.subs

    def substitute(self, substitution: Mapping[Var, Any]) -> MuFormula:
        return MOr.of(*(sub.substitute(substitution) for sub in self.subs))


@dataclass(frozen=True)
class MExists(MuFormula):
    """First-order quantification across states (the µL primitive)."""

    variables: Tuple[Var, ...]
    sub: MuFormula

    def __post_init__(self):
        if not self.variables:
            raise FormulaError("quantifier needs at least one variable")

    def __repr__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"E {names}. ({self.sub!r})"

    def children(self) -> Tuple[MuFormula, ...]:
        return (self.sub,)

    def free_ivars(self) -> FrozenSet[Var]:
        return self.sub.free_ivars() - frozenset(self.variables)

    def substitute(self, substitution: Mapping[Var, Any]) -> "MExists":
        shadowed = {key: value for key, value in substitution.items()
                    if key not in self.variables}
        return MExists(self.variables, self.sub.substitute(shadowed))


@dataclass(frozen=True)
class MForall(MuFormula):
    variables: Tuple[Var, ...]
    sub: MuFormula

    def __post_init__(self):
        if not self.variables:
            raise FormulaError("quantifier needs at least one variable")

    def __repr__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"A {names}. ({self.sub!r})"

    def children(self) -> Tuple[MuFormula, ...]:
        return (self.sub,)

    def free_ivars(self) -> FrozenSet[Var]:
        return self.sub.free_ivars() - frozenset(self.variables)

    def substitute(self, substitution: Mapping[Var, Any]) -> "MForall":
        shadowed = {key: value for key, value in substitution.items()
                    if key not in self.variables}
        return MForall(self.variables, self.sub.substitute(shadowed))


@dataclass(frozen=True)
class Diamond(MuFormula):
    """``<->Phi``: some successor satisfies Phi."""

    sub: MuFormula

    def __repr__(self) -> str:
        return f"<->({self.sub!r})"

    def children(self) -> Tuple[MuFormula, ...]:
        return (self.sub,)

    def substitute(self, substitution: Mapping[Var, Any]) -> "Diamond":
        return Diamond(self.sub.substitute(substitution))


@dataclass(frozen=True)
class Box(MuFormula):
    """``[-]Phi``: every successor satisfies Phi."""

    sub: MuFormula

    def __repr__(self) -> str:
        return f"[-]({self.sub!r})"

    def children(self) -> Tuple[MuFormula, ...]:
        return (self.sub,)

    def substitute(self, substitution: Mapping[Var, Any]) -> "Box":
        return Box(self.sub.substitute(substitution))


@dataclass(frozen=True)
class PredVar(MuFormula):
    """A second-order predicate variable ``Z`` (arity 0)."""

    name: str

    def __repr__(self) -> str:
        return self.name

    def free_pvars(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def substitute(self, substitution: Mapping[Var, Any]) -> "PredVar":
        return self


@dataclass(frozen=True)
class Mu(MuFormula):
    """Least fixpoint ``mu Z. Phi``."""

    var: str
    sub: MuFormula

    def __repr__(self) -> str:
        return f"mu {self.var}. ({self.sub!r})"

    def children(self) -> Tuple[MuFormula, ...]:
        return (self.sub,)

    def free_pvars(self) -> FrozenSet[str]:
        return self.sub.free_pvars() - {self.var}

    def substitute(self, substitution: Mapping[Var, Any]) -> "Mu":
        return Mu(self.var, self.sub.substitute(substitution))


@dataclass(frozen=True)
class Nu(MuFormula):
    """Greatest fixpoint ``nu Z. Phi``."""

    var: str
    sub: MuFormula

    def __repr__(self) -> str:
        return f"nu {self.var}. ({self.sub!r})"

    def children(self) -> Tuple[MuFormula, ...]:
        return (self.sub,)

    def free_pvars(self) -> FrozenSet[str]:
        return self.sub.free_pvars() - {self.var}

    def substitute(self, substitution: Mapping[Var, Any]) -> "Nu":
        return Nu(self.var, self.sub.substitute(substitution))


# ---------------------------------------------------------------------------
# Fragment-shaped constructors
# ---------------------------------------------------------------------------

def _vars_of(names: Union[str, Tuple[Var, ...]]) -> Tuple[Var, ...]:
    if isinstance(names, str):
        return tuple(Var(name) for name in names.split())
    return tuple(names)


def live(names: Union[str, Tuple[Any, ...]]) -> Live:
    """``live("x y")`` or ``live((Var("x"), "a"))``."""
    if isinstance(names, str):
        return Live(tuple(Var(name) for name in names.split()))
    return Live(tuple(names))


def exists_live(names: Union[str, Tuple[Var, ...]], sub: MuFormula
                ) -> MExists:
    """µLA existential: ``E x. (LIVE(x) & Phi)``."""
    variables = _vars_of(names)
    return MExists(variables, MAnd.of(Live(variables), sub))


def forall_live(names: Union[str, Tuple[Var, ...]], sub: MuFormula
                ) -> MForall:
    """µLA universal: ``A x. (LIVE(x) -> Phi)``."""
    variables = _vars_of(names)
    return MForall(variables, MOr.of(MNot(Live(variables)), sub))


def diamond_live(sub: MuFormula,
                 guard: Union[str, Tuple[Var, ...], None] = None) -> Diamond:
    """µLP diamond ``<->(LIVE(x...) & Phi)``.

    When ``guard`` is omitted it defaults to the free individual variables of
    ``sub`` (the µLP well-formedness requirement); a guard-free diamond over
    a closed formula is just ``Diamond(sub)``.
    """
    variables = _guard_vars(sub, guard)
    if not variables:
        return Diamond(sub)
    return Diamond(MAnd.of(Live(variables), sub))


def box_live(sub: MuFormula,
             guard: Union[str, Tuple[Var, ...], None] = None) -> Box:
    """µLP box ``[-](LIVE(x...) & Phi)``."""
    variables = _guard_vars(sub, guard)
    if not variables:
        return Box(sub)
    return Box(MAnd.of(Live(variables), sub))


def diamond_live_implies(sub: MuFormula,
                         guard: Union[str, Tuple[Var, ...], None] = None
                         ) -> Diamond:
    """µLP diamond in implication form ``<->(LIVE(x...) -> Phi)``."""
    variables = _guard_vars(sub, guard)
    if not variables:
        return Diamond(sub)
    return Diamond(MOr.of(MNot(Live(variables)), sub))


def box_live_implies(sub: MuFormula,
                     guard: Union[str, Tuple[Var, ...], None] = None) -> Box:
    """µLP box in implication form ``[-](LIVE(x...) -> Phi)``."""
    variables = _guard_vars(sub, guard)
    if not variables:
        return Box(sub)
    return Box(MOr.of(MNot(Live(variables)), sub))


def _guard_vars(sub: MuFormula,
                guard: Union[str, Tuple[Var, ...], None]) -> Tuple[Var, ...]:
    if guard is not None:
        return _vars_of(guard)
    from repro.mucalc.syntax import free_ivars_unfolded

    return tuple(sorted(free_ivars_unfolded(sub), key=lambda v: v.name))
