"""CTL-style sugar compiled into µ-calculus.

µ-calculus subsumes CTL (Section 3); these helpers build the standard
fixpoint encodings, in both the plain (µLA-compatible) form and the
persistence-guarded (µLP-compatible) form used throughout Appendix E.

Caveat on ``AF``/``AG``: the encodings use the usual semantics over total
transition systems. DCDS transition systems can have deadlock states (no
enabled action); on such states ``[-]Phi`` holds vacuously.
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple, Union

from repro.mucalc.ast import (
    Box, Diamond, Live, MAnd, MNot, MOr, Mu, MuFormula, Nu, PredVar,
    box_live, diamond_live)
from repro.relational.values import Var

_counter = itertools.count()


def _fresh_pvar() -> str:
    return f"Z{next(_counter)}"


def EX(phi: MuFormula) -> MuFormula:
    """Some successor satisfies ``phi``."""
    return Diamond(phi)


def AX(phi: MuFormula) -> MuFormula:
    """Every successor satisfies ``phi``."""
    return Box(phi)


def EF(phi: MuFormula) -> MuFormula:
    """Some path eventually reaches ``phi``: ``mu Z. phi | <->Z``."""
    z = _fresh_pvar()
    return Mu(z, MOr.of(phi, Diamond(PredVar(z))))


def AF(phi: MuFormula) -> MuFormula:
    """Every path eventually reaches ``phi``: ``mu Z. phi | (<->true & [-]Z)``.

    The ``<->true`` conjunct makes deadlock states non-accepting, matching
    the standard CTL semantics on possibly non-total systems.
    """
    z = _fresh_pvar()
    return Mu(z, MOr.of(phi, MAnd.of(Diamond(_TRUE), Box(PredVar(z)))))


def EG(phi: MuFormula) -> MuFormula:
    """Some path always satisfies ``phi``: ``nu Z. phi & (<->Z | [-]false)``.

    Finite (deadlocking) paths count as maximal paths.
    """
    z = _fresh_pvar()
    return Nu(z, MAnd.of(phi, MOr.of(Diamond(PredVar(z)), Box(_FALSE))))


def AG(phi: MuFormula) -> MuFormula:
    """Every reachable state satisfies ``phi``: ``nu Z. phi & [-]Z``."""
    z = _fresh_pvar()
    return Nu(z, MAnd.of(phi, Box(PredVar(z))))


def EU(phi: MuFormula, psi: MuFormula) -> MuFormula:
    """Exists-until: ``mu Z. psi | (phi & <->Z)``."""
    z = _fresh_pvar()
    return Mu(z, MOr.of(psi, MAnd.of(phi, Diamond(PredVar(z)))))


def AU(phi: MuFormula, psi: MuFormula) -> MuFormula:
    """All-until (strong): ``mu Z. psi | (phi & <->true & [-]Z)``."""
    z = _fresh_pvar()
    return Mu(z, MOr.of(
        psi, MAnd.of(phi, Diamond(_TRUE), Box(PredVar(z)))))


# -- persistence-guarded variants (µLP) ------------------------------------

def EF_live(phi: MuFormula,
            guard: Union[str, Tuple[Var, ...], None] = None) -> MuFormula:
    """Reachability along which the guarded values persist:
    ``mu Z. phi | <->(live(x...) & Z)`` (cf. Example 3.3)."""
    z = _fresh_pvar()
    return Mu(z, MOr.of(phi, diamond_live(PredVar(z), guard)))


def AG_live(phi: MuFormula,
            guard: Union[str, Tuple[Var, ...], None] = None) -> MuFormula:
    """Invariance with persistence-guarded steps:
    ``nu Z. phi & [-](live(x...) & Z)``."""
    z = _fresh_pvar()
    return Nu(z, MAnd.of(phi, box_live(PredVar(z), guard)))


def AU_live(phi: MuFormula, psi: MuFormula,
            guard: Union[str, Tuple[Var, ...], None] = None) -> MuFormula:
    """Strong until with persistence: ``mu Z. psi | (phi & <->true &
    [-](live(x...) & Z))`` — the Appendix E request-system property shape."""
    z = _fresh_pvar()
    return Mu(z, MOr.of(
        psi, MAnd.of(phi, Diamond(_TRUE), box_live(PredVar(z), guard))))


from repro.fol.ast import FALSE as _FO_FALSE, TRUE as _FO_TRUE  # noqa: E402
from repro.mucalc.ast import QF  # noqa: E402

_TRUE = QF(_FO_TRUE)
_FALSE = QF(_FO_FALSE)


# -- encoding inverses ------------------------------------------------------
#
# The on-the-fly verification route and the diagnostics accept full fixpoint
# formulas; these destructurers recover the state property from the standard
# encodings built above (tolerating any argument order inside the boolean
# connective).

def _drop_modal_self_loop(subs, variable: str, modal_type):
    rest, found = [], False
    for sub in subs:
        if isinstance(sub, modal_type) and isinstance(sub.sub, PredVar) \
                and sub.sub.name == variable:
            found = True
        else:
            rest.append(sub)
    return rest if found and rest else None


def reachability_body(formula: MuFormula) -> Optional[MuFormula]:
    """Inverse of :func:`EF`: ``mu Z. phi | <->Z`` gives ``phi``."""
    if not isinstance(formula, Mu):
        return None
    subs = formula.sub.subs if isinstance(formula.sub, MOr) \
        else (formula.sub,)
    rest = _drop_modal_self_loop(subs, formula.var, Diamond)
    if rest is None:
        return None
    body = MOr.of(*rest)
    return None if formula.var in body.free_pvars() else body


def invariant_body(formula: MuFormula) -> Optional[MuFormula]:
    """Inverse of :func:`AG`: ``nu Z. phi & [-]Z`` gives ``phi``."""
    if not isinstance(formula, Nu):
        return None
    subs = formula.sub.subs if isinstance(formula.sub, MAnd) \
        else (formula.sub,)
    rest = _drop_modal_self_loop(subs, formula.var, Box)
    if rest is None:
        return None
    body = MAnd.of(*rest)
    return None if formula.var in body.free_pvars() else body
