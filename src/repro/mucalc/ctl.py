"""CTL-style sugar compiled into µ-calculus.

µ-calculus subsumes CTL (Section 3); these helpers build the standard
fixpoint encodings, in both the plain (µLA-compatible) form and the
persistence-guarded (µLP-compatible) form used throughout Appendix E.

Caveat on ``AF``/``AG``: the encodings use the usual semantics over total
transition systems. DCDS transition systems can have deadlock states (no
enabled action); on such states ``[-]Phi`` holds vacuously.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Optional, Tuple, Union

from repro.mucalc.ast import (
    Box, Diamond, Live, MAnd, MNot, MOr, Mu, MuFormula, Nu, PredVar,
    box_live, diamond_live)
from repro.relational.values import Var

_counter = itertools.count()


def _fresh_pvar() -> str:
    return f"Z{next(_counter)}"


def EX(phi: MuFormula) -> MuFormula:
    """Some successor satisfies ``phi``."""
    return Diamond(phi)


def AX(phi: MuFormula) -> MuFormula:
    """Every successor satisfies ``phi``."""
    return Box(phi)


def EF(phi: MuFormula) -> MuFormula:
    """Some path eventually reaches ``phi``: ``mu Z. phi | <->Z``."""
    z = _fresh_pvar()
    return Mu(z, MOr.of(phi, Diamond(PredVar(z))))


def AF(phi: MuFormula) -> MuFormula:
    """Every path eventually reaches ``phi``: ``mu Z. phi | (<->true & [-]Z)``.

    The ``<->true`` conjunct makes deadlock states non-accepting, matching
    the standard CTL semantics on possibly non-total systems.
    """
    z = _fresh_pvar()
    return Mu(z, MOr.of(phi, MAnd.of(Diamond(_TRUE), Box(PredVar(z)))))


def EG(phi: MuFormula) -> MuFormula:
    """Some path always satisfies ``phi``: ``nu Z. phi & (<->Z | [-]false)``.

    Finite (deadlocking) paths count as maximal paths.
    """
    z = _fresh_pvar()
    return Nu(z, MAnd.of(phi, MOr.of(Diamond(PredVar(z)), Box(_FALSE))))


def AG(phi: MuFormula) -> MuFormula:
    """Every reachable state satisfies ``phi``: ``nu Z. phi & [-]Z``."""
    z = _fresh_pvar()
    return Nu(z, MAnd.of(phi, Box(PredVar(z))))


def EU(phi: MuFormula, psi: MuFormula) -> MuFormula:
    """Exists-until: ``mu Z. psi | (phi & <->Z)``."""
    z = _fresh_pvar()
    return Mu(z, MOr.of(psi, MAnd.of(phi, Diamond(PredVar(z)))))


def AU(phi: MuFormula, psi: MuFormula) -> MuFormula:
    """All-until (strong): ``mu Z. psi | (phi & <->true & [-]Z)``."""
    z = _fresh_pvar()
    return Mu(z, MOr.of(
        psi, MAnd.of(phi, Diamond(_TRUE), Box(PredVar(z)))))


# -- persistence-guarded variants (µLP) ------------------------------------

def EF_live(phi: MuFormula,
            guard: Union[str, Tuple[Var, ...], None] = None) -> MuFormula:
    """Reachability along which the guarded values persist:
    ``mu Z. phi | <->(live(x...) & Z)`` (cf. Example 3.3)."""
    z = _fresh_pvar()
    return Mu(z, MOr.of(phi, diamond_live(PredVar(z), guard)))


def AG_live(phi: MuFormula,
            guard: Union[str, Tuple[Var, ...], None] = None) -> MuFormula:
    """Invariance with persistence-guarded steps:
    ``nu Z. phi & [-](live(x...) & Z)``."""
    z = _fresh_pvar()
    return Nu(z, MAnd.of(phi, box_live(PredVar(z), guard)))


def AU_live(phi: MuFormula, psi: MuFormula,
            guard: Union[str, Tuple[Var, ...], None] = None) -> MuFormula:
    """Strong until with persistence: ``mu Z. psi | (phi & <->true &
    [-](live(x...) & Z))`` — the Appendix E request-system property shape."""
    z = _fresh_pvar()
    return Mu(z, MOr.of(
        psi, MAnd.of(phi, Diamond(_TRUE), box_live(PredVar(z), guard))))


from repro.fol.ast import FALSE as _FO_FALSE, TRUE as _FO_TRUE  # noqa: E402
from repro.mucalc.ast import QF  # noqa: E402

_TRUE = QF(_FO_TRUE)
_FALSE = QF(_FO_FALSE)


# -- encoding inverses ------------------------------------------------------
#
# The on-the-fly verification route and the diagnostics accept full fixpoint
# formulas; these destructurers recover the state property from the standard
# encodings built above (tolerating any argument order inside the boolean
# connective).

def _drop_modal_self_loop(subs, variable: str, modal_type):
    rest, found = [], False
    for sub in subs:
        if isinstance(sub, modal_type) and isinstance(sub.sub, PredVar) \
                and sub.sub.name == variable:
            found = True
        else:
            rest.append(sub)
    return rest if found and rest else None


def reachability_body(formula: MuFormula) -> Optional[MuFormula]:
    """Inverse of :func:`EF`: ``mu Z. phi | <->Z`` gives ``phi``."""
    if not isinstance(formula, Mu):
        return None
    subs = formula.sub.subs if isinstance(formula.sub, MOr) \
        else (formula.sub,)
    rest = _drop_modal_self_loop(subs, formula.var, Diamond)
    if rest is None:
        return None
    body = MOr.of(*rest)
    return None if formula.var in body.free_pvars() else body


def invariant_body(formula: MuFormula) -> Optional[MuFormula]:
    """Inverse of :func:`AG`: ``nu Z. phi & [-]Z`` gives ``phi``."""
    if not isinstance(formula, Nu):
        return None
    subs = formula.sub.subs if isinstance(formula.sub, MAnd) \
        else (formula.sub,)
    rest = _drop_modal_self_loop(subs, formula.var, Box)
    if rest is None:
        return None
    body = MAnd.of(*rest)
    return None if formula.var in body.free_pvars() else body


# -- guarded encoding inverses (witness layer) ------------------------------

@dataclass(frozen=True)
class GuardedShape:
    """A destructured EF/AG encoding, guard included.

    ``guard`` is the tuple of LIVE terms conjoined with the recursion
    variable inside the modality — empty for the plain :func:`EF`/:func:`AG`
    encodings, the persistence terms for :func:`EF_live`/:func:`AG_live`.
    Terms are returned verbatim (values or :class:`Var`); callers that need
    ground guards — the certificate extractor — must check for themselves.
    """

    body: MuFormula
    guard: Tuple[Any, ...]


def _guarded_loop_terms(sub, variable: str, modal_type
                        ) -> Optional[Tuple[Any, ...]]:
    """Guard terms of ``<->(live(t...) & Z)`` / ``[-](live(t...) & Z)``.

    Returns ``()`` for the unguarded ``<->Z`` / ``[-]Z``, the flattened
    LIVE terms for the guarded conjunction form, ``None`` when ``sub`` is
    not a self-loop modality at all (including the implication-form boxes,
    whose violation semantics differ — those stay unrecognized)."""
    if not isinstance(sub, modal_type):
        return None
    inner = sub.sub
    if isinstance(inner, PredVar):
        return () if inner.name == variable else None
    if not isinstance(inner, MAnd):
        return None
    terms, seen_var = [], False
    for conjunct in inner.subs:
        if isinstance(conjunct, PredVar) and conjunct.name == variable \
                and not seen_var:
            seen_var = True
        elif isinstance(conjunct, Live):
            terms.extend(conjunct.terms)
        else:
            return None
    return tuple(terms) if seen_var else None


def _guarded_shape(formula: MuFormula, fix_type, bool_type, modal_type,
                   rebuild) -> Optional[GuardedShape]:
    if not isinstance(formula, fix_type):
        return None
    subs = formula.sub.subs if isinstance(formula.sub, bool_type) \
        else (formula.sub,)
    rest, guard = [], None
    for sub in subs:
        terms = None if guard is not None else \
            _guarded_loop_terms(sub, formula.var, modal_type)
        if terms is None:
            rest.append(sub)
        else:
            guard = terms
    if guard is None or not rest:
        return None
    body = rebuild(*rest)
    if formula.var in body.free_pvars():
        return None
    return GuardedShape(body, guard)


def reachability_shape(formula: MuFormula) -> Optional[GuardedShape]:
    """Inverse of :func:`EF` *and* :func:`EF_live`:
    ``mu Z. phi | <->(live(t...) & Z)`` gives ``(phi, (t...))``."""
    return _guarded_shape(formula, Mu, MOr, Diamond, MOr.of)


def invariant_shape(formula: MuFormula) -> Optional[GuardedShape]:
    """Inverse of :func:`AG` *and* :func:`AG_live`:
    ``nu Z. phi & [-](live(t...) & Z)`` gives ``(phi, (t...))``."""
    return _guarded_shape(formula, Nu, MAnd, Box, MAnd.of)
