"""Formula compiler: PNF, closure, alternation depth, fixpoint cells.

The compiled checking layer mirrors the exploration engine: the seed-era
checker re-derived everything about a formula on every ``evaluate`` call and
restarted every fixpoint from scratch. This module does the syntactic work
exactly once per formula:

* **positive normal form** — negation pushed to the leaves (FO queries,
  ``LIVE`` facts, free predicate variables) through the standard dualities
  ``~E = A~``, ``~<-> = [-]~``, ``~mu Z.Phi = nu Z.~Phi[Z := ~Z]``;
  syntactic monotonicity guarantees bound predicate variables stay positive;
* **plan tree** — one :class:`Plan` node per PNF occurrence, carrying the
  precomputed free individual/predicate variables (memo keys restrict the
  valuation to them) and a cost rank used to order ``&``/``|`` children so
  cheap, selective conjuncts (``LIVE`` guards, queries) run before modal and
  fixpoint subtrees;
* **fixpoint cells** — every ``mu``/``nu`` occurrence gets its own cell with
  its same/opposite-sign descendants precomputed, enabling Emerson–Lei
  iteration in the evaluator: a cell is only reset when an approximation it
  depends on moved *against* its iteration direction, and warm-starts
  otherwise;
* **alternation depth and closure size** — reported in ``checking_stats``
  and driving the benchmark sweep.

Everything here is transition-system independent; binding to a concrete TS
happens in :mod:`repro.mucalc.engine.evaluator`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import VerificationError
from repro.fol.ast import Formula
from repro.mucalc.ast import (
    Box, Diamond, Live, MAnd, MExists, MForall, MNot, MOr, Mu, MuFormula,
    Nu, PredVar, QF)
from repro.mucalc.syntax import check_monotone
from repro.relational.values import Var


# ---------------------------------------------------------------------------
# Positive normal form
# ---------------------------------------------------------------------------

def to_pnf(formula: MuFormula) -> MuFormula:
    """Push negations to the leaves (queries, LIVE, free predicate vars).

    Requires syntactic monotonicity (checked by the caller): occurrences of
    a bound predicate variable then sit under an even number of negations
    relative to their binder, so dualizing the binder keeps them positive.
    """
    return _pnf(formula, False, frozenset())


def _pnf(node: MuFormula, neg: bool, bound: FrozenSet[str]) -> MuFormula:
    if isinstance(node, MNot):
        return _pnf(node.sub, not neg, bound)
    if isinstance(node, (QF, Live)):
        return MNot(node) if neg else node
    if isinstance(node, PredVar):
        if node.name in bound or not neg:
            return node
        return MNot(node)
    if isinstance(node, MAnd):
        subs = [_pnf(sub, neg, bound) for sub in node.subs]
        return MOr.of(*subs) if neg else MAnd.of(*subs)
    if isinstance(node, MOr):
        subs = [_pnf(sub, neg, bound) for sub in node.subs]
        return MAnd.of(*subs) if neg else MOr.of(*subs)
    if isinstance(node, MExists):
        sub = _pnf(node.sub, neg, bound)
        return MForall(node.variables, sub) if neg \
            else MExists(node.variables, sub)
    if isinstance(node, MForall):
        sub = _pnf(node.sub, neg, bound)
        return MExists(node.variables, sub) if neg \
            else MForall(node.variables, sub)
    if isinstance(node, Diamond):
        sub = _pnf(node.sub, neg, bound)
        return Box(sub) if neg else Diamond(sub)
    if isinstance(node, Box):
        sub = _pnf(node.sub, neg, bound)
        return Diamond(sub) if neg else Box(sub)
    if isinstance(node, Mu):
        sub = _pnf(node.sub, neg, bound | {node.var})
        return Nu(node.var, sub) if neg else Mu(node.var, sub)
    if isinstance(node, Nu):
        sub = _pnf(node.sub, neg, bound | {node.var})
        return Mu(node.var, sub) if neg else Nu(node.var, sub)
    raise VerificationError(f"cannot normalize node {node!r}")


# ---------------------------------------------------------------------------
# Plans and fixpoint cells
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FixpointCell:
    """Static metadata of one ``mu``/``nu`` occurrence.

    ``mu_descendants``/``nu_descendants`` index the fixpoint occurrences
    strictly inside this one's body; the evaluator resets exactly the
    descendants whose iteration direction a change invalidates."""

    index: int
    name: str
    least: bool
    depth: int
    alternation_depth: int
    mu_descendants: Tuple[int, ...] = ()
    nu_descendants: Tuple[int, ...] = ()


@dataclass
class Plan:
    """One evaluation node; ``uid`` keys the evaluator's memo table."""

    uid: int
    kind: str
    free_ivars: Tuple[Var, ...]
    free_pvars: Tuple[str, ...]
    cost_rank: int
    children: Tuple["Plan", ...] = ()
    # kind-specific payloads -------------------------------------------------
    query: Optional[Formula] = None          # "query"
    terms: Tuple = ()                        # "live"
    negated: bool = False                    # "query"/"live"/"var"
    name: str = ""                           # "var"/"fix"
    variables: Tuple[Var, ...] = ()          # "exists"/"forall"
    guarded_vars: FrozenSet[Var] = frozenset()
    cell: Optional[FixpointCell] = None      # "fix"
    least: bool = False                      # "fix"


@dataclass
class CompiledFormula:
    """The per-formula artifact shared by every evaluation."""

    source: MuFormula
    pnf: MuFormula
    root: Plan
    cells: Tuple[FixpointCell, ...]
    closure_size: int
    alternation_depth: int
    quantifier_count: int
    modal_count: int

    def info(self) -> Dict[str, object]:
        return {
            "closure_size": self.closure_size,
            "alternation_depth": self.alternation_depth,
            "fixpoint_cells": len(self.cells),
            "quantifiers": self.quantifier_count,
            "modalities": self.modal_count,
        }


_COST_LEAF, _COST_QUANT, _COST_MODAL, _COST_FIX = 0, 1, 2, 3


def _sorted_vars(variables) -> Tuple[Var, ...]:
    return tuple(sorted(frozenset(variables), key=lambda v: v.name))


def _exists_guard(sub: MuFormula) -> FrozenSet[Var]:
    """Variables guarded by a top-level ``LIVE`` conjunct of ``sub``."""
    if isinstance(sub, Live):
        return sub.free_ivars()
    if isinstance(sub, MAnd):
        found: set = set()
        for conjunct in sub.subs:
            if isinstance(conjunct, Live):
                found.update(conjunct.free_ivars())
        return frozenset(found)
    return frozenset()


def _forall_guard(sub: MuFormula) -> FrozenSet[Var]:
    """Variables guarded by a top-level ``~LIVE`` disjunct of ``sub``."""
    if isinstance(sub, MNot) and isinstance(sub.sub, Live):
        return sub.sub.free_ivars()
    if isinstance(sub, MOr):
        found: set = set()
        for disjunct in sub.subs:
            if isinstance(disjunct, MNot) and isinstance(disjunct.sub, Live):
                found.update(disjunct.sub.free_ivars())
        return frozenset(found)
    return frozenset()


class _Compiler:
    def __init__(self):
        self.uids = itertools.count()
        self.cells: List[FixpointCell] = []
        self.quantifiers = 0
        self.modalities = 0

    def build(self, node: MuFormula, fix_depth: int) -> Plan:
        uid = next(self.uids)
        if isinstance(node, QF):
            return Plan(uid, "query",
                        _sorted_vars(node.query.free_variables()), (),
                        _COST_LEAF, query=node.query)
        if isinstance(node, Live):
            return Plan(uid, "live", _sorted_vars(node.free_ivars()), (),
                        _COST_LEAF, terms=node.terms)
        if isinstance(node, MNot):
            # PNF leaves negation only on leaves.
            inner = self.build(node.sub, fix_depth)
            return Plan(uid, inner.kind, inner.free_ivars, inner.free_pvars,
                        _COST_LEAF, negated=True, query=inner.query,
                        terms=inner.terms, name=inner.name)
        if isinstance(node, (MAnd, MOr)):
            children = [self.build(sub, fix_depth) for sub in node.subs]
            # Cheap, selective children first: a LIVE guard or query that
            # comes back empty short-circuits the modal/fixpoint subtrees.
            children.sort(key=lambda plan: plan.cost_rank)
            return Plan(
                uid, "and" if isinstance(node, MAnd) else "or",
                _merge_ivars(children), _merge_pvars(children),
                max(plan.cost_rank for plan in children),
                children=tuple(children))
        if isinstance(node, (MExists, MForall)):
            self.quantifiers += 1
            sub = self.build(node.sub, fix_depth)
            exists = isinstance(node, MExists)
            guard = _exists_guard(node.sub) if exists \
                else _forall_guard(node.sub)
            variables = tuple(node.variables)
            return Plan(
                uid, "exists" if exists else "forall",
                tuple(v for v in sub.free_ivars if v not in variables),
                sub.free_pvars, max(sub.cost_rank, _COST_QUANT),
                children=(sub,), variables=variables,
                guarded_vars=guard & frozenset(variables))
        if isinstance(node, (Diamond, Box)):
            self.modalities += 1
            sub = self.build(node.sub, fix_depth)
            return Plan(
                uid, "diamond" if isinstance(node, Diamond) else "box",
                sub.free_ivars, sub.free_pvars,
                max(sub.cost_rank, _COST_MODAL), children=(sub,))
        if isinstance(node, PredVar):
            return Plan(uid, "var", (), (node.name,), _COST_LEAF,
                        name=node.name)
        if isinstance(node, (Mu, Nu)):
            least = isinstance(node, Mu)
            index = len(self.cells)
            self.cells.append(None)  # reserve the slot; descendants follow
            sub = self.build(node.sub, fix_depth + 1)
            inner = self.cells[index + 1:]
            alternation = 1 + max(
                (cell.alternation_depth
                 for cell in inner if cell.least != least), default=0)
            cell = FixpointCell(
                index, node.var, least, fix_depth, alternation,
                mu_descendants=tuple(
                    cell.index for cell in inner if cell.least),
                nu_descendants=tuple(
                    cell.index for cell in inner if not cell.least))
            self.cells[index] = cell
            return Plan(
                uid, "fix", sub.free_ivars,
                tuple(name for name in sub.free_pvars if name != node.var),
                _COST_FIX, children=(sub,), name=node.var, cell=cell,
                least=least)
        raise VerificationError(f"cannot compile node {node!r}")


def _merge_ivars(children: List[Plan]) -> Tuple[Var, ...]:
    merged: set = set()
    for plan in children:
        merged.update(plan.free_ivars)
    return _sorted_vars(merged)


def _merge_pvars(children: List[Plan]) -> Tuple[str, ...]:
    merged: set = set()
    for plan in children:
        merged.update(plan.free_pvars)
    return tuple(sorted(merged))


def compile_formula(formula: MuFormula) -> CompiledFormula:
    """Compile a µL formula into its evaluation plan.

    Raises :class:`~repro.errors.MonotonicityError` on non-monotone
    fixpoints (the same check the direct evaluator performs)."""
    check_monotone(formula)
    pnf = to_pnf(formula)
    compiler = _Compiler()
    root = compiler.build(pnf, 0)
    cells = tuple(compiler.cells)
    return CompiledFormula(
        source=formula,
        pnf=pnf,
        root=root,
        cells=cells,
        closure_size=len(set(pnf.walk())),
        alternation_depth=max(
            (cell.alternation_depth for cell in cells), default=0),
        quantifier_count=compiler.quantifiers,
        modal_count=compiler.modalities,
    )
