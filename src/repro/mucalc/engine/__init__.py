"""Compiled model-checking layer (the checking twin of ``repro.engine``).

The seed checker interpreted formulas directly: every ``evaluate`` call
re-derived the quantification domain, re-checked monotonicity, restarted
every fixpoint from scratch, and scanned all states for each modality.
This package compiles a formula once (:mod:`compiler`: positive normal
form, per-occurrence fixpoint cells with dependency metadata, alternation
depth, cost-ordered plans) and evaluates it with indexed machinery
(:mod:`evaluator`: predecessor-index modalities, lazy LIVE-restricted
quantifiers, version-keyed memoization, Emerson–Lei warm-started
fixpoints). :mod:`onthefly` fuses the checker with
:class:`repro.engine.Explorer` so safety/reachability formulas stop the
state-space construction on the first witness or violation.

:class:`repro.mucalc.ModelChecker` fronts this package; the seed-style
recursive evaluator remains available (``compiled=False``) as the parity
reference. :mod:`witness` reuses the predecessor index to walk converged
fixpoints backwards into minimal certifying runs (fronted by
:mod:`repro.mucalc.witness`).
"""

from repro.mucalc.engine.compiler import (
    CompiledFormula, FixpointCell, Plan, compile_formula, to_pnf)
from repro.mucalc.engine.evaluator import (
    CheckStats, CompiledChecker, box_states, deadlock_states,
    diamond_states)
from repro.mucalc.engine.onthefly import (
    OnTheFlyVerifier, PropertyShape, evaluate_local, is_state_local,
    recognize_shape)
from repro.mucalc.engine.witness import (
    reach_ranks, violation_trace, witness_trace)

__all__ = [
    "CheckStats", "CompiledChecker", "CompiledFormula", "FixpointCell",
    "OnTheFlyVerifier", "Plan", "PropertyShape", "box_states",
    "compile_formula", "deadlock_states", "diamond_states",
    "evaluate_local", "is_state_local", "reach_ranks", "recognize_shape",
    "to_pnf", "violation_trace", "witness_trace",
]
