"""Indexed µ-calculus evaluation over a compiled formula.

:class:`CompiledChecker` binds a :class:`~repro.mucalc.engine.compiler.
CompiledFormula` to one finite transition system and evaluates it with the
machinery the seed checker lacked:

* ``Diamond``/``Box`` propagate backward along the transition system's lazy
  predecessor index (:meth:`TransitionSystem.predecessors`) — ``<->Phi`` is
  the union of the predecessors of the target, ``[-]Phi`` counts each
  predecessor's successors inside the target against its out-degree —
  instead of scanning every state and intersecting successor sets;
* quantifiers enumerate assignments lazily (no materialized ``domain^k``
  list) and, where a ``LIVE`` guard makes it sound (the µLA/µLP shapes),
  restrict guarded variables to values that are live in *some* state;
  conjunction ordering from the compiler then prunes per state: the
  memoized ``LIVE(d)`` conjunct runs first and empties the intersection
  before the expensive subtree is touched;
* subformula extensions are memoized across fixpoint iterations, keyed by
  the plan node, the valuation restricted to its free individual variables,
  and the *versions* of the fixpoint approximations it depends on — so an
  outer iteration only recomputes the slice of the formula that actually
  reads the changed variable;
* fixpoints iterate Emerson–Lei style: every cell keeps its approximation
  between visits and warm-starts whenever the enclosing changes moved in
  its own iteration direction; it is reset only when an approximation it
  depends on moved against it (an enclosing opposite-sign change).

The module-level helpers (:func:`diamond_states`, :func:`box_states`,
:func:`deadlock_states`) are shared with the propositional checker of
:mod:`repro.mucalc.prop`.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import (
    Any, Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple)

from repro.errors import VerificationError
from repro.fol.evaluation import holds
from repro.mucalc.engine.compiler import CompiledFormula, Plan
from repro.relational.values import Var
from repro.semantics.transition_system import State, TransitionSystem
from repro.utils import sorted_values

_MISSING = object()


# ---------------------------------------------------------------------------
# Indexed modal operators (shared with prop.prop_check)
# ---------------------------------------------------------------------------

def diamond_states(ts: TransitionSystem,
                   target: Iterable[State]) -> FrozenSet[State]:
    """``<->target``: union of the predecessors of the target states."""
    result: set = set()
    for state in target:
        result |= ts.predecessors(state)
    return frozenset(result)


def box_states(ts: TransitionSystem, target: Iterable[State],
               deadlocks: FrozenSet[State]) -> FrozenSet[State]:
    """``[-]target`` by successor counting along the predecessor index.

    A state satisfies ``[-]Phi`` iff the number of its distinct successors
    inside the target equals its out-degree; deadlock states satisfy it
    vacuously (pass :func:`deadlock_states` as ``deadlocks``)."""
    counts: Dict[State, int] = {}
    for state in target:
        for pred in ts.predecessors(state):
            counts[pred] = counts.get(pred, 0) + 1
    satisfied = frozenset(
        state for state, count in counts.items()
        if count == ts.out_degree(state))
    return satisfied | deadlocks


def deadlock_states(ts: TransitionSystem) -> FrozenSet[State]:
    """States without successors (``[-]Phi`` holds vacuously there)."""
    return frozenset(
        state for state in ts.states if not ts.sorted_successors(state))


# ---------------------------------------------------------------------------
# Runtime state
# ---------------------------------------------------------------------------

@dataclass
class CheckStats:
    """Counters of one :meth:`CompiledChecker.evaluate` run."""

    iterations: int = 0
    resets: int = 0
    peak_extension: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    duration: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "iterations": self.iterations,
            "resets": self.resets,
            "peak_extension": self.peak_extension,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "duration_sec": self.duration,
        }


class _CellState:
    """Mutable approximation of one fixpoint cell.

    ``context`` records the valuation (restricted to the fixpoint's free
    individual variables) the approximation was computed under — a warm
    start under a *different* quantifier assignment would be unsound, so a
    context change forces a reset."""

    __slots__ = ("approx", "version", "needs_reset", "context")

    def __init__(self):
        self.approx: Optional[FrozenSet[State]] = None
        self.version = -1
        self.needs_reset = True
        self.context: Optional[Tuple] = None


class CompiledChecker:
    """Evaluates one compiled formula over one transition system.

    The instance is persistent: the memo table survives across
    :meth:`evaluate` calls (keys carry approximation versions, so stale
    entries simply stop matching), which makes repeated checks of the same
    formula — fixpoint unfoldings, diagnostics — nearly free.
    """

    #: Safety valve: the memo table is cleared when it outgrows this.
    MEMO_LIMIT = 1_000_000

    def __init__(self, ts: TransitionSystem, compiled: CompiledFormula,
                 domain: FrozenSet[Any],
                 adom: Optional[Callable[[State], FrozenSet[Any]]] = None):
        self.ts = ts
        self.compiled = compiled
        self.states: FrozenSet[State] = ts.states
        self.domain = frozenset(domain)
        self._domain_ordered: List[Any] = sorted_values(self.domain)
        # LIVE-guarded quantified variables only need values that are live
        # in some state; dead extra-domain values and constants contribute
        # nothing under the guard.
        self._live_ordered: List[Any] = sorted_values(
            frozenset(ts.values()) & self.domain)
        self._adom = adom or self._default_adom
        self._adom_cache: Dict[State, FrozenSet[Any]] = {}
        self._deadlocks: Optional[FrozenSet[State]] = None
        self._memo: Dict[Tuple, FrozenSet[State]] = {}
        self._cells: List[_CellState] = [
            _CellState() for _ in compiled.cells]
        self._versions = itertools.count()
        self.run_stats = CheckStats()
        self.last_stats: Dict[str, Any] = {}

    # -- public API -----------------------------------------------------------

    def evaluate(self, valuation: Optional[Mapping[Var, Any]] = None,
                 predicates: Optional[Mapping[str, Iterable[State]]] = None
                 ) -> FrozenSet[State]:
        started = time.perf_counter()
        env: Dict[str, Any] = {
            name: frozenset(states)
            for name, states in (predicates or {}).items()}
        # Approximations may not warm-start across top-level calls (the
        # valuation may differ); versions stay monotone so old memo entries
        # cannot be confused with the new run's.
        for cell in self._cells:
            cell.needs_reset = True
        self.run_stats = CheckStats()
        result = self._eval(self.compiled.root, dict(valuation or {}), env)
        self.run_stats.duration = time.perf_counter() - started
        self.last_stats = {
            "mode": "compiled",
            "backend": "sets",
            **self.compiled.info(),
            **self.run_stats.as_dict(),
            "memo_entries": len(self._memo),
        }
        return result

    def fixpoint_extension(self, index: int) -> Optional[FrozenSet[State]]:
        """Final approximation of fixpoint cell ``index`` as a state set.

        Read-only view for the witness layer: after :meth:`evaluate`
        converged, the cell of the outermost ``mu``/``nu`` holds that
        fixpoint's extension, which bounds the support of any certifying
        run. ``None`` when the cell was never evaluated (e.g. short-circuit
        skipped its subtree)."""
        approx = self._cells[index].approx
        return approx

    def body_extension(self) -> Optional[FrozenSet[State]]:
        """Extension of the root fixpoint's predicate-variable-free operand.

        For the certificate shapes ``mu Z. body | <->(...)`` and ``nu Z.
        body & [-](...)`` the ``body`` compiles to exactly the pvar-free
        children of the connective under the root fixpoint, and the
        converged run already evaluated each of them — reading the set
        back here is a pure memo hit (their keys carry no cell versions).
        ``None`` when the root shape does not decompose that way or the
        candidate parts are open. Callers should only rely on this for
        state-local bodies (a closed nested fixpoint part would re-iterate
        its cell rather than hit the memo)."""
        root = self.compiled.root
        if root.kind != "fix" or not root.children:
            return None
        inner = root.children[0]
        if inner.kind not in ("and", "or"):
            return None
        parts = [child for child in inner.children if not child.free_pvars]
        if not parts or any(part.free_ivars for part in parts):
            return None
        combined = self._eval(parts[0], {}, {})
        for part in parts[1:]:
            result = self._eval(part, {}, {})
            combined = combined | result if inner.kind == "or" \
                else combined & result
        return self._as_state_set(combined)

    def _as_state_set(self, result) -> FrozenSet[State]:
        """Hook for mask-based subclasses (sets backend: identity)."""
        return result

    # -- plumbing -------------------------------------------------------------

    def _default_adom(self, state: State) -> FrozenSet[Any]:
        cached = self._adom_cache.get(state)
        if cached is None:
            cached = self.ts.db(state).active_domain()
            self._adom_cache[state] = cached
        return cached

    def deadlocks(self) -> FrozenSet[State]:
        if self._deadlocks is None:
            self._deadlocks = deadlock_states(self.ts)
        return self._deadlocks

    def _memo_key(self, plan: Plan, valuation: Dict[Var, Any],
                  env: Dict[str, Any]) -> Tuple:
        pvals: List[Tuple] = []
        for name in plan.free_pvars:
            binding = env.get(name)
            if isinstance(binding, int):
                pvals.append((name, binding, self._cells[binding].version))
            elif binding is None:
                pvals.append((name, -1, -1))
            else:  # externally supplied constant extension
                pvals.append((name, binding))
        return (plan.uid,
                tuple(valuation.get(var, _MISSING)
                      for var in plan.free_ivars),
                tuple(pvals))

    def _eval(self, plan: Plan, valuation: Dict[Var, Any],
              env: Dict[str, Any]) -> FrozenSet[State]:
        if plan.kind == "var":
            return self._eval_var(plan, env)
        key = self._memo_key(plan, valuation, env)
        cached = self._memo.get(key)
        if cached is not None:
            self.run_stats.memo_hits += 1
            return cached
        self.run_stats.memo_misses += 1
        result = self._compute(plan, valuation, env)
        if len(self._memo) >= self.MEMO_LIMIT:
            self._memo.clear()
        self._memo[key] = result
        if len(result) > self.run_stats.peak_extension:
            self.run_stats.peak_extension = len(result)
        return result

    def _compute(self, plan: Plan, valuation: Dict[Var, Any],
                 env: Dict[str, Any]) -> FrozenSet[State]:
        kind = plan.kind
        if kind == "query":
            return self._eval_query(plan, valuation)
        if kind == "live":
            return self._eval_live(plan, valuation)
        if kind == "and":
            result = self.states
            for child in plan.children:
                result &= self._eval(child, valuation, env)
                if not result:
                    break
            return result
        if kind == "or":
            result: FrozenSet[State] = frozenset()
            for child in plan.children:
                result |= self._eval(child, valuation, env)
                if result == self.states:
                    break
            return result
        if kind == "exists":
            return self._eval_quantifier(plan, valuation, env, exists=True)
        if kind == "forall":
            return self._eval_quantifier(plan, valuation, env, exists=False)
        if kind == "diamond":
            target = self._eval(plan.children[0], valuation, env)
            return diamond_states(self.ts, target)
        if kind == "box":
            target = self._eval(plan.children[0], valuation, env)
            return box_states(self.ts, target, self.deadlocks())
        if kind == "fix":
            return self._eval_fix(plan, valuation, env)
        raise VerificationError(f"cannot evaluate plan kind {kind!r}")

    # -- leaves ---------------------------------------------------------------

    def _eval_query(self, plan: Plan,
                    valuation: Dict[Var, Any]) -> FrozenSet[State]:
        query = plan.query
        relevant = {var: valuation[var] for var in plan.free_ivars
                    if var in valuation}
        missing = set(plan.free_ivars) - set(relevant)
        if missing:
            raise VerificationError(
                f"query {query!r} has unbound variables "
                f"{sorted(var.name for var in missing)}")
        result = frozenset(
            state for state in self.states
            if holds(query, self.ts.db(state), relevant))
        return self.states - result if plan.negated else result

    def _eval_live(self, plan: Plan,
                   valuation: Dict[Var, Any]) -> FrozenSet[State]:
        values = []
        for term in plan.terms:
            if isinstance(term, Var):
                if term not in valuation:
                    raise VerificationError(
                        f"LIVE uses unbound variable {term.name}")
                values.append(valuation[term])
            else:
                values.append(term)
        result = frozenset(
            state for state in self.states
            if all(value in self._adom(state) for value in values))
        return self.states - result if plan.negated else result

    def _eval_var(self, plan: Plan, env: Dict[str, Any]) -> FrozenSet[State]:
        binding = env.get(plan.name)
        if binding is None:
            raise VerificationError(
                f"unbound predicate variable {plan.name}")
        result = self._cells[binding].approx \
            if isinstance(binding, int) else binding
        return self.states - result if plan.negated else result

    # -- quantifiers ----------------------------------------------------------

    def _eval_quantifier(self, plan: Plan, valuation: Dict[Var, Any],
                         env: Dict[str, Any], exists: bool
                         ) -> FrozenSet[State]:
        ranges = [
            self._live_ordered if var in plan.guarded_vars
            else self._domain_ordered
            for var in plan.variables]
        sub = plan.children[0]
        if exists:
            result: FrozenSet[State] = frozenset()
            for combo in itertools.product(*ranges):
                extended = dict(valuation)
                extended.update(zip(plan.variables, combo))
                result |= self._eval(sub, extended, env)
                if result == self.states:
                    break
            return result
        result = self.states
        for combo in itertools.product(*ranges):
            extended = dict(valuation)
            extended.update(zip(plan.variables, combo))
            result &= self._eval(sub, extended, env)
            if not result:
                break
        return result

    # -- fixpoints ------------------------------------------------------------

    def _eval_fix(self, plan: Plan, valuation: Dict[Var, Any],
                  env: Dict[str, Any]) -> FrozenSet[State]:
        meta = plan.cell
        cell = self._cells[meta.index]
        context = tuple(valuation.get(var, _MISSING)
                        for var in plan.free_ivars)
        if cell.needs_reset or cell.context != context:
            cell.approx = frozenset() if plan.least else self.states
            cell.version = next(self._versions)
            cell.needs_reset = False
            cell.context = context
            self.run_stats.resets += 1
            # A reset moves a mu down / a nu up; invalidate exactly the
            # descendants whose warm start that direction breaks.
            self._flag_descendants(meta, increase=not plan.least)
        extended = dict(env)
        extended[meta.name] = meta.index
        while True:
            self.run_stats.iterations += 1
            updated = self._eval(plan.children[0], valuation, extended)
            if updated == cell.approx:
                return cell.approx
            cell.approx = updated
            cell.version = next(self._versions)
            # mu iterations increase, nu iterations decrease (warm starts
            # preserve monotone iteration; see the module docstring).
            self._flag_descendants(meta, increase=plan.least)

    def _flag_descendants(self, meta, increase: bool) -> None:
        # An increasing change breaks the warm start of descendant nus
        # (they iterate downward toward a now-larger target); a decreasing
        # change breaks descendant mus.
        targets = meta.nu_descendants if increase else meta.mu_descendants
        for index in targets:
            self._cells[index].needs_reset = True
