"""Rank-annotated trace extraction over the predecessor index.

The certificate layer (:mod:`repro.mucalc.witness`) reduces both certificate
kinds to one reachability question over the transition system:

* an ``EF``-witness is a run from the initial state to a state satisfying
  the body, every *entered* state keeping the guard values live (the µLP
  ``mu Z. phi | <->(live(g) & Z)`` shape; plain ``EF`` has an empty guard);
* an ``AG``-violation is the dual µ-witness: ``~(nu Z. phi & [-](live(g) &
  Z))`` unfolds to ``mu Z. ~phi | <->(~live(g) | Z)``, i.e. a run to a
  ``~phi`` state — or to any state where the guard died, provided at least
  one step was taken (a dead guard discharges the box only for the state
  *entered*).

Minimality comes from the µ-approximant structure: the backward BFS of
:func:`reach_ranks` computes ``rank(s) = min k`` with ``s`` first appearing
in the ``k``-th approximant of the reduced µ-formula (= length of the
shortest valid run suffix from ``s``), walking
:meth:`TransitionSystem.predecessors` from the terminal states. The forward
walk then descends ranks by exactly one per step, so the extracted run has
length ``rank(initial)`` — no shorter certifying run exists, and every
strict prefix ends in a state of positive rank, which by construction
satisfies neither terminal condition. Tie-breaks follow
``sorted_labeled_edges`` order, making the trace a pure function of the
transition system — bit-identical across engine backends and worker
counts whenever the build is.

When the offline engine is available, the converged extension of the
outermost fixpoint cell (:meth:`CompiledChecker.fixpoint_extension`) bounds
the BFS support: every non-terminal state of a valid run lies inside the
µ-extension (witness) or outside the ν-extension (violation), so states
beyond it need not be ranked.
"""

from __future__ import annotations

from typing import (
    Any, Callable, Dict, FrozenSet, List, Optional, Tuple)

from repro.mucalc.ast import MuFormula
from repro.mucalc.engine.onthefly import evaluate_local
from repro.semantics.transition_system import State, TransitionSystem

#: A raw extracted run: ``(label-in, state)`` pairs, first label ``None``.
RawTrace = List[Tuple[Optional[str], State]]


def guard_live(ts: TransitionSystem, state: State,
               guard: Tuple[Any, ...]) -> bool:
    """Are all (ground) guard values in the state's active domain?"""
    if not guard:
        return True
    adom = ts.db(state).active_domain()
    return all(value in adom for value in guard)


def body_holds(ts: TransitionSystem, state: State, body: MuFormula) -> bool:
    """State-local body truth at one state (adom-confined quantifiers)."""
    return evaluate_local(body, ts.db(state))


def reach_ranks(ts: TransitionSystem, targets: FrozenSet[State],
                enterable: Callable[[State], bool],
                support: Optional[FrozenSet[State]] = None,
                stop_at: Optional[State] = None) -> Dict[State, int]:
    """Backward BFS ranks: shortest valid run-suffix length per state.

    ``rank(s) = 0`` for the terminal states; rank ``k`` states have an edge
    to an *enterable* rank ``k-1`` state. Propagation out of ``u`` requires
    ``enterable(u)`` — any run reaching a terminal through ``u`` steps into
    ``u`` — but a non-enterable terminal keeps rank 0: a run may *start*
    there. Non-terminal ranking is restricted to ``support`` when given
    (terminals are ranked unconditionally; a violation's dead-guard
    terminal legitimately sits outside the dual µ-extension).

    ``stop_at`` short-circuits the BFS once that state is ranked: every
    level below it is already complete by then, which is all
    :func:`descend` ever reads, and the rank it got is final (BFS
    minimality) — so the returned partial map descends identically to the
    full one.
    """
    ranks: Dict[State, int] = {}
    frontier: List[State] = []
    for state in targets:
        ranks[state] = 0
        frontier.append(state)
    if stop_at is not None and stop_at in ranks:
        return ranks
    rank = 0
    while frontier:
        rank += 1
        next_frontier: List[State] = []
        for state in frontier:
            if not enterable(state):
                continue
            for pred in ts.predecessors(state):
                if pred in ranks:
                    continue
                if support is not None and pred not in support:
                    continue
                ranks[pred] = rank
                if pred == stop_at:
                    return ranks
                next_frontier.append(pred)
        frontier = next_frontier
    return ranks


def descend(ts: TransitionSystem, ranks: Dict[State, int], start: State,
            enterable: Callable[[State], bool]) -> Optional[RawTrace]:
    """Forward walk from ``start`` descending ranks by one per step.

    Deterministic: at each state the first qualifying edge in
    ``sorted_labeled_edges`` order is taken. Returns ``None`` if the
    descent dead-ends (a rank inconsistency — callers treat it as
    "no certifying run" rather than an invariant violation)."""
    rank = ranks.get(start)
    if rank is None:
        return None
    trace: RawTrace = [(None, start)]
    current = start
    while rank > 0:
        chosen: Optional[Tuple[Optional[str], State]] = None
        for label, target in ts.sorted_labeled_edges(current):
            if ranks.get(target) == rank - 1 and enterable(target):
                chosen = (label, target)
                break
        if chosen is None:
            return None
        trace.append(chosen)
        current = chosen[1]
        rank -= 1
    return trace


def witness_trace(ts: TransitionSystem, body: MuFormula,
                  guard: Tuple[Any, ...],
                  support: Optional[FrozenSet[State]] = None,
                  targets: Optional[FrozenSet[State]] = None
                  ) -> Optional[RawTrace]:
    """Shortest run from the initial state to a body-satisfying state,
    guard values live in every entered state. ``None`` when no such run
    exists (the reachability verdict should then be negative).

    ``targets`` may carry a precomputed body extension (the caller's
    compiled checker evaluates the body with indexed machinery); when
    absent, the body is evaluated state-locally over the scan set.
    """
    precomputed = targets is not None
    if targets is None:
        # Every body-state is rank 0 of the µ-approximant, hence inside
        # the µ-extension: a support set also bounds the (body-evaluating,
        # and therefore expensive) target scan.
        scan = support if support is not None else ts.states
        targets = frozenset(
            state for state in scan if body_holds(ts, state, body))
        if ts.initial not in targets and body_holds(ts, ts.initial, body):
            # Guards against a stale support that excludes the initial
            # state: the trivial 0-length witness must stay reachable.
            targets |= {ts.initial}

    def enterable(state: State) -> bool:
        return guard_live(ts, state, guard)

    ranks = reach_ranks(ts, targets, enterable, support,
                        stop_at=ts.initial)
    if ts.initial not in ranks and support is not None:
        # The support set came from an engine cell; if it disagrees with
        # the backward reachability (stale or partial evaluation), retry
        # unrestricted rather than fail.
        if not precomputed:
            targets = frozenset(
                state for state in ts.states
                if body_holds(ts, state, body))
        ranks = reach_ranks(ts, targets, enterable, None,
                            stop_at=ts.initial)
    return descend(ts, ranks, ts.initial, enterable)


def violation_trace(ts: TransitionSystem, body: MuFormula,
                    guard: Tuple[Any, ...],
                    support: Optional[FrozenSet[State]] = None,
                    bad: Optional[FrozenSet[State]] = None
                    ) -> Optional[RawTrace]:
    """Shortest run discharging ``~(nu Z. body & [-](live(guard) & Z))``.

    Terminals are the ``~body`` states, plus — when the encoding is
    guarded — the states whose active domain dropped a guard value;
    the latter only end a run of length >= 1 (see module docstring), which
    surfaces exactly in the initial-state corner handled here: an initial
    state that is a dead-guard terminal but satisfies the body needs a
    first step before ranks apply.

    ``bad`` may carry the precomputed ``~body`` set (complement of the
    caller's compiled body extension); when absent, the body is evaluated
    state-locally over the scan set.
    """
    initial = ts.initial
    precomputed = bad is not None
    if bad is None:
        # Every ~body state falsifies the ν-formula outright, so the bad
        # scan may be confined to the support (= complement of the
        # ν-extension); dead-guard terminals can sit *inside* the
        # extension (liveness is charged to the entering edge), but their
        # scan is a cheap adom membership test, so it stays global.
        scan = support if support is not None else ts.states
        # The initial state's membership is decided directly (not through
        # a possibly-stale support): a bad initial is a trivial violation.
        bad = frozenset(
            state for state in scan
            if state != initial and not body_holds(ts, state, body))
        if not body_holds(ts, initial, body):
            bad |= {initial}
    initial_bad = initial in bad
    dead = frozenset(
        state for state in ts.states
        if not guard_live(ts, state, guard)) if guard else frozenset()

    def enterable(state: State) -> bool:
        return True

    # The dead-but-healthy initial corner below reads the ranks of the
    # initial state's *successors*; only then must the BFS run to
    # completion instead of stopping once the initial state is ranked.
    stop = None if (initial in dead and not initial_bad) else initial
    ranks = reach_ranks(ts, bad | dead, enterable, support, stop_at=stop)
    if initial not in ranks and support is not None:
        if not precomputed:
            bad = frozenset(
                state for state in ts.states
                if not body_holds(ts, state, body))
        ranks = reach_ranks(ts, bad | dead, enterable, None, stop_at=stop)
    if not initial_bad and initial in dead:
        # Rank 0 by dead guard only: force a real first step to the best
        # ranked successor (possibly a self-loop back into the initial).
        best: Optional[Tuple[int, Optional[str], State]] = None
        for label, target in ts.sorted_labeled_edges(initial):
            rank = ranks.get(target)
            if rank is not None and (best is None or rank < best[0]):
                best = (rank, label, target)
        if best is None:
            return None
        tail = descend(ts, ranks, best[2], enterable)
        if tail is None:
            return None
        return [(None, initial), (best[1], best[2])] + tail[1:]
    return descend(ts, ranks, initial, enterable)


def call_bindings(source: State, target: State
                  ) -> Tuple[Tuple[Any, Any], ...]:
    """Service-call results minted by the step ``source -> target``.

    ``DetState``-style states carry the accumulated ``call_map``; the
    step's own bindings are the entries the target added. States without
    a call map (plain-instance nondeterministic states) yield ``()``.
    """
    source_map = getattr(source, "call_map", None)
    target_map = getattr(target, "call_map", None)
    if source_map is None or target_map is None:
        return ()
    seen = set(source_map)
    return tuple(entry for entry in target_map if entry not in seen)
