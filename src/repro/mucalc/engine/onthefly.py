"""On-the-fly verification: fuse exploration with checking.

Safety and reachability properties — the ``AG phi`` / ``EF phi`` fixpoint
encodings of :mod:`repro.mucalc.ctl` — have verdicts that depend only on
whether some reachable state satisfies a *state-local* body. For those, the
full Table 1 route (build the entire abstraction, then run the fixpoint
checker) is wasteful: the verdict is often decided by the first witness or
violation discovered. This module provides

* :func:`recognize_shape` — destructures ``mu Z. phi | <->Z`` and
  ``nu Z. phi & [-]Z`` (in any argument order) into a
  :class:`PropertyShape`, provided ``phi`` is *state-local*: no modalities,
  fixpoints, or predicate variables, and every quantifier is LIVE-guarded
  in the µLA shapes (``E x. LIVE(x) & ...`` / ``A x. LIVE(x) -> ...``), so
  its range collapses to the state's own active domain;
* :func:`evaluate_local` — evaluates a state-local body on a single
  database instance, no transition system required;
* :class:`OnTheFlyVerifier` — an :class:`repro.engine.Explorer` observer
  that checks every discovered state and stops the exploration the moment
  the verdict is decided.

``pipeline.verify(..., on_the_fly=True)`` routes through here when the
formula qualifies and falls back to the compiled offline checker otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Mapping, Optional

from repro.fol.evaluation import holds
from repro.mucalc.ast import (
    Box, Diamond, Live, MAnd, MExists, MForall, MNot, MOr, Mu, MuFormula,
    Nu, PredVar, QF)
from repro.mucalc.engine.compiler import _exists_guard, _forall_guard
from repro.relational.instance import Instance
from repro.relational.values import Var
from repro.semantics.transition_system import State
from repro.utils import sorted_values


@dataclass(frozen=True)
class PropertyShape:
    """A recognized on-the-fly-checkable property."""

    kind: str  # "reachability" (EF body) or "invariant" (AG body)
    body: MuFormula


def is_state_local(formula: MuFormula) -> bool:
    """Can the formula be decided on a single state's database?

    True for modality/fixpoint-free formulas whose quantifiers are all
    LIVE-guarded: the guard confines quantified values to the state's own
    active domain, so no knowledge of the rest of the transition system
    (its value set) is needed."""
    if isinstance(formula, (Diamond, Box, Mu, Nu, PredVar)):
        return False
    if isinstance(formula, MExists):
        if not frozenset(formula.variables) <= _exists_guard(formula.sub):
            return False
        return is_state_local(formula.sub)
    if isinstance(formula, MForall):
        if not frozenset(formula.variables) <= _forall_guard(formula.sub):
            return False
        return is_state_local(formula.sub)
    if isinstance(formula, (QF, Live)):
        return True
    return all(is_state_local(child) for child in formula.children())


def recognize_shape(formula: MuFormula) -> Optional[PropertyShape]:
    """Destructure an EF/AG fixpoint encoding with a state-local body."""
    from repro.mucalc.ctl import invariant_body, reachability_body

    body = reachability_body(formula)
    kind = "reachability"
    if body is None:
        body = invariant_body(formula)
        kind = "invariant"
    if body is None:
        return None
    if body.free_pvars() or body.free_ivars() or not is_state_local(body):
        return None
    return PropertyShape(kind, body)


def evaluate_local(formula: MuFormula, instance: Instance,
                   valuation: Optional[Mapping[Var, Any]] = None) -> bool:
    """Truth of a state-local formula on one database instance."""
    valuation = dict(valuation or {})
    return _local(formula, instance, instance.active_domain(), valuation)


def _local(formula: MuFormula, instance: Instance,
           adom: FrozenSet[Any], valuation: Dict[Var, Any]) -> bool:
    if isinstance(formula, QF):
        relevant = {var: value for var, value in valuation.items()
                    if var in formula.query.free_variables()}
        return holds(formula.query, instance, relevant)
    if isinstance(formula, Live):
        for term in formula.terms:
            value = valuation.get(term, term) if isinstance(term, Var) \
                else term
            if value not in adom:
                return False
        return True
    if isinstance(formula, MNot):
        return not _local(formula.sub, instance, adom, valuation)
    if isinstance(formula, MAnd):
        return all(_local(sub, instance, adom, valuation)
                   for sub in formula.subs)
    if isinstance(formula, MOr):
        return any(_local(sub, instance, adom, valuation)
                   for sub in formula.subs)
    if isinstance(formula, (MExists, MForall)):
        # The LIVE guard (checked by is_state_local) confines satisfying
        # assignments to the active domain: dead values fail an
        # existential's guard and satisfy a universal's guard vacuously.
        candidates = sorted_values(adom)
        exists = isinstance(formula, MExists)

        def assignments(index: int) -> bool:
            if index == len(formula.variables):
                return _local(formula.sub, instance, adom, valuation)
            var = formula.variables[index]
            previous = valuation.get(var, _UNSET)
            try:
                for value in candidates:
                    valuation[var] = value
                    satisfied = assignments(index + 1)
                    if satisfied == exists:
                        return satisfied
                return not exists
            finally:
                if previous is _UNSET:
                    valuation.pop(var, None)
                else:
                    valuation[var] = previous

        return assignments(0)
    raise ValueError(f"not a state-local formula: {formula!r}")


_UNSET = object()


class OnTheFlyVerifier:
    """Explorer observer that decides a recognized shape incrementally."""

    def __init__(self, shape: PropertyShape):
        self.shape = shape
        self.states_checked = 0
        self.stop_state: Optional[State] = None
        self.stop_reason: Optional[str] = None

    def observe(self, state: State, instance: Instance) -> Optional[str]:
        """Per-state hook for :class:`repro.engine.Explorer`."""
        self.states_checked += 1
        satisfied = evaluate_local(self.shape.body, instance)
        if self.shape.kind == "reachability" and satisfied:
            self.stop_state = state
            self.stop_reason = "witness-found"
        elif self.shape.kind == "invariant" and not satisfied:
            self.stop_state = state
            self.stop_reason = "violation-found"
        return self.stop_reason

    @property
    def stopped(self) -> bool:
        return self.stop_state is not None

    def verdict(self) -> bool:
        """The property's truth at the initial state.

        Only meaningful after the exploration either stopped early or
        completed: a witness decides reachability positively, a violation
        decides an invariant negatively, and exhaustion decides the rest."""
        if self.shape.kind == "reachability":
            return self.stopped
        return not self.stopped

    def stats_dict(self) -> Dict[str, Any]:
        return {
            "mode": "on-the-fly",
            "shape": self.shape.kind,
            "states_checked": self.states_checked,
            "early_stop": self.stop_reason,
        }
