"""Bitset-backed µ-calculus evaluation: state sets as machine words.

:class:`BitsetChecker` specializes :class:`~repro.mucalc.engine.evaluator.
CompiledChecker` with a dense state-ID representation: every extension is a
Python int whose bit ``i`` stands for the ``i``-th state in a fixed
deterministic order (sorted by ``repr``, matching
``TransitionSystem.sorted_successors``). The evaluation strategy — plan
tree, memoization keyed by approximation versions, Emerson–Lei
warm-started cells — is inherited unchanged; what changes is the algebra:

* ``&``/``|``/negation are single big-int operations over ``n/64`` words
  instead of hashed frozenset algebra;
* ``Diamond`` gathers precomputed per-state *predecessor masks* over the
  target's set bits; ``Box`` checks ``succ_mask[i] & target ==
  succ_mask[i]`` on the diamond candidates plus the deadlock mask —
  both without touching the per-state frozensets of the lazy predecessor
  index;
* fixpoint convergence (``updated == approx``) compares words rather than
  hashing whole state sets once per iteration.

Arbitrary-width Python ints keep this dependency-free: the bitset backend
works without numpy and is gated only by the ``REPRO_NO_VECTOR`` kill
switch (read when a :class:`~repro.mucalc.checker.ModelChecker` builds an
engine — see ``checker.py``). Query/LIVE leaves still evaluate per state
through the inherited reference helpers; the win is in the modal/fixpoint
superstructure, which dominates the alternation sweep.

Results are bit-identical to the set-based engine — the differential
battery in ``tests/test_vector.py`` pins both against the reference
checker.
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional

from repro import env
from repro.mucalc.engine.compiler import Plan
from repro.mucalc.engine.evaluator import (
    _MISSING, CheckStats, CompiledChecker)
from repro.semantics.transition_system import State


def bitset_enabled() -> bool:
    """Backend switch, read when an engine is constructed. Pure Python —
    available with or without numpy."""
    return not env.vector_disabled()


#: Set-bit positions per byte value — scatter/gather loops walk a mask's
#: bytes instead of isolating one bit at a time with big-int arithmetic
#: (3x fewer interpreter rounds and no O(words) ``m & -m`` per bit).
_BITS_OF = [tuple(bit for bit in range(8) if value >> bit & 1)
            for value in range(256)]


class BitsetChecker(CompiledChecker):
    """Drop-in for :class:`CompiledChecker` computing over int bitmasks."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: Deterministic state numbering (independent of frozenset
        #: iteration order, so memo/cell content replays identically
        #: across processes).
        self._order: List[State] = sorted(self.states, key=repr)
        self._position: Dict[State, int] = {
            state: index for index, state in enumerate(self._order)}
        self._full: int = (1 << len(self._order)) - 1
        self._nbytes: int = (len(self._order) + 7) // 8
        self._pred_masks: Optional[List[int]] = None
        self._env_masks: Dict[FrozenSet[State], int] = {}
        #: Last (argument, gather) per diamond occurrence. <-> distributes
        #: over union, so while a fixpoint grows its target monotonically
        #: (mu under a diamond, nu under a box's complemented diamond)
        #: each iteration gathers only the newly-set bits — O(edges) total
        #: per fixpoint run instead of O(iterations * edges).
        self._diamond_memo: Dict[int, Tuple[int, int]] = {}

    def fixpoint_extension(self, index: int) -> Optional[FrozenSet[State]]:
        """Cell exposure in set terms (cells hold int masks here)."""
        approx = self._cells[index].approx
        return None if approx is None else self._to_states(approx)

    def _as_state_set(self, result) -> FrozenSet[State]:
        """``body_extension`` combines int masks here; expose states."""
        return self._to_states(result)

    # -- representation -------------------------------------------------------

    def _to_mask(self, states: Iterable[State]) -> int:
        position = self._position
        mask = 0
        for state in states:
            mask |= 1 << position[state]
        return mask

    def _to_states(self, mask: int) -> FrozenSet[State]:
        order = self._order
        found = []
        for byte_index, byte in enumerate(mask.to_bytes(self._nbytes,
                                                        "little")):
            if byte:
                base = byte_index * 8
                for bit in _BITS_OF[byte]:
                    found.append(order[base + bit])
        return frozenset(found)

    def _modal_index(self) -> List[int]:
        """Per-state predecessor masks, built once per engine."""
        n = len(self._order)
        preds = [0] * n
        position = self._position
        for index, state in enumerate(self._order):
            bit = 1 << index
            for successor in self.ts.successors(state):
                preds[position[successor]] |= bit
        self._pred_masks = preds
        return preds

    def _diamond_mask(self, target: int) -> int:
        preds = self._pred_masks
        if preds is None:
            preds = self._modal_index()
        result = 0
        for byte_index, byte in enumerate(target.to_bytes(self._nbytes,
                                                          "little")):
            if byte:
                base = byte_index * 8
                for bit in _BITS_OF[byte]:
                    result |= preds[base + bit]
        return result

    def _box_mask(self, target: int) -> int:
        # [-]Phi = ~<->~Phi; deadlocks come out vacuously satisfied (they
        # precede nothing, so they never land in a diamond).
        return self._full ^ self._diamond_mask(self._full ^ target)

    def _diamond_step(self, uid: int, target: int) -> int:
        """One diamond evaluation at a plan occurrence, delta-gathered
        against the occurrence's previous target when it only grew."""
        memo = self._diamond_memo.get(uid)
        if memo is not None:
            last_target, last_result = memo
            if last_target & target == last_target:
                result = last_result | self._diamond_mask(
                    target ^ last_target)
                self._diamond_memo[uid] = (target, result)
                return result
        result = self._diamond_mask(target)
        self._diamond_memo[uid] = (target, result)
        return result

    # -- evaluation (inherited shape, mask algebra) ---------------------------

    def evaluate(self, valuation: Optional[Mapping] = None,
                 predicates: Optional[Mapping[str, Iterable[State]]] = None
                 ) -> FrozenSet[State]:
        started = time.perf_counter()
        env: Dict[str, Any] = {
            name: frozenset(states)
            for name, states in (predicates or {}).items()}
        for cell in self._cells:
            cell.needs_reset = True
        self.run_stats = CheckStats()
        result = self._eval(self.compiled.root, dict(valuation or {}), env)
        self.run_stats.duration = time.perf_counter() - started
        self.last_stats = {
            "mode": "compiled",
            "backend": "bitset",
            **self.compiled.info(),
            **self.run_stats.as_dict(),
            "memo_entries": len(self._memo),
        }
        return self._to_states(result)

    def _eval(self, plan: Plan, valuation: Dict, env: Dict[str, Any]) -> int:
        if plan.kind == "var":
            return self._eval_var(plan, env)
        key = self._memo_key(plan, valuation, env)
        cached = self._memo.get(key)
        if cached is not None:
            self.run_stats.memo_hits += 1
            return cached
        self.run_stats.memo_misses += 1
        result = self._compute(plan, valuation, env)
        if len(self._memo) >= self.MEMO_LIMIT:
            self._memo.clear()
        self._memo[key] = result
        size = result.bit_count()
        if size > self.run_stats.peak_extension:
            self.run_stats.peak_extension = size
        return result

    def _compute(self, plan: Plan, valuation: Dict,
                 env: Dict[str, Any]) -> int:
        kind = plan.kind
        if kind == "query":
            # The leaf still runs per state (inherited); only the set
            # representation changes.
            return self._to_mask(
                CompiledChecker._eval_query(self, plan, valuation))
        if kind == "live":
            return self._to_mask(
                CompiledChecker._eval_live(self, plan, valuation))
        if kind == "and":
            result = self._full
            for child in plan.children:
                result &= self._eval(child, valuation, env)
                if not result:
                    break
            return result
        if kind == "or":
            result = 0
            for child in plan.children:
                result |= self._eval(child, valuation, env)
                if result == self._full:
                    break
            return result
        if kind == "exists":
            return self._eval_quantifier(plan, valuation, env, exists=True)
        if kind == "forall":
            return self._eval_quantifier(plan, valuation, env, exists=False)
        if kind == "diamond":
            return self._diamond_step(
                plan.uid, self._eval(plan.children[0], valuation, env))
        if kind == "box":
            return self._full ^ self._diamond_step(
                plan.uid,
                self._full ^ self._eval(plan.children[0], valuation, env))
        if kind == "fix":
            return self._eval_fix(plan, valuation, env)
        return CompiledChecker._compute(self, plan, valuation, env)

    def _eval_var(self, plan: Plan, env: Dict[str, Any]) -> int:
        binding = env.get(plan.name)
        if binding is None:
            return CompiledChecker._eval_var(self, plan, env)  # raises
        if isinstance(binding, int):
            result = self._cells[binding].approx
        else:
            # Externally supplied constant extension (a frozenset in the
            # env so the inherited _memo_key stays valid); converted once.
            result = self._env_masks.get(binding)
            if result is None:
                result = self._to_mask(binding)
                self._env_masks[binding] = result
        return result ^ self._full if plan.negated else result

    def _eval_quantifier(self, plan: Plan, valuation: Dict,
                         env: Dict[str, Any], exists: bool) -> int:
        ranges = [
            self._live_ordered if var in plan.guarded_vars
            else self._domain_ordered
            for var in plan.variables]
        sub = plan.children[0]
        if exists:
            result = 0
            for combo in itertools.product(*ranges):
                extended = dict(valuation)
                extended.update(zip(plan.variables, combo))
                result |= self._eval(sub, extended, env)
                if result == self._full:
                    break
            return result
        result = self._full
        for combo in itertools.product(*ranges):
            extended = dict(valuation)
            extended.update(zip(plan.variables, combo))
            result &= self._eval(sub, extended, env)
            if not result:
                break
        return result

    def _eval_fix(self, plan: Plan, valuation: Dict,
                  env: Dict[str, Any]) -> int:
        meta = plan.cell
        cell = self._cells[meta.index]
        context = tuple(valuation.get(var, _MISSING)
                        for var in plan.free_ivars)
        if cell.needs_reset or cell.context != context:
            cell.approx = 0 if plan.least else self._full
            cell.version = next(self._versions)
            cell.needs_reset = False
            cell.context = context
            self.run_stats.resets += 1
            self._flag_descendants(meta, increase=not plan.least)
        extended = dict(env)
        extended[meta.name] = meta.index
        while True:
            self.run_stats.iterations += 1
            updated = self._eval(plan.children[0], valuation, extended)
            if updated == cell.approx:
                return cell.approx
            cell.approx = updated
            cell.version = next(self._versions)
            self._flag_descendants(meta, increase=plan.least)
