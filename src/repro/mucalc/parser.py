"""Text syntax for µ-calculus formulas.

Grammar (extends the FO term syntax of :mod:`repro.fol.parser`)::

    phi   := disj [ "->" phi ]
    disj  := conj ( "|" conj )*
    conj  := unary ( "&" unary )*
    unary := "~" unary
           | "<->" unary                      (diamond)
           | "[-]" unary                      (box)
           | ("mu" | "nu") NAME "." phi
           | ("E" | "A") names "." phi        (quantification across states)
           | "live" "(" term ("," term)* ")"
           | "(" phi ")"
           | "true" | "false"
           | NAME "(" terms ")"               (FO atom, wrapped in QF)
           | term ("=" | "!=") term           (FO comparison)
           | NAME                             (bound predicate variable)

A bare identifier is a predicate variable only when bound by an enclosing
``mu``/``nu``; anything else must be an atom, comparison, or keyword. As in
the FO parser, ``constants={"a"}`` makes the identifier ``a`` parse as a
constant.

Example (the µLA property of Example 3.2)::

    nu X. (A x. (live(x) & Stud(x) ->
           mu Y. ((E y. live(y) & Grad(x, y)) | <-> Y) & [-] X))
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.errors import ParseError
from repro.fol.ast import Atom, Eq, FALSE, Not as FNot, TRUE
from repro.fol.parser import FormulaParser, TokenStream
from repro.mucalc.ast import (
    Box, Diamond, Live, MAnd, MExists, MForall, MNot, MOr, Mu, MuFormula,
    Nu, PredVar, QF)
from repro.relational.values import Var

_MU_KEYWORDS = frozenset({"mu", "nu", "live", "true", "false", "E", "A"})


class MuParser:
    """Recursive-descent parser for µL / µLA / µLP formulas."""

    def __init__(self, text: str, constants: Iterable[str] = ()):
        self.stream = TokenStream(text)
        self.constants = frozenset(constants)
        self._terms = FormulaParser("", constants)
        self._terms.stream = self.stream  # share the cursor
        self._bound_pvars: Set[str] = set()

    def parse(self) -> MuFormula:
        formula = self.parse_implication()
        if not self.stream.at_end():
            token = self.stream.peek()
            raise ParseError(f"trailing input {token.text!r}",
                             self.stream.text, token.pos)
        return formula

    # -- grammar -----------------------------------------------------------------

    def parse_implication(self) -> MuFormula:
        left = self.parse_disjunction()
        if self.stream.accept("symbol", "->"):
            right = self.parse_implication()
            return MOr.of(MNot(left), right)
        return left

    def parse_disjunction(self) -> MuFormula:
        parts = [self.parse_conjunction()]
        while self.stream.accept("symbol", "|"):
            parts.append(self.parse_conjunction())
        return MOr.of(*parts) if len(parts) > 1 else parts[0]

    def parse_conjunction(self) -> MuFormula:
        parts = [self.parse_unary()]
        while self.stream.accept("symbol", "&"):
            parts.append(self.parse_unary())
        return MAnd.of(*parts) if len(parts) > 1 else parts[0]

    def parse_unary(self) -> MuFormula:
        if self.stream.accept("symbol", "~"):
            return MNot(self.parse_unary())
        if self.stream.accept("symbol", "<->"):
            return Diamond(self.parse_unary())
        if self.stream.accept("symbol", "[-]"):
            return Box(self.parse_unary())
        token = self.stream.peek()
        if token.kind == "name" and token.text in ("mu", "nu"):
            self.stream.next()
            name = self.stream.expect("name").text
            self.stream.expect("symbol", ".")
            self._bound_pvars.add(name)
            body = self.parse_implication()
            self._bound_pvars.discard(name)
            return Mu(name, body) if token.text == "mu" else Nu(name, body)
        if token.kind == "name" and token.text in ("E", "A"):
            self.stream.next()
            names = [self.stream.expect("name").text]
            while self.stream.accept("symbol", ","):
                names.append(self.stream.expect("name").text)
            self.stream.expect("symbol", ".")
            body = self.parse_implication()
            variables = tuple(Var(name) for name in names)
            if token.text == "E":
                return MExists(variables, body)
            return MForall(variables, body)
        if token.kind == "name" and token.text == "live":
            self.stream.next()
            self.stream.expect("symbol", "(")
            terms = [self._terms.parse_term(allow_calls=False)]
            while self.stream.accept("symbol", ","):
                terms.append(self._terms.parse_term(allow_calls=False))
            self.stream.expect("symbol", ")")
            return Live(tuple(terms))
        if self.stream.accept("symbol", "("):
            inner = self.parse_implication()
            self.stream.expect("symbol", ")")
            return inner
        if token.kind == "name" and token.text == "true":
            self.stream.next()
            return QF(TRUE)
        if token.kind == "name" and token.text == "false":
            self.stream.next()
            return QF(FALSE)
        return self.parse_leaf()

    def parse_leaf(self) -> MuFormula:
        """FO atom, comparison, or bound predicate variable."""
        token = self.stream.peek()
        if token.kind == "name" and token.text not in _MU_KEYWORDS:
            following = self.stream.tokens[self.stream.index + 1]
            if following.kind == "symbol" and following.text == "(":
                name = self.stream.next().text
                terms = self._terms.parse_term_list()
                return QF(Atom(name, tuple(terms)))
            if token.text in self._bound_pvars \
                    and token.text not in self.constants \
                    and not (following.kind == "symbol"
                             and following.text in ("=", "!=")):
                self.stream.next()
                return PredVar(token.text)
        left = self._terms.parse_term(allow_calls=False)
        if self.stream.accept("symbol", "="):
            right = self._terms.parse_term(allow_calls=False)
            return QF(Eq(left, right))
        if self.stream.accept("symbol", "!="):
            right = self._terms.parse_term(allow_calls=False)
            return QF(FNot(Eq(left, right)))
        raise ParseError(
            f"expected an atom, comparison, or bound predicate variable",
            self.stream.text, token.pos)


def parse_mu(text: str, constants: Iterable[str] = ()) -> MuFormula:
    """Parse a µ-calculus formula from text."""
    return MuParser(text, constants).parse()
