"""Equality commitments over fresh service calls (Appendix C.3).

An equality commitment ``H`` partitions the fresh service calls together with
the already-known values: calls in the same cell return the same value, calls
in a cell with a known value return that value, and calls in a cell of their
own return some globally fresh value. Enumerating commitments — rather than
the infinitely many concrete evaluations — is what makes both abstraction
constructions finitely branching.

The enumeration is deterministic: calls are sorted, partitions are generated
in first-occurrence order, and fresh representatives are minted as the
smallest unused :class:`Fresh` indices. The deterministic abstraction's
finiteness argument (values of any reachable state stay within a bounded
pool) relies on this "smallest unused" discipline.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.relational.values import Fresh, ServiceCall
from repro.utils import FreshPool, set_partitions, sorted_values

Commitment = Dict[ServiceCall, Any]


def enumerate_commitments(
    calls: Sequence[ServiceCall],
    known_values: Iterable[Any],
    used_values: Iterable[Any] = (),
) -> Iterator[Commitment]:
    """All equality commitments for ``calls`` against ``known_values``.

    Yields one evaluation (call -> value) per commitment: for every partition
    of the calls, every injective assignment of the blocks to known values or
    distinct fresh representatives. Fresh representatives are minted from the
    smallest :class:`Fresh` indices not already used in ``known_values`` or
    ``used_values``.
    """
    calls = sorted(set(calls), key=repr)
    known = sorted_values(set(known_values))
    if not calls:
        yield {}
        return

    occupied = set(known) | set(used_values)

    for partition in set_partitions(calls):
        yield from _assign_blocks(partition, known, occupied)


def _assign_blocks(partition: List[List[ServiceCall]], known: List[Any],
                   occupied: Iterable[Any]) -> Iterator[Commitment]:
    """Injective assignments of partition blocks to known values or fresh."""
    pool_template = set(occupied)

    def recurse(index: int, assignment: Commitment,
                taken_known: frozenset, minted: Tuple[Any, ...]
                ) -> Iterator[Commitment]:
        if index == len(partition):
            yield dict(assignment)
            return
        block = partition[index]
        # Option 1: the block equals one of the known values (injectively —
        # two blocks mapping to the same known value would be a single cell).
        for value in known:
            if value in taken_known:
                continue
            for call in block:
                assignment[call] = value
            yield from recurse(index + 1, assignment,
                               taken_known | {value}, minted)
        # Option 2: the block gets a globally fresh representative.
        fresh = _next_fresh(pool_template | set(minted))
        for call in block:
            assignment[call] = fresh
        yield from recurse(index + 1, assignment, taken_known,
                           minted + (fresh,))
        for call in block:
            assignment.pop(call, None)

    yield from recurse(0, {}, frozenset(), ())


def _next_fresh(occupied: set) -> Fresh:
    index = 0
    taken = {value.index for value in occupied if isinstance(value, Fresh)}
    while index in taken:
        index += 1
    return Fresh(index)


def count_commitments(n_calls: int, n_known: int) -> int:
    """Number of equality commitments (for fuse sizing and tests).

    Equals the number of partitions of ``n_calls`` elements into blocks, each
    block independently labeled with one of ``n_known`` known values
    (injectively) or a fresh representative.
    """
    from math import comb

    # Recurrence over partitions with injective known-value labels:
    # count(n) = sum over the block containing the first call.
    cache: Dict[Tuple[int, int], int] = {}

    def count(remaining: int, known_left: int) -> int:
        if remaining == 0:
            return 1
        key = (remaining, known_left)
        if key in cache:
            return cache[key]
        total = 0
        # Choose the rest of the first call's block among remaining-1 others.
        for extra in range(remaining):
            ways = comb(remaining - 1, extra)
            rest = remaining - 1 - extra
            # Block labeled fresh:
            total += ways * count(rest, known_left)
            # Block labeled with one of the known values:
            if known_left > 0:
                total += ways * known_left * count(rest, known_left - 1)
        cache[key] = total
        return total

    return count(n_calls, n_known)
