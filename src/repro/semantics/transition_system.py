"""Transition systems whose states are labeled by database instances.

This is the tuple ``<Delta, R, Sigma, s0, db, =>`` of Section 2.3. States are
arbitrary hashable objects; ``db`` maps each state to its instance. Edges may
carry an informational label (the action/substitution that produced them) —
labels play no role in the semantics or the bisimulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import ReproError
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema

State = Hashable


@dataclass
class TransitionSystem:
    """A mutable transition system under construction; freeze-by-convention.

    ``truncated`` marks states whose successors were *not* fully expanded
    (exploration fuses/depth bounds); analyses that need totality can check
    :attr:`truncated_states`.
    """

    schema: DatabaseSchema
    initial: State
    _db: Dict[State, Instance] = field(default_factory=dict)
    _edges: Dict[State, Set[Tuple[Optional[str], State]]] = \
        field(default_factory=dict)
    truncated_states: Set[State] = field(default_factory=set)
    name: str = ""
    #: Filled by :class:`repro.engine.Explorer` with construction-time
    #: counters (states/sec, frontier peak, cache hit rates, ...).
    exploration_stats: Dict[str, Any] = field(default_factory=dict)
    #: Per-state memo for :meth:`sorted_successors` (state reprs are
    #: expensive); invalidated by :meth:`add_edge`.
    _sorted_cache: Dict[State, Tuple[State, ...]] = \
        field(default_factory=dict, repr=False, compare=False)
    #: Per-state memo for :meth:`sorted_labeled_edges` (same repr-key
    #: cost; the witness extractor's descent re-reads the same states);
    #: invalidated by :meth:`add_edge`.
    _sorted_edge_cache: Dict[State, Tuple[Tuple[Optional[str], State],
                                          ...]] = \
        field(default_factory=dict, repr=False, compare=False)
    #: Lazy backward index for :meth:`predecessors` (built once on first use,
    #: invalidated by :meth:`add_edge`); the compiled model checker's
    #: ``Diamond``/``Box`` propagation is built on it.
    _pred_cache: Optional[Dict[State, FrozenSet[State]]] = \
        field(default=None, repr=False, compare=False)

    # -- construction -----------------------------------------------------------

    def add_state(self, state: State, instance: Instance) -> State:
        if state in self._db:
            if self._db[state] != instance:
                raise ReproError(
                    f"state {state!r} already present with different db")
            return state
        instance.validate(self.schema)
        self._db[state] = instance
        self._edges.setdefault(state, set())
        return state

    def add_edge(self, source: State, target: State,
                 label: Optional[str] = None) -> None:
        if source not in self._db or target not in self._db:
            raise ReproError("both endpoints must be added before the edge")
        self._edges[source].add((label, target))
        self._sorted_cache.pop(source, None)
        self._sorted_edge_cache.pop(source, None)
        self._pred_cache = None

    def mark_truncated(self, state: State) -> None:
        self.truncated_states.add(state)

    # -- accessors ------------------------------------------------------------

    def db(self, state: State) -> Instance:
        return self._db[state]

    @property
    def states(self) -> FrozenSet[State]:
        return frozenset(self._db)

    def __len__(self) -> int:
        return len(self._db)

    def __contains__(self, state: State) -> bool:
        return state in self._db

    def successors(self, state: State) -> FrozenSet[State]:
        return frozenset(target for _, target in self._edges.get(state, ()))

    def labeled_edges(self, state: State
                      ) -> FrozenSet[Tuple[Optional[str], State]]:
        return frozenset(self._edges.get(state, ()))

    def predecessors(self, state: State) -> FrozenSet[State]:
        """Distinct sources of edges into ``state``.

        The full backward index is built lazily on first use (checking
        happens after construction, so one build usually suffices) and
        invalidated by :meth:`add_edge`. ``Diamond``/``Box`` extensions are
        computed by propagating along this index instead of scanning all
        states."""
        if self._pred_cache is None:
            index: Dict[State, Set[State]] = {}
            for source, targets in self._edges.items():
                for _, target in targets:
                    index.setdefault(target, set()).add(source)
            self._pred_cache = {target: frozenset(sources)
                                for target, sources in index.items()}
        return self._pred_cache.get(state, frozenset())

    def out_degree(self, state: State) -> int:
        """Number of *distinct* successor states."""
        return len(self.sorted_successors(state))

    def edges(self) -> Iterator[Tuple[State, Optional[str], State]]:
        for source, targets in self._edges.items():
            for label, target in targets:
                yield source, label, target

    # Edge sets are hash-ordered; the sorted accessors below give a
    # run-independent traversal order (used by the explorers, the
    # bisimulation checkers, and the DOT export).

    def sorted_successors(self, state: State) -> Tuple[State, ...]:
        """Successors in deterministic (repr) order, deduplicated.

        Memoized per state (the bisimulation games request the same
        state's successors at every game node)."""
        found = self._sorted_cache.get(state)
        if found is None:
            found = tuple(sorted(
                {target for _, target in self._edges.get(state, ())},
                key=repr))
            self._sorted_cache[state] = found
        return found

    def sorted_labeled_edges(
            self, state: State) -> Tuple[Tuple[Optional[str], State], ...]:
        """Outgoing ``(label, target)`` pairs in deterministic order.

        Memoized per state like :meth:`sorted_successors`."""
        found = self._sorted_edge_cache.get(state)
        if found is None:
            found = tuple(sorted(
                self._edges.get(state, ()),
                key=lambda edge: (edge[0] or "", repr(edge[1]))))
            self._sorted_edge_cache[state] = found
        return found

    def sorted_edges(self) -> Iterator[Tuple[State, Optional[str], State]]:
        """All edges in deterministic (source, label, target) order."""
        for source in sorted(self._edges, key=repr):
            for label, target in self.sorted_labeled_edges(source):
                yield source, label, target

    def edge_count(self) -> int:
        return sum(len(targets) for targets in self._edges.values())

    def values(self) -> FrozenSet[Any]:
        """All values occurring in any state's database (finite Delta)."""
        found: Set[Any] = set()
        for instance in self._db.values():
            found |= instance.active_domain()
        return frozenset(found)

    adom = values

    # -- queries ----------------------------------------------------------------

    def reachable_from(self, state: Optional[State] = None) -> FrozenSet[State]:
        start = self.initial if state is None else state
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for successor in self.successors(current):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return frozenset(seen)

    def is_total(self) -> bool:
        """Every state has a successor (no deadlocks)."""
        return all(self._edges.get(state) for state in self._db)

    def depth_levels(self) -> List[FrozenSet[State]]:
        """BFS levels from the initial state (used for growth traces)."""
        levels = []
        seen = {self.initial}
        frontier = [self.initial]
        while frontier:
            levels.append(frozenset(frontier))
            next_frontier = []
            for state in frontier:
                for successor in self.successors(state):
                    if successor not in seen:
                        seen.add(successor)
                        next_frontier.append(successor)
            frontier = next_frontier
        return levels

    def max_state_size(self) -> int:
        return max((len(db.active_domain()) for db in self._db.values()),
                   default=0)

    def stats(self) -> Dict[str, Any]:
        return {
            "states": len(self),
            "edges": self.edge_count(),
            "values": len(self.values()),
            "max_adom": self.max_state_size(),
            "truncated": len(self.truncated_states),
            "total": self.is_total(),
        }

    def relabel(self, renamer: Callable[[State], State]) -> "TransitionSystem":
        """A copy with states renamed (renamer must be injective)."""
        renamed = TransitionSystem(
            self.schema, renamer(self.initial), name=self.name)
        mapping = {state: renamer(state) for state in self._db}
        if len(set(mapping.values())) != len(mapping):
            raise ReproError("relabel requires an injective renamer")
        for state, instance in self._db.items():
            renamed.add_state(mapping[state], instance)
        for source, label, target in self.edges():
            renamed.add_edge(mapping[source], mapping[target], label)
        renamed.truncated_states = {
            mapping[state] for state in self.truncated_states}
        return renamed

    def pretty(self, max_states: int = 50) -> str:
        """ASCII rendering: one line per state with its successors."""
        lines = [f"TransitionSystem {self.name!r}: "
                 f"{len(self)} states, {self.edge_count()} edges"]
        ordering = sorted(self._db, key=repr)
        ordering.remove(self.initial)
        ordering.insert(0, self.initial)
        for state in ordering[:max_states]:
            marker = "*" if state == self.initial else " "
            trunc = " [truncated]" if state in self.truncated_states else ""
            successors = ", ".join(
                sorted(repr(target) for target in self.successors(state)))
            lines.append(
                f" {marker} {state!r}: db={self.db(state)!r}"
                f" -> [{successors}]{trunc}")
        if len(self._db) > max_states:
            lines.append(f"   ... {len(self._db) - max_states} more states")
        return "\n".join(lines)
