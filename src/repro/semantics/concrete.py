"""Concrete executions: oracle-driven runs and finite-pool exploration.

The concrete transition system of a DCDS is infinite (infinitely-branching
under both semantics, and possibly infinitely deep). Two executable
approximations are provided:

* :func:`simulate` — a single concrete run driven by a *value oracle* that
  plays the external environment (deterministic memoizing oracle for §4,
  seeded nondeterministic oracle for §5). Used to validate the semantics
  against ground truth (e.g. Turing-machine runs).

* :func:`explore_concrete` — the exact concrete transition system restricted
  to service results drawn from a finite value pool, explored breadth-first
  to a depth bound. For a large-enough pool this coincides with the concrete
  system up to that depth, which is what the bounded-bisimulation validation
  tests compare abstractions against.
"""

from __future__ import annotations

import random
from collections import deque
from itertools import product
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import AbstractionDiverged, ExecutionError, ReproError
from repro.core.dcds import DCDS, ServiceSemantics
from repro.core.execution import do_action, enabled_moves, evaluate_calls
from repro.relational.instance import Instance
from repro.relational.values import Fresh, ServiceCall
from repro.semantics.abstract_det import DetState, _sorted_call_map
from repro.semantics.transition_system import TransitionSystem
from repro.utils import sorted_values


class DeterministicOracle:
    """A deterministic external environment: same call, same answer, forever.

    Fresh answers are minted from a private :class:`Fresh` index range (or
    drawn from ``universe`` with a seeded RNG when provided). Models the
    deterministic service semantics of Section 4.
    """

    def __init__(self, universe: Optional[Sequence[Any]] = None,
                 seed: int = 0, fresh_base: int = 1000):
        self._memo: Dict[ServiceCall, Any] = {}
        self._universe = list(universe) if universe is not None else None
        self._rng = random.Random(seed)
        self._next_fresh = fresh_base

    def __call__(self, call: ServiceCall) -> Any:
        if call not in self._memo:
            self._memo[call] = self._pick()
        return self._memo[call]

    def _pick(self) -> Any:
        if self._universe is not None:
            return self._rng.choice(self._universe)
        value = Fresh(self._next_fresh)
        self._next_fresh += 1
        return value

    @property
    def memo(self) -> Dict[ServiceCall, Any]:
        return dict(self._memo)


class NondeterministicOracle:
    """A nondeterministic environment: every invocation picks anew.

    With probability ``fresh_bias`` a globally fresh value is returned,
    otherwise a previously returned value is recycled (seeded, reproducible).
    Models the nondeterministic service semantics of Section 5.
    """

    def __init__(self, seed: int = 0, fresh_bias: float = 0.5,
                 universe: Optional[Sequence[Any]] = None,
                 fresh_base: int = 1000):
        self._rng = random.Random(seed)
        self._fresh_bias = fresh_bias
        self._universe = list(universe) if universe is not None else None
        self._next_fresh = fresh_base
        self._returned: List[Any] = []

    def __call__(self, call: ServiceCall) -> Any:
        if self._universe is not None:
            value = self._rng.choice(self._universe)
        elif self._returned and self._rng.random() >= self._fresh_bias:
            value = self._rng.choice(self._returned)
        else:
            value = Fresh(self._next_fresh)
            self._next_fresh += 1
        self._returned.append(value)
        return value


Chooser = Callable[[List[Tuple[Any, Dict]]], int]


def simulate(
    dcds: DCDS,
    steps: int,
    oracle: Callable[[ServiceCall], Any],
    chooser: Optional[Chooser] = None,
) -> List[Tuple[Instance, Optional[str]]]:
    """Execute one concrete run of ``steps`` transitions.

    ``chooser`` selects among the enabled (action, sigma) moves (default:
    first in deterministic order). The run stops early when no move is
    enabled or the oracle's answers violate the equality constraints (which
    in the concrete semantics means the chosen successor does not exist).

    Returns the trace as ``[(instance, label), ...]`` starting at ``I0``.
    """
    trace: List[Tuple[Instance, Optional[str]]] = [(dcds.initial, None)]
    current = dcds.initial
    for _ in range(steps):
        moves = list(enabled_moves(dcds, current))
        if not moves:
            break
        index = 0 if chooser is None else chooser(moves)
        action, sigma = moves[index]
        pending = do_action(dcds, current, action, sigma)
        evaluation = {call: oracle(call)
                      for call in sorted(pending.service_calls(), key=repr)}
        successor = evaluate_calls(dcds, pending, evaluation)
        if successor is None:
            break  # constraint-violating evaluation: no such transition
        label = action.name
        trace.append((successor, label))
        current = successor
    return trace


def explore_concrete(
    dcds: DCDS,
    pool: Iterable[Any],
    depth: int,
    max_states: int = 50000,
) -> TransitionSystem:
    """The concrete transition system with call results restricted to ``pool``.

    Deterministic semantics: states are ``<I, M>`` and evaluations must agree
    with ``M`` (Section 4.1). Nondeterministic semantics: states are
    instances and every call picks independently from the pool (Section 5.1).
    States at the depth frontier are marked truncated.
    """
    pool = sorted_values(set(pool))
    if dcds.semantics is ServiceSemantics.DETERMINISTIC:
        return _explore_det(dcds, pool, depth, max_states)
    return _explore_nondet(dcds, pool, depth, max_states)


def _fuse(count: int, max_states: int) -> None:
    if count > max_states:
        raise AbstractionDiverged(
            f"concrete exploration exceeded {max_states} states",
            partial_states=count)


def _explore_det(dcds: DCDS, pool: List[Any], depth: int,
                 max_states: int) -> TransitionSystem:
    initial = DetState(dcds.initial, ())
    ts = TransitionSystem(dcds.schema, initial,
                          name=f"concrete-det[{dcds.name}]")
    ts.add_state(initial, dcds.initial)
    queue: deque = deque([(initial, 0)])
    while queue:
        state, level = queue.popleft()
        if level >= depth:
            ts.mark_truncated(state)
            continue
        call_map = state.map_dict()
        for action, sigma in enabled_moves(dcds, state.instance):
            pending = do_action(dcds, state.instance, action, sigma)
            calls = sorted(pending.service_calls(), key=repr)
            resolved = {call: call_map[call] for call in calls
                        if call in call_map}
            new_calls = [call for call in calls if call not in call_map]
            for combo in product(pool, repeat=len(new_calls)):
                evaluation = dict(resolved)
                evaluation.update(zip(new_calls, combo))
                successor_instance = evaluate_calls(dcds, pending, evaluation)
                if successor_instance is None:
                    continue
                extended = dict(call_map)
                extended.update(zip(new_calls, combo))
                successor = DetState(successor_instance,
                                     _sorted_call_map(extended))
                is_new = successor not in ts
                ts.add_state(successor, successor_instance)
                ts.add_edge(state, successor, action.name)
                if is_new:
                    _fuse(len(ts), max_states)
                    queue.append((successor, level + 1))
    return ts


def _explore_nondet(dcds: DCDS, pool: List[Any], depth: int,
                    max_states: int) -> TransitionSystem:
    initial = dcds.initial
    ts = TransitionSystem(dcds.schema, initial,
                          name=f"concrete-nondet[{dcds.name}]")
    ts.add_state(initial, initial)
    queue: deque = deque([(initial, 0)])
    while queue:
        instance, level = queue.popleft()
        if level >= depth:
            ts.mark_truncated(instance)
            continue
        for action, sigma in enabled_moves(dcds, instance):
            pending = do_action(dcds, instance, action, sigma)
            calls = sorted(pending.service_calls(), key=repr)
            for combo in product(pool, repeat=len(calls)):
                evaluation = dict(zip(calls, combo))
                successor = evaluate_calls(dcds, pending, evaluation)
                if successor is None:
                    continue
                is_new = successor not in ts
                ts.add_state(successor, successor)
                ts.add_edge(instance, successor, action.name)
                if is_new:
                    _fuse(len(ts), max_states)
                    queue.append((successor, level + 1))
    return ts
