"""Concrete executions: oracle-driven runs and finite-pool exploration.

The concrete transition system of a DCDS is infinite (infinitely-branching
under both semantics, and possibly infinitely deep). Two executable
approximations are provided:

* :func:`simulate` — a single concrete run driven by a *value oracle* that
  plays the external environment (deterministic memoizing oracle for §4,
  seeded nondeterministic oracle for §5). Used to validate the semantics
  against ground truth (e.g. Turing-machine runs).

* :func:`explore_concrete` — the exact concrete transition system restricted
  to service results drawn from a finite value pool, explored breadth-first
  to a depth bound. For a large-enough pool this coincides with the concrete
  system up to that depth, which is what the bounded-bisimulation validation
  tests compare abstractions against.

Both delegate their exploration loop to :class:`repro.engine.Explorer`
(oracle runs are path-shaped explorations over ``(step, instance)`` states).
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import AbstractionDiverged
from repro.core.dcds import DCDS, ServiceSemantics
from repro.engine.explorer import Explorer
from repro.engine.generators import (
    Chooser, OracleRunGenerator, PoolDetGenerator, PoolNondetGenerator)
from repro.engine.parallel import make_explorer
from repro.engine.symmetry import (
    attach_symmetry_stats, reduced, resolve_symmetry)
from repro.relational.instance import Instance
from repro.relational.kernel import attach_kernel_stats
from repro.relational.values import Fresh, ServiceCall
from repro.semantics.transition_system import TransitionSystem
from repro.utils import sorted_values


class DeterministicOracle:
    """A deterministic external environment: same call, same answer, forever.

    Fresh answers are minted from a private :class:`Fresh` index range (or
    drawn from ``universe`` with a seeded RNG when provided). Models the
    deterministic service semantics of Section 4.
    """

    def __init__(self, universe: Optional[Sequence[Any]] = None,
                 seed: int = 0, fresh_base: int = 1000):
        self._memo: Dict[ServiceCall, Any] = {}
        self._universe = list(universe) if universe is not None else None
        self._rng = random.Random(seed)
        self._next_fresh = fresh_base

    def __call__(self, call: ServiceCall) -> Any:
        if call not in self._memo:
            self._memo[call] = self._pick()
        return self._memo[call]

    def _pick(self) -> Any:
        if self._universe is not None:
            return self._rng.choice(self._universe)
        value = Fresh(self._next_fresh)
        self._next_fresh += 1
        return value

    @property
    def memo(self) -> Dict[ServiceCall, Any]:
        return dict(self._memo)


class NondeterministicOracle:
    """A nondeterministic environment: every invocation picks anew.

    With probability ``fresh_bias`` a globally fresh value is returned,
    otherwise a previously returned value is recycled (seeded, reproducible).
    Models the nondeterministic service semantics of Section 5.
    """

    def __init__(self, seed: int = 0, fresh_bias: float = 0.5,
                 universe: Optional[Sequence[Any]] = None,
                 fresh_base: int = 1000):
        self._rng = random.Random(seed)
        self._fresh_bias = fresh_bias
        self._universe = list(universe) if universe is not None else None
        self._next_fresh = fresh_base
        self._returned: List[Any] = []

    def __call__(self, call: ServiceCall) -> Any:
        if self._universe is not None:
            value = self._rng.choice(self._universe)
        elif self._returned and self._rng.random() >= self._fresh_bias:
            value = self._rng.choice(self._returned)
        else:
            value = Fresh(self._next_fresh)
            self._next_fresh += 1
        self._returned.append(value)
        return value


def simulate(
    dcds: DCDS,
    steps: int,
    oracle,
    chooser: Optional[Chooser] = None,
) -> List[Tuple[Instance, Optional[str]]]:
    """Execute one concrete run of ``steps`` transitions.

    ``chooser`` selects among the enabled (action, sigma) moves (default:
    first in deterministic order). The run stops early when no move is
    enabled or the oracle's answers violate the equality constraints (which
    in the concrete semantics means the chosen successor does not exist).

    Returns the trace as ``[(instance, label), ...]`` starting at ``I0``.
    """
    explorer = Explorer(dcds.schema, name=f"run[{dcds.name}]",
                        max_depth=steps)
    result = explorer.run(OracleRunGenerator(dcds, oracle, chooser))
    ts = result.transition_system

    # The exploration is a path over (step, instance) states; read it back
    # into the trace format.
    trace: List[Tuple[Instance, Optional[str]]] = [(dcds.initial, None)]
    state = ts.initial
    while True:
        outgoing = ts.sorted_labeled_edges(state)
        if not outgoing:
            break
        label, state = outgoing[0]
        trace.append((ts.db(state), label))
    return trace


def explore_concrete(
    dcds: DCDS,
    pool: Iterable[Any],
    depth: int,
    max_states: int = 50000,
    workers: Optional[int] = None,
    batch_size: int = 16,
    symmetry: Optional[str] = None,
    memory_budget: Optional[int] = None,
) -> TransitionSystem:
    """The concrete transition system with call results restricted to ``pool``.

    Deterministic semantics: states are ``<I, M>`` and evaluations must agree
    with ``M`` (Section 4.1). Nondeterministic semantics: states are
    instances and every call picks independently from the pool (Section 5.1).
    States at the depth frontier are marked truncated.

    ``workers`` shards the expansions across a
    :class:`repro.engine.ParallelExplorer` pool; the result is bit-identical
    to the sequential exploration for any worker count.

    ``symmetry="quotient"`` merges isomorphic ``<I, M>`` states (bijections
    fixing the known constants, Lemma C.2) *during* the deterministic
    exploration — movable pool values are interchangeable, so the quotient
    can be exponentially smaller, and it stays persistence-preserving
    bisimilar to the exact exploration because the call map carries the
    full value history. The nondeterministic pool semantics has plain
    instances for states, which admit no sound quotient (merging would
    conflate value-persists with value-replaced transitions — see
    :mod:`repro.engine.symmetry`), so quotient mode is ignored there.

    ``memory_budget`` (bytes) runs the exploration out-of-core through
    the paged state store (:mod:`repro.engine.store`), bit-identical to
    the in-RAM build; ``None`` falls back to ``REPRO_MEMORY_BUDGET``.
    """
    pool = sorted_values(set(pool))
    symmetry = resolve_symmetry(symmetry)  # validated on both branches
    if dcds.semantics is ServiceSemantics.DETERMINISTIC:
        generator = reduced(PoolDetGenerator(dcds, pool), symmetry)
        name = f"concrete-det[{dcds.name}]"
    else:
        generator = PoolNondetGenerator(dcds, pool)
        name = f"concrete-nondet[{dcds.name}]"
    explorer = make_explorer(
        dcds.schema, workers=workers, batch_size=batch_size,
        name=name, max_states=max_states, max_depth=depth,
        on_budget="raise", budget_error=_fuse_error,
        memory_budget=memory_budget)
    ts = explorer.run(generator).transition_system
    attach_kernel_stats(dcds, ts)
    attach_symmetry_stats(generator, ts)
    return ts


def _fuse_error(explorer: Explorer) -> AbstractionDiverged:
    return AbstractionDiverged(
        f"concrete exploration exceeded {explorer.max_states} states",
        partial_states=len(explorer.ts))
