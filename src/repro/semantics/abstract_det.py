"""Abstract finite-state transition system for deterministic services (§4).

States are pairs ``<I, M>`` of an instance and a service-call map, as in the
concrete transition system of Section 4.1 — but instead of branching over the
infinitely many possible results of fresh service calls, we branch over
*equality commitments* (is the result equal to some already-seen value, or to
another fresh call's result, or globally fresh?), with fresh results
represented by canonically minted :class:`Fresh` values.

For run-bounded DCDSs this construction terminates and yields exactly the
abstract transition system of Theorem 4.3, history-preserving bisimilar to
the concrete one (see Figures 2(b), 3(b) of the paper, reproduced in the
benchmarks). For run-unbounded DCDSs (Example 4.3) it diverges; a state fuse
turns divergence into :class:`AbstractionDiverged` carrying the growth trace.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.errors import AbstractionDiverged, ReproError
from repro.core.dcds import DCDS, ServiceSemantics
from repro.core.execution import (
    calls_of, do_action, enabled_moves, evaluate_calls)
from repro.relational.instance import Instance
from repro.relational.values import ServiceCall
from repro.semantics.commitments import enumerate_commitments
from repro.semantics.transition_system import TransitionSystem
from repro.utils import value_sort_key

CallMap = Tuple[Tuple[ServiceCall, Any], ...]


@dataclass(frozen=True)
class DetState:
    """A state ``<I, M>`` of the (abstract or concrete) deterministic TS."""

    instance: Instance
    call_map: CallMap

    def __repr__(self) -> str:
        entries = ", ".join(f"{call!r}->{value!r}"
                            for call, value in self.call_map)
        return f"<{self.instance!r} | {entries}>"

    def map_dict(self) -> Dict[ServiceCall, Any]:
        return dict(self.call_map)

    def known_values(self) -> FrozenSet[Any]:
        """Every value this state has ever seen: current adom, call results,
        and call arguments (the history, Section 4.1)."""
        values = set(self.instance.active_domain())
        for call, result in self.call_map:
            values.add(result)
            values.update(call.args)
        return frozenset(values)


def _sorted_call_map(mapping: Dict[ServiceCall, Any]) -> CallMap:
    return tuple(sorted(mapping.items(), key=lambda item: repr(item[0])))


def _sigma_label(action_name: str, sigma: Dict) -> str:
    if not sigma:
        return action_name
    rendered = ", ".join(f"{param.name}={value!r}"
                         for param, value in sorted(
                             sigma.items(), key=lambda item: item[0].name))
    return f"{action_name}[{rendered}]"


def build_det_abstraction(
    dcds: DCDS,
    max_states: int = 20000,
    max_depth: Optional[int] = None,
) -> TransitionSystem:
    """Build the abstract transition system of Theorem 4.3 by BFS.

    ``max_states`` is the divergence fuse; ``max_depth`` optionally truncates
    the construction (useful for growth probes on run-unbounded inputs —
    truncated frontier states are marked on the result).
    """
    if dcds.semantics is not ServiceSemantics.DETERMINISTIC:
        raise ReproError(
            "build_det_abstraction requires deterministic semantics; "
            "use rcycl() for nondeterministic services")

    initial = DetState(dcds.initial, ())
    ts = TransitionSystem(dcds.schema, initial,
                          name=f"abstract[{dcds.name}]")
    ts.add_state(initial, dcds.initial)

    known_constants = dcds.known_constants()
    queue: deque = deque([(initial, 0)])
    growth: List[int] = [1]

    while queue:
        state, depth = queue.popleft()
        if max_depth is not None and depth >= max_depth:
            ts.mark_truncated(state)
            continue
        for successor, label in det_successors(dcds, state, known_constants):
            is_new = successor not in ts
            ts.add_state(successor, successor.instance)
            ts.add_edge(state, successor, label)
            if is_new:
                while len(growth) <= depth + 1:
                    growth.append(0)
                growth[depth + 1] += 1
                if len(ts) > max_states:
                    raise AbstractionDiverged(
                        f"abstraction exceeded {max_states} states — the "
                        f"DCDS is likely not run-bounded (cf. Theorem 4.6: "
                        f"run-boundedness is undecidable)",
                        growth_trace=tuple(growth),
                        partial_states=len(ts))
                queue.append((successor, depth + 1))
    return ts


def det_successors(
    dcds: DCDS, state: DetState, known_constants: FrozenSet[Any]
) -> List[Tuple[DetState, str]]:
    """All abstract successors of ``<I, M>`` (EXECS, Section 4.1).

    For every enabled ``(alpha, sigma)``: compute ``DO``, split its calls into
    already-answered (resolved via ``M`` — determinism) and fresh ones,
    enumerate equality commitments for the fresh ones, apply, and keep the
    successors satisfying the equality constraints.
    """
    instance = state.instance
    call_map = state.map_dict()
    known = state.known_values() | known_constants
    successors: List[Tuple[DetState, str]] = []

    for action, sigma in enabled_moves(dcds, instance):
        pending = do_action(dcds, instance, action, sigma)
        calls = pending.service_calls()
        resolved = {call: call_map[call] for call in calls if call in call_map}
        new_calls = sorted((call for call in calls if call not in call_map),
                           key=repr)
        label = _sigma_label(action.name, sigma)

        for commitment in enumerate_commitments(new_calls, known):
            evaluation = {**resolved, **commitment}
            successor_instance = evaluate_calls(dcds, pending, evaluation)
            if successor_instance is None:
                continue  # equality constraints filtered this commitment out
            extended_map = dict(call_map)
            extended_map.update(commitment)
            successors.append(
                (DetState(successor_instance, _sorted_call_map(extended_map)),
                 label))
    return successors


def det_growth_trace(dcds: DCDS, max_depth: int,
                     max_states: int = 200000) -> List[int]:
    """New-states-per-BFS-level trace, for divergence probes (Figure 4).

    Unlike :func:`build_det_abstraction` this never raises on growth; it
    explores to ``max_depth`` and reports the level sizes.
    """
    ts = build_det_abstraction(dcds, max_states=max_states,
                               max_depth=max_depth)
    return [len(level) for level in ts.depth_levels()]
