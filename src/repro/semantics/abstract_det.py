"""Abstract finite-state transition system for deterministic services (§4).

States are pairs ``<I, M>`` of an instance and a service-call map, as in the
concrete transition system of Section 4.1 — but instead of branching over the
infinitely many possible results of fresh service calls, we branch over
*equality commitments* (is the result equal to some already-seen value, or to
another fresh call's result, or globally fresh?), with fresh results
represented by canonically minted :class:`Fresh` values.

For run-bounded DCDSs this construction terminates and yields exactly the
abstract transition system of Theorem 4.3, history-preserving bisimilar to
the concrete one (see Figures 2(b), 3(b) of the paper, reproduced in the
benchmarks). For run-unbounded DCDSs (Example 4.3) it diverges; a state fuse
turns divergence into :class:`AbstractionDiverged` carrying the growth trace.

The frontier loop lives in :class:`repro.engine.Explorer`; this module only
configures it with the :class:`repro.engine.DetAbstractionGenerator`
successor semantics.
"""

from __future__ import annotations

from typing import Any, FrozenSet, List, Optional, Tuple

from repro.errors import AbstractionDiverged, ReproError
from repro.core.dcds import DCDS, ServiceSemantics
from repro.engine.explorer import Explorer
from repro.engine.generators import (
    CallMap, DetAbstractionGenerator, DetState, sorted_call_map)
from repro.engine.parallel import make_explorer
from repro.engine.symmetry import (
    attach_symmetry_stats, reduced, resolve_symmetry)
from repro.relational.kernel import attach_kernel_stats
from repro.semantics.transition_system import TransitionSystem

# Re-exported for backwards compatibility: DetState historically lived here.
__all__ = [
    "CallMap", "DetState", "build_det_abstraction", "det_growth_trace",
    "det_successors",
]

_sorted_call_map = sorted_call_map


def _diverged_error(explorer: Explorer) -> AbstractionDiverged:
    return AbstractionDiverged(
        f"abstraction exceeded {explorer.max_states} states — the "
        f"DCDS is likely not run-bounded (cf. Theorem 4.6: "
        f"run-boundedness is undecidable)",
        growth_trace=tuple(explorer.stats.growth),
        partial_states=len(explorer.ts))


def build_det_abstraction(
    dcds: DCDS,
    max_states: int = 20000,
    max_depth: Optional[int] = None,
    observer=None,
    workers: Optional[int] = None,
    batch_size: int = 16,
    symmetry: Optional[str] = None,
    checkpoint=None,
    memory_budget: Optional[int] = None,
) -> TransitionSystem:
    """Build the abstract transition system of Theorem 4.3 by BFS.

    ``max_states`` is the divergence fuse; ``max_depth`` optionally truncates
    the construction (useful for growth probes on run-unbounded inputs —
    truncated frontier states are marked on the result). ``observer`` is the
    per-state early-stop hook of :class:`repro.engine.Explorer` (the
    on-the-fly verification route).

    ``workers`` shards the frontier expansions across a
    :class:`repro.engine.ParallelExplorer` worker pool (``batch_size`` states
    per dispatch); the result is bit-identical to the sequential build for
    any worker count.

    ``checkpoint`` (a path or :class:`repro.engine.checkpoint.Checkpoint`)
    persists the build's progress crash-safely; an interrupted build
    rerun with the same ``checkpoint=`` resumes from the last durable
    chunk and still converges to the bit-identical transition system.

    ``symmetry="quotient"`` explores the isomorphism quotient instead of
    the exact system: every successor ``<I, M>`` is replaced by the
    canonical representative of its class (bijections fixing the known
    constants, Lemma C.2), so isomorphic states merge *before* expansion.
    The result is persistence-preserving bisimilar to the exact build —
    sound for µLP properties only. Default ``"exact"``; the environment
    default is ``REPRO_SYMMETRY`` and ``REPRO_NO_SYMMETRY=1`` kills the
    reduction (see :mod:`repro.engine.symmetry`).

    ``memory_budget`` (bytes) switches the build to the out-of-core
    storage layer (:mod:`repro.engine.store`): coded states spill to
    append-only pages, only a budgeted hot set stays live, and the
    result is bit-identical to the unbudgeted build. ``None`` falls back
    to ``REPRO_MEMORY_BUDGET``; ``REPRO_NO_SPILL=1`` is the kill switch.
    """
    if dcds.semantics is not ServiceSemantics.DETERMINISTIC:
        raise ReproError(
            "build_det_abstraction requires deterministic semantics; "
            "use rcycl() for nondeterministic services")
    explorer = make_explorer(
        dcds.schema, workers=workers, batch_size=batch_size,
        name=f"abstract[{dcds.name}]", max_states=max_states,
        max_depth=max_depth, on_budget="raise",
        budget_error=_diverged_error, observer=observer,
        checkpoint=checkpoint, memory_budget=memory_budget)
    generator = reduced(DetAbstractionGenerator(dcds),
                        resolve_symmetry(symmetry))
    result = explorer.run(generator)
    attach_kernel_stats(dcds, result.transition_system)
    attach_symmetry_stats(generator, result.transition_system)
    return result.transition_system


def det_successors(
    dcds: DCDS, state: DetState, known_constants: FrozenSet[Any]
) -> List[Tuple[DetState, str]]:
    """All abstract successors of ``<I, M>`` (EXECS, Section 4.1).

    Thin wrapper over :class:`repro.engine.DetAbstractionGenerator`, kept for
    callers that inspect one state's successors without running the engine.
    ``known_constants`` must equal ``dcds.known_constants()`` (the historical
    signature is preserved).
    """
    generator = DetAbstractionGenerator(dcds)
    generator.known_constants = frozenset(known_constants)
    return [(successor, label)
            for successor, _, label in generator.successors(state)]


def det_growth_trace(dcds: DCDS, max_depth: int,
                     max_states: int = 200000) -> List[int]:
    """New-states-per-BFS-level trace, for divergence probes (Figure 4).

    Unlike :func:`build_det_abstraction` this never raises on growth; it
    explores to ``max_depth`` and reports the level sizes.
    """
    ts = build_det_abstraction(dcds, max_states=max_states,
                               max_depth=max_depth)
    return [len(level) for level in ts.depth_levels()]
