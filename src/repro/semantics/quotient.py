"""Isomorphism quotient of a transition system.

Lemma C.2 shows that states isomorphic via a bijection fixing ``ADOM(I0)``
are persistence-preserving bisimilar. The quotient therefore merges
isomorphic states of a pruning while preserving all µLP properties; it is
how we compare our RCYCL output (a pruning, not the minimum one) against the
paper's hand-drawn abstract systems (e.g. Figure 7(b)).

Isomorphism classes are discovered through the engine's
:class:`~repro.engine.StateInterner`, so the expensive canonical labeling
only runs on instance-fingerprint collisions and is shared between states
with equal databases.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Tuple

from repro.engine.interning import StateInterner
from repro.semantics.transition_system import State, TransitionSystem


def isomorphism_quotient(
    ts: TransitionSystem, fixed: Iterable[Any] = ()
) -> Tuple[TransitionSystem, Dict[State, State]]:
    """Merge states whose databases are isomorphic (fixing ``fixed``).

    Each equivalence class is represented by the canonical form of its
    members' databases. Returns the quotient system and the state mapping.

    Note: for deterministic-service systems the state is ``<I, M>`` and the
    db alone under-approximates the state; this quotient is only meaningful
    for nondeterministic-service systems, whose states are plain instances
    (Lemma C.2 applies to those).
    """
    interner = StateInterner(fixed)
    mapping: Dict[State, State] = {}
    canonical_db: Dict[tuple, Any] = {}

    for state in ts.states:
        entry = interner.intern(ts.db(state))
        key = entry.key(interner.fixed)
        canonical_db.setdefault(key, entry.canonical(interner.fixed))
        mapping[state] = key

    quotient = TransitionSystem(
        ts.schema, mapping[ts.initial], name=f"quotient[{ts.name}]")
    for key, canon in canonical_db.items():
        quotient.add_state(key, canon)
    for source, label, target in ts.edges():
        quotient.add_edge(mapping[source], mapping[target], label)
    for state in ts.truncated_states:
        quotient.mark_truncated(mapping[state])
    quotient.exploration_stats = {"intern": interner.stats.as_dict()}
    return quotient, mapping
