"""Isomorphism quotient of a transition system (the post-hoc path).

Lemma C.2 shows that states isomorphic via a bijection fixing ``ADOM(I0)``
are persistence-preserving bisimilar *pairwise*. The quotient merges such
states; it is how we compare our RCYCL output (a pruning, not the minimum
one) against the paper's hand-drawn abstract systems (e.g. Figure 7(b)).

Caveat (made explicit by PR 5): the quotient *system* is not in general
bisimilar to the original — merging two isomorphic plain-instance states
conflates "value persists" with "value is replaced by an isomorphic twin"
transitions between the same class pair, which µLP can observe (the
counterexample lives in :mod:`repro.engine.symmetry`). The quotient is
therefore a *comparison* structure — two constructions of the same state
space quotient identically, so equality/bisimilarity of the quotients is
meaningful — not a verification structure. Verification-grade in-flight
reduction exists for the history-carrying ``<I, M>`` systems via
:class:`repro.engine.SymmetryReducer`, whose call maps rule the
conflation out.

This module is a thin wrapper over the canonical-first
:class:`~repro.engine.StateInterner`: every state's database is interned
eagerly by canonical key, and the quotient is read off the key mapping.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Tuple

from repro.engine.interning import StateInterner
from repro.semantics.transition_system import State, TransitionSystem


def isomorphism_quotient(
    ts: TransitionSystem, fixed: Iterable[Any] = (),
    canonicalizer=None,
) -> Tuple[TransitionSystem, Dict[State, State]]:
    """Merge states whose databases are isomorphic (fixing ``fixed``).

    Each equivalence class is represented by the canonical form of its
    members' databases. Returns the quotient system and the state mapping.
    ``canonicalizer`` accelerates the labeling on a DCDS's integer kernel
    (pass :func:`repro.relational.kernel.kernel_instance_canonicalizer`);
    the default is the object-level ``canonical_form``.

    Note: for deterministic-service systems the state is ``<I, M>`` and the
    db alone under-approximates the state; this quotient is only meaningful
    for nondeterministic-service systems, whose states are plain instances
    (Lemma C.2 applies to those). Deterministic systems get their joint
    ``<I, M>`` quotient from quotient-mode exploration
    (:class:`repro.engine.SymmetryReducer`).
    """
    interner = StateInterner(fixed, mode="canonical-first",
                             canonicalizer=canonicalizer)
    mapping: Dict[State, State] = {}
    canonical_db: Dict[tuple, Any] = {}

    for state in ts.states:
        entry = interner.intern(ts.db(state))
        key = entry.key(interner.fixed)
        canonical_db.setdefault(key, entry.canonical(interner.fixed))
        mapping[state] = key

    quotient = TransitionSystem(
        ts.schema, mapping[ts.initial], name=f"quotient[{ts.name}]")
    for key, canon in canonical_db.items():
        quotient.add_state(key, canon)
    for source, label, target in ts.edges():
        quotient.add_edge(mapping[source], mapping[target], label)
    for state in ts.truncated_states:
        quotient.mark_truncated(mapping[state])
    quotient.exploration_stats = {"intern": interner.stats.as_dict()}
    return quotient, mapping
