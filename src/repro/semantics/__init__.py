"""Transition-system semantics: concrete exploration and finite abstractions."""

from repro.semantics.abstract_det import (
    DetState, build_det_abstraction, det_growth_trace, det_successors)
from repro.semantics.commitments import (
    count_commitments, enumerate_commitments)
from repro.semantics.concrete import (
    DeterministicOracle, NondeterministicOracle, explore_concrete, simulate)
from repro.semantics.quotient import isomorphism_quotient
from repro.semantics.rcycl import (
    RcyclResult, rcycl, rcycl_partial, state_size_trace)
from repro.semantics.transition_system import State, TransitionSystem

__all__ = [
    "DetState", "DeterministicOracle", "NondeterministicOracle",
    "RcyclResult", "State", "TransitionSystem", "build_det_abstraction",
    "count_commitments", "det_growth_trace", "det_successors",
    "enumerate_commitments", "explore_concrete", "isomorphism_quotient",
    "rcycl", "rcycl_partial", "simulate", "state_size_trace",
]
