"""Ablated abstraction variants — why the paper's devices are load-bearing.

* **RCYCL's recycling preference** (Appendix C.3): when enough previously
  used values are available outside the current state, reuse them instead of
  minting fresh ones. :func:`rcycl_fresh_only` drops the preference (always
  fresh candidates). On state-bounded systems the real algorithm saturates;
  this variant keeps generating isomorphic-but-unequal states forever —
  Lemma C.3(i) fails without eventually-recycling.

* **Equality commitments** vs. brute-force value enumeration: the
  deterministic abstraction branches over commitment *types*, which is both
  exact and minimal; enumerating evaluations over an explicit value pool
  (``explore_concrete``) grows with the pool and only approximates the
  system up to the pool size. ``benchmarks/bench_ablations.py`` sweeps the
  pool size to expose the gap.

These variants are exercised by ``benchmarks/bench_ablations.py`` as
evidence, not as usable APIs.
"""

from __future__ import annotations

from collections import deque
from itertools import product
from typing import Any, Dict, List, Set

from repro.core.dcds import DCDS, ServiceSemantics
from repro.core.execution import do_action, enabled_moves, evaluate_calls
from repro.errors import ReproError
from repro.relational.values import Fresh, ServiceCall
from repro.semantics.rcycl import _sigma_key
from repro.semantics.transition_system import TransitionSystem
from repro.utils import sorted_values


class AblationExhausted(Exception):
    """The ablated construction hit its budget (the expected outcome)."""

    def __init__(self, states_reached: int):
        super().__init__(f"ablated construction reached {states_reached} "
                         f"states without saturating")
        self.states_reached = states_reached


def rcycl_fresh_only(dcds: DCDS, max_states: int = 500,
                     max_iterations: int = 100000) -> TransitionSystem:
    """RCYCL without the recycling preference: candidates always fresh.

    Raises :class:`AblationExhausted` when the fuse trips (the expected
    outcome on any system that keeps issuing service calls — without
    recycling, eventually-recycling never holds and Lemma C.3(i) fails).
    """
    if dcds.semantics is not ServiceSemantics.NONDETERMINISTIC:
        raise ReproError("rcycl_fresh_only requires nondeterministic "
                         "semantics")
    initial = dcds.initial
    ts = TransitionSystem(dcds.schema, initial,
                          name=f"rcycl-fresh-only[{dcds.name}]")
    ts.add_state(initial, initial)

    initial_adom = set(dcds.data.initial_adom)
    known_constants = set(dcds.known_constants())
    used_values: Set[Any] = set(initial_adom) | known_constants
    visited: Set[tuple] = set()
    queue: deque = deque([initial])
    iterations = 0

    while queue:
        instance = queue.popleft()
        for action, sigma in enabled_moves(dcds, instance):
            key = (instance, action.name, _sigma_key(sigma))
            if key in visited:
                continue
            visited.add(key)
            iterations += 1
            if iterations > max_iterations:
                raise AblationExhausted(len(ts))

            pending = do_action(dcds, instance, action, sigma)
            calls = sorted(pending.service_calls(), key=repr)

            # Ablation: never recycle — always mint fresh candidates.
            candidates: List[Fresh] = []
            taken = {v.index for v in used_values if isinstance(v, Fresh)}
            index = 0
            while len(candidates) < len(calls):
                if index not in taken:
                    candidates.append(Fresh(index))
                    taken.add(index)
                index += 1
            used_values.update(candidates)

            evaluation_range = sorted_values(
                initial_adom | known_constants
                | set(instance.active_domain()) | set(candidates))
            for combo in product(evaluation_range, repeat=len(calls)):
                successor = evaluate_calls(dcds, pending,
                                           dict(zip(calls, combo)))
                if successor is None:
                    continue
                is_new = successor not in ts
                ts.add_state(successor, successor)
                ts.add_edge(instance, successor, action.name)
                if is_new:
                    used_values |= set(successor.active_domain())
                    if len(ts) > max_states:
                        raise AblationExhausted(len(ts))
                    queue.append(successor)
    return ts
