"""Ablated abstraction variants — why the paper's devices are load-bearing.

* **RCYCL's recycling preference** (Appendix C.3): when enough previously
  used values are available outside the current state, reuse them instead of
  minting fresh ones. :func:`rcycl_fresh_only` drops the preference (always
  fresh candidates). On state-bounded systems the real algorithm saturates;
  this variant keeps generating isomorphic-but-unequal states forever —
  Lemma C.3(i) fails without eventually-recycling.

* **Equality commitments** vs. brute-force value enumeration: the
  deterministic abstraction branches over commitment *types*, which is both
  exact and minimal; enumerating evaluations over an explicit value pool
  (``explore_concrete``) grows with the pool and only approximates the
  system up to the pool size. ``benchmarks/bench_ablations.py`` sweeps the
  pool size to expose the gap.

These variants are exercised by ``benchmarks/bench_ablations.py`` as
evidence, not as usable APIs. The ablation reuses the engine's
:class:`~repro.engine.RcyclGenerator` with ``recycle=False``.
"""

from __future__ import annotations

from repro.core.dcds import DCDS, ServiceSemantics
from repro.engine.explorer import Explorer
from repro.engine.generators import RcyclGenerator
from repro.errors import ReproError
from repro.semantics.transition_system import TransitionSystem


class AblationExhausted(Exception):
    """The ablated construction hit its budget (the expected outcome)."""

    def __init__(self, states_reached: int):
        super().__init__(f"ablated construction reached {states_reached} "
                         f"states without saturating")
        self.states_reached = states_reached


def _exhausted(explorer: Explorer) -> AblationExhausted:
    return AblationExhausted(len(explorer.ts))


def rcycl_fresh_only(dcds: DCDS, max_states: int = 500,
                     max_iterations: int = 100000) -> TransitionSystem:
    """RCYCL without the recycling preference: candidates always fresh.

    Raises :class:`AblationExhausted` when the fuse trips (the expected
    outcome on any system that keeps issuing service calls — without
    recycling, eventually-recycling never holds and Lemma C.3(i) fails).
    """
    if dcds.semantics is not ServiceSemantics.NONDETERMINISTIC:
        raise ReproError("rcycl_fresh_only requires nondeterministic "
                         "semantics")
    generator = RcyclGenerator(dcds, max_iterations=max_iterations,
                               recycle=False)
    explorer = Explorer(
        dcds.schema, name=f"rcycl-fresh-only[{dcds.name}]",
        max_states=max_states, on_budget="raise", budget_error=_exhausted)
    return explorer.run(generator).transition_system
