"""Algorithm RCYCL: eventually-recycling pruning (Appendix C.3).

For a DCDS with nondeterministic services, the concrete transition system is
infinitely branching (every fresh service call can return any of infinitely
many values). RCYCL constructs a finite pruning that is persistence-
preserving bisimilar to the concrete system whenever the DCDS is
state-bounded (Theorem 5.4):

* states are plain instances (no call map — services are nondeterministic);
* for each unvisited ``(I, alpha, sigma)``, pick a set ``V`` of candidate
  call results — *recycled* values (used before but outside
  ``ADOM(I0) ∪ ADOM(I)``) when enough exist, globally fresh values otherwise;
* add one successor per evaluation of the calls over
  ``F = ADOM(I0) ∪ ADOM(I) ∪ V`` that satisfies the equality constraints.

The preference for recycling is what bounds the total number of values: once
enough values circulate, no new ones are ever minted, and saturation follows
for state-bounded systems. On state-unbounded inputs (Example 5.2) the loop
diverges; a fuse raises :class:`AbstractionDiverged` with the growth trace.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from itertools import product
from typing import Any, Dict, List, Set

from repro.errors import AbstractionDiverged, ReproError
from repro.core.dcds import DCDS, ServiceSemantics
from repro.core.execution import do_action, enabled_moves, evaluate_calls
from repro.relational.values import Fresh
from repro.semantics.transition_system import TransitionSystem
from repro.utils import sorted_values


def _mint_fresh(count: int, used: Set[Any]) -> List[Fresh]:
    taken = {value.index for value in used if isinstance(value, Fresh)}
    minted: List[Fresh] = []
    index = 0
    while len(minted) < count:
        if index not in taken:
            minted.append(Fresh(index))
            taken.add(index)
        index += 1
    return minted


def _sigma_key(sigma: Dict) -> tuple:
    return tuple(sorted(((param.name, value) for param, value in sigma.items()),
                        key=lambda item: (item[0], repr(item[1]))))


@dataclass
class RcyclResult:
    """Outcome of a (possibly fused) RCYCL run."""

    transition_system: TransitionSystem
    diverged: bool
    iterations: int
    minted_values: int


def _rcycl_core(dcds: DCDS, max_states: int,
                max_iterations: int) -> RcyclResult:
    initial = dcds.initial
    ts = TransitionSystem(dcds.schema, initial, name=f"rcycl[{dcds.name}]")
    ts.add_state(initial, initial)

    initial_adom = set(dcds.data.initial_adom)
    known_constants = set(dcds.known_constants())
    used_values: Set[Any] = set(initial_adom) | known_constants
    visited: Set[tuple] = set()
    queue: deque = deque([initial])
    iterations = 0
    minted_total = 0
    diverged = False

    while queue and not diverged:
        instance = queue.popleft()
        for action, sigma in enabled_moves(dcds, instance):
            key = (instance, action.name, _sigma_key(sigma))
            if key in visited:
                continue
            visited.add(key)
            iterations += 1
            if iterations > max_iterations:
                diverged = True
                break

            pending = do_action(dcds, instance, action, sigma)
            calls = sorted(pending.service_calls(), key=repr)
            n_calls = len(calls)

            # RecyclableValues := UsedValues − (ADOM(I0) ∪ ADOM(I))
            recyclable = sorted_values(
                used_values - (initial_adom | set(instance.active_domain())))
            if len(recyclable) >= n_calls:
                candidates = recyclable[:n_calls]  # recycled values
            else:
                candidates = _mint_fresh(n_calls, used_values)  # fresh values
                minted_total += len(candidates)

            evaluation_range = sorted_values(
                initial_adom | known_constants
                | set(instance.active_domain()) | set(candidates))

            label = action.name if not sigma else \
                f"{action.name}[{_sigma_key(sigma)}]"
            for combo in product(evaluation_range, repeat=n_calls):
                evaluation = dict(zip(calls, combo))
                successor = evaluate_calls(dcds, pending, evaluation)
                if successor is None:
                    continue  # violates an equality constraint
                is_new = successor not in ts
                ts.add_state(successor, successor)
                ts.add_edge(instance, successor, label)
                if is_new:
                    used_values |= set(successor.active_domain())
                    queue.append(successor)
                    if len(ts) > max_states:
                        diverged = True
                        break
            if diverged:
                break

    if diverged:
        for state in queue:
            ts.mark_truncated(state)
    return RcyclResult(ts, diverged, iterations, minted_total)


def rcycl(dcds: DCDS, max_states: int = 20000,
          max_iterations: int = 2000000) -> TransitionSystem:
    """Run Algorithm RCYCL and return the finite pruning it constructs.

    Raises :class:`AbstractionDiverged` when the fuse trips — the observable
    symptom of a state-unbounded DCDS (state-boundedness is undecidable,
    Theorem 5.5). Use :func:`rcycl_partial` to inspect the partial result.
    """
    if dcds.semantics is not ServiceSemantics.NONDETERMINISTIC:
        raise ReproError(
            "rcycl requires nondeterministic semantics; use "
            "build_det_abstraction for deterministic services")
    result = _rcycl_core(dcds, max_states, max_iterations)
    if result.diverged:
        sizes = _discovery_sizes(result.transition_system)
        raise AbstractionDiverged(
            f"RCYCL exceeded its fuse ({max_states} states / "
            f"{max_iterations} iterations) — the DCDS is likely not "
            f"state-bounded (cf. Theorem 5.5)",
            growth_trace=tuple(sizes),
            partial_states=len(result.transition_system))
    return result.transition_system


def rcycl_partial(dcds: DCDS, max_states: int = 2000,
                  max_iterations: int = 200000) -> RcyclResult:
    """RCYCL that never raises: returns the (possibly partial) pruning.

    Used by the boundedness probes and the divergence benchmarks (Figure 6).
    """
    if dcds.semantics is not ServiceSemantics.NONDETERMINISTIC:
        raise ReproError("rcycl_partial requires nondeterministic semantics")
    return _rcycl_core(dcds, max_states, max_iterations)


def _discovery_sizes(ts: TransitionSystem) -> List[int]:
    """Max active-domain size per BFS level (state-growth evidence)."""
    return [max(len(ts.db(state).active_domain()) for state in level)
            for level in ts.depth_levels()]


def state_size_trace(dcds: DCDS, max_states: int = 500,
                     max_iterations: int = 100000) -> List[int]:
    """Max state size per BFS level, tolerant of divergence (Figure 6)."""
    result = rcycl_partial(dcds, max_states, max_iterations)
    return _discovery_sizes(result.transition_system)
