"""Algorithm RCYCL: eventually-recycling pruning (Appendix C.3).

For a DCDS with nondeterministic services, the concrete transition system is
infinitely branching (every fresh service call can return any of infinitely
many values). RCYCL constructs a finite pruning that is persistence-
preserving bisimilar to the concrete system whenever the DCDS is
state-bounded (Theorem 5.4):

* states are plain instances (no call map — services are nondeterministic);
* for each unvisited ``(I, alpha, sigma)``, pick a set ``V`` of candidate
  call results — *recycled* values (used before but outside
  ``ADOM(I0) ∪ ADOM(I)``) when enough exist, globally fresh values otherwise;
* add one successor per evaluation of the calls over
  ``F = ADOM(I0) ∪ ADOM(I) ∪ V`` that satisfies the equality constraints.

The preference for recycling is what bounds the total number of values: once
enough values circulate, no new ones are ever minted, and saturation follows
for state-bounded systems. On state-unbounded inputs (Example 5.2) the loop
diverges; a fuse raises :class:`AbstractionDiverged` with the growth trace.

The frontier loop lives in :class:`repro.engine.Explorer`; this module only
configures it with the :class:`repro.engine.RcyclGenerator` successor
semantics (``on_budget="truncate"``: a tripped fuse marks the unexpanded
frontier instead of raising, so partial prunings stay inspectable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import AbstractionDiverged, ReproError
from repro.core.dcds import DCDS, ServiceSemantics
from repro.engine.explorer import Explorer
from repro.engine.generators import RcyclGenerator, sigma_key
from repro.relational.kernel import attach_kernel_stats
from repro.semantics.transition_system import TransitionSystem

_sigma_key = sigma_key  # historical name, used by the ablations module


@dataclass
class RcyclResult:
    """Outcome of a (possibly fused) RCYCL run."""

    transition_system: TransitionSystem
    diverged: bool
    iterations: int
    minted_values: int


def _rcycl_core(dcds: DCDS, max_states: int,
                max_iterations: int, observer=None) -> RcyclResult:
    generator = RcyclGenerator(dcds, max_iterations=max_iterations)
    explorer = Explorer(
        dcds.schema, name=f"rcycl[{dcds.name}]",
        max_states=max_states, on_budget="truncate", observer=observer)
    result = explorer.run(generator)
    attach_kernel_stats(dcds, result.transition_system)
    return RcyclResult(result.transition_system, result.diverged,
                       generator.iterations, generator.minted_total)


def rcycl(dcds: DCDS, max_states: int = 20000,
          max_iterations: int = 2000000, observer=None) -> TransitionSystem:
    """Run Algorithm RCYCL and return the finite pruning it constructs.

    Raises :class:`AbstractionDiverged` when the fuse trips — the observable
    symptom of a state-unbounded DCDS (state-boundedness is undecidable,
    Theorem 5.5). Use :func:`rcycl_partial` to inspect the partial result.
    ``observer`` is the per-state early-stop hook of
    :class:`repro.engine.Explorer` (the on-the-fly verification route).
    """
    if dcds.semantics is not ServiceSemantics.NONDETERMINISTIC:
        raise ReproError(
            "rcycl requires nondeterministic semantics; use "
            "build_det_abstraction for deterministic services")
    result = _rcycl_core(dcds, max_states, max_iterations, observer)
    if result.diverged:
        sizes = _discovery_sizes(result.transition_system)
        raise AbstractionDiverged(
            f"RCYCL exceeded its fuse ({max_states} states / "
            f"{max_iterations} iterations) — the DCDS is likely not "
            f"state-bounded (cf. Theorem 5.5)",
            growth_trace=tuple(sizes),
            partial_states=len(result.transition_system))
    return result.transition_system


def rcycl_partial(dcds: DCDS, max_states: int = 2000,
                  max_iterations: int = 200000) -> RcyclResult:
    """RCYCL that never raises: returns the (possibly partial) pruning.

    Used by the boundedness probes and the divergence benchmarks (Figure 6).
    """
    if dcds.semantics is not ServiceSemantics.NONDETERMINISTIC:
        raise ReproError("rcycl_partial requires nondeterministic semantics")
    return _rcycl_core(dcds, max_states, max_iterations)


def _discovery_sizes(ts: TransitionSystem) -> List[int]:
    """Max active-domain size per BFS level (state-growth evidence)."""
    return [max(len(ts.db(state).active_domain()) for state in level)
            for level in ts.depth_levels()]


def state_size_trace(dcds: DCDS, max_states: int = 500,
                     max_iterations: int = 100000) -> List[int]:
    """Max state size per BFS level, tolerant of divergence (Figure 6)."""
    result = rcycl_partial(dcds, max_states, max_iterations)
    return _discovery_sizes(result.transition_system)
