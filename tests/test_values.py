"""Terms: variables, parameters, service calls, substitution."""

import pytest

from repro.relational.values import (
    Fresh, Param, ServiceCall, Var, is_value, substitute_term,
    term_parameters, term_service_calls, term_values, term_variables)


class TestTermKinds:
    def test_plain_values_are_values(self):
        assert is_value("a")
        assert is_value(0)
        assert is_value(Fresh(3))

    def test_symbolic_terms_are_not_values(self):
        assert not is_value(Var("x"))
        assert not is_value(Param("p"))
        assert not is_value(ServiceCall("f", ("a",)))

    def test_fresh_ordering_and_repr(self):
        assert Fresh(0) < Fresh(1)
        assert repr(Fresh(7)) == "#7"

    def test_var_and_param_are_distinct(self):
        assert Var("p") != Param("p")

    def test_service_call_repr(self):
        call = ServiceCall("f", (Var("x"), "a"))
        assert repr(call) == "f(x, 'a')"
        assert call.arity == 2


class TestGroundness:
    def test_ground_call(self):
        assert ServiceCall("f", ("a", 1)).is_ground()

    def test_call_with_variable_not_ground(self):
        assert not ServiceCall("f", (Var("x"),)).is_ground()

    def test_call_with_param_not_ground(self):
        assert not ServiceCall("f", (Param("p"),)).is_ground()

    def test_nested_call_not_ground(self):
        inner = ServiceCall("g", ("a",))
        assert not ServiceCall("f", (inner,)).is_ground()


class TestSubstitution:
    def test_substitute_variable(self):
        assert substitute_term(Var("x"), {Var("x"): "v"}) == "v"

    def test_substitute_param(self):
        assert substitute_term(Param("p"), {Param("p"): 3}) == 3

    def test_unbound_left_in_place(self):
        assert substitute_term(Var("x"), {}) == Var("x")

    def test_value_maps_to_itself(self):
        assert substitute_term("a", {Var("x"): "v"}) == "a"

    def test_substitute_inside_call(self):
        call = ServiceCall("f", (Var("x"), Param("p")))
        result = substitute_term(call, {Var("x"): "a", Param("p"): "b"})
        assert result == ServiceCall("f", ("a", "b"))
        assert result.is_ground()

    def test_staged_substitution(self):
        call = ServiceCall("f", (Var("x"), Param("p")))
        partially = substitute_term(call, {Param("p"): "b"})
        assert partially == ServiceCall("f", (Var("x"), "b"))
        assert substitute_term(partially, {Var("x"): "a"}).is_ground()


class TestTermIteration:
    def test_variables_of_call(self):
        call = ServiceCall("f", (Var("x"), "a", Var("y")))
        assert set(term_variables(call)) == {Var("x"), Var("y")}

    def test_parameters_of_call(self):
        call = ServiceCall("f", (Param("p"), Var("x")))
        assert set(term_parameters(call)) == {Param("p")}

    def test_values_of_call(self):
        call = ServiceCall("f", ("a", Var("x"), 3))
        assert set(term_values(call)) == {"a", 3}

    def test_values_of_plain_value(self):
        assert list(term_values("a")) == ["a"]

    def test_service_calls_outermost_first(self):
        call = ServiceCall("f", ("a",))
        assert list(term_service_calls(call)) == [call]
        assert list(term_service_calls("a")) == []
