"""The consolidated environment kill switches (:mod:`repro.env`).

Pins the parsing contract the consuming modules rely on: a switch is on
exactly when its variable is a non-empty string (the value is never
interpreted — ``"0"`` counts as on), and every helper re-reads
``os.environ`` on each call so tests can flip switches between two builds
without reloading modules.
"""

from __future__ import annotations

import pytest

from repro import env

FLAG_HELPERS = [
    ("REPRO_NO_KERNEL", env.kernel_disabled),
    ("REPRO_NO_VECTOR", env.vector_disabled),
    ("REPRO_NO_NUMPY", env.numpy_hidden),
    ("REPRO_NO_BATCH", env.batch_disabled),
    ("REPRO_NO_SYMMETRY", env.symmetry_disabled),
    ("REPRO_NO_WITNESS", env.witness_disabled),
    ("REPRO_NO_SPILL", env.spill_disabled),
]


@pytest.mark.parametrize("variable,helper", FLAG_HELPERS,
                         ids=[name for name, _ in FLAG_HELPERS])
class TestFlagParsing:
    def test_unset_is_off(self, variable, helper, monkeypatch):
        monkeypatch.delenv(variable, raising=False)
        assert helper() is False

    def test_empty_is_off(self, variable, helper, monkeypatch):
        monkeypatch.setenv(variable, "")
        assert helper() is False

    @pytest.mark.parametrize("value", ["1", "0", "yes", "off", " "])
    def test_any_nonempty_value_is_on(self, variable, helper, monkeypatch,
                                      value):
        # The value is never interpreted: "0" and "off" still switch on.
        monkeypatch.setenv(variable, value)
        assert helper() is True

    def test_read_per_call(self, variable, helper, monkeypatch):
        # No import-time caching: the same helper observes a flip.
        monkeypatch.delenv(variable, raising=False)
        assert helper() is False
        monkeypatch.setenv(variable, "1")
        assert helper() is True
        monkeypatch.delenv(variable)
        assert helper() is False


class TestFaultsSpec:
    def test_unset_is_empty(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert env.faults_spec() == ""

    def test_value_passes_through_unvalidated(self, monkeypatch):
        # Validation belongs to FaultPlan.parse, not the env reader.
        monkeypatch.setenv("REPRO_FAULTS", "kill:0@2,seed:7")
        assert env.faults_spec() == "kill:0@2,seed:7"
        monkeypatch.setenv("REPRO_FAULTS", "not a spec")
        assert env.faults_spec() == "not a spec"

    def test_read_per_call(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert env.faults_spec() == ""
        monkeypatch.setenv("REPRO_FAULTS", "oom:*@1")
        assert env.faults_spec() == "oom:*@1"


class TestMemoryBudgetDefault:
    def test_unset_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_MEMORY_BUDGET", raising=False)
        assert env.memory_budget_default() is None

    def test_empty_is_none(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "")
        assert env.memory_budget_default() is None

    def test_plain_bytes(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "1048576")
        assert env.memory_budget_default() == 1 << 20

    @pytest.mark.parametrize("raw,expected", [
        ("64k", 64 << 10), ("64K", 64 << 10),
        ("8m", 8 << 20), ("2G", 2 << 30),
    ])
    def test_binary_suffixes(self, monkeypatch, raw, expected):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", raw)
        assert env.memory_budget_default() == expected

    def test_garbage_raises(self, monkeypatch):
        # Unlike the boolean switches the value is interpreted; a typo
        # must not silently run unbounded.
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "lots")
        with pytest.raises(ValueError):
            env.memory_budget_default()

    def test_read_per_call(self, monkeypatch):
        monkeypatch.delenv("REPRO_MEMORY_BUDGET", raising=False)
        assert env.memory_budget_default() is None
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "4m")
        assert env.memory_budget_default() == 4 << 20


class TestSymmetryDefault:
    def test_unset_is_exact(self, monkeypatch):
        monkeypatch.delenv("REPRO_SYMMETRY", raising=False)
        assert env.symmetry_default() == "exact"

    def test_empty_is_exact(self, monkeypatch):
        monkeypatch.setenv("REPRO_SYMMETRY", "")
        assert env.symmetry_default() == "exact"

    def test_value_passes_through_unvalidated(self, monkeypatch):
        # Validation belongs to resolve_symmetry, not the env reader.
        monkeypatch.setenv("REPRO_SYMMETRY", "quotient")
        assert env.symmetry_default() == "quotient"
        monkeypatch.setenv("REPRO_SYMMETRY", "bogus")
        assert env.symmetry_default() == "bogus"
