"""Turing machines and the Theorem 4.1 encoding."""

import pytest

from repro.errors import ReproError
from repro.mucalc import check, extension, parse_mu
from repro.semantics import DeterministicOracle, explore_concrete, simulate
from repro.tm import (
    BLANK, TuringMachine, binary_flipper_machine, decode_configuration,
    encode, has_halted, looper_machine, right_runner_machine,
    safety_property_not_halted, unary_increment_machine)


class TestMachineSimulator:
    def test_flipper(self):
        tm = binary_flipper_machine()
        trace = tm.run("0110")
        assert trace[-1].state == "done"
        assert "".join(trace[-1].trimmed_tape()[1:]) == "1001"

    def test_increment(self):
        tm = unary_increment_machine()
        trace = tm.run("111")
        assert "".join(trace[-1].trimmed_tape()[1:]) == "1111"

    def test_halts_decided(self):
        assert binary_flipper_machine().halts("01") is True
        assert looper_machine().halts("", max_steps=50) is None

    def test_stuck_counts_as_halting(self):
        tm = TuringMachine.of(
            transitions={("s", BLANK): ("t", "1", "S")},
            initial_state="s", halting_states=("h",))
        assert tm.halts("") is True  # state t has no transitions

    def test_validation(self):
        with pytest.raises(ReproError):
            TuringMachine.of(transitions={("s", "$"): ("s", "1", "S")},
                             initial_state="s", halting_states=())
        with pytest.raises(ReproError):
            TuringMachine.of(transitions={("s", "$"): ("s", "$", "L")},
                             initial_state="s", halting_states=())

    def test_bad_input_symbol(self):
        with pytest.raises(ReproError):
            binary_flipper_machine().run("xyz")

    def test_configuration_rendering(self):
        tm = binary_flipper_machine()
        assert tm.initial_configuration("01").rendered() == "flip: $[0]1"


class TestEncoding:
    @pytest.mark.parametrize("machine_factory,word", [
        (binary_flipper_machine, "0110"),
        (binary_flipper_machine, ""),
        (unary_increment_machine, "11"),
    ])
    def test_run_correspondence(self, machine_factory, word):
        """The DCDS run reproduces the machine run configuration for
        configuration (Theorem 4.1's one-to-one correspondence)."""
        tm = machine_factory()
        direct = tm.run(word, max_steps=60)
        dcds = encode(tm, word)
        trace = simulate(dcds, steps=len(direct) - 1,
                         oracle=DeterministicOracle())
        assert len(trace) == len(direct)
        for expected, (instance, _) in zip(direct, trace):
            decoded = decode_configuration(instance)
            assert decoded is not None
            assert decoded.state == expected.state
            assert decoded.head == expected.head
            assert decoded.trimmed_tape() == expected.trimmed_tape()

    def test_halting_flag_raised(self):
        tm = binary_flipper_machine()
        dcds = encode(tm, "01")
        trace = simulate(dcds, steps=10, oracle=DeterministicOracle())
        assert has_halted(trace[-1][0])
        assert not has_halted(trace[0][0])

    def test_looper_never_halts(self):
        dcds = encode(looper_machine(), "")
        trace = simulate(dcds, steps=12, oracle=DeterministicOracle())
        assert len(trace) == 13
        assert not any(has_halted(instance) for instance, _ in trace)

    def test_right_runner_grows_tape(self):
        dcds = encode(right_runner_machine(), "")
        trace = simulate(dcds, steps=6, oracle=DeterministicOracle())
        sizes = [len(instance.active_domain()) for instance, _ in trace]
        assert sizes[-1] > sizes[0]  # run-unbounded growth (Thm 4.6)

    def test_halted_state_is_fixpoint(self):
        tm = binary_flipper_machine()
        dcds = encode(tm, "0")
        trace = simulate(dcds, steps=8, oracle=DeterministicOracle())
        assert trace[-1][0] == trace[-2][0]

    def test_key_constraint_on_right(self):
        tm = binary_flipper_machine()
        dcds = encode(tm, "0")
        # One FD: second component of right determines the first.
        assert len(dcds.data.constraints) == 1


class TestSafetyProperty:
    def test_g_not_halted_on_explored_prefix(self):
        """G ~halted fails for a halting machine, holds for the looper
        (over a sufficiently deep finite exploration)."""
        halting = encode(binary_flipper_machine(), "0")
        # The encoding is deterministic with fresh cells; a singleton pool
        # large enough for the bounded run suffices for exploration.
        from repro.relational.values import Fresh

        pool = [Fresh(100 + i) for i in range(4)]
        ts = explore_concrete(halting, pool, depth=8, max_states=4000)
        assert not check(ts, safety_property_not_halted())

        looper = encode(looper_machine(), "")
        ts2 = explore_concrete(looper, pool, depth=8, max_states=4000)
        assert check(ts2, safety_property_not_halted())
