"""Witness and counterexample extraction."""

import pytest

from repro.gallery import example_41, student_registry
from repro.mucalc import parse_mu
from repro.mucalc.diagnostics import (
    counterexample, render_trace, shortest_path_to, witness)
from repro.semantics import build_det_abstraction, rcycl


class TestWitness:
    def test_reachability_witness(self, ex41_abstraction):
        trace = witness(ex41_abstraction, parse_mu("R('a')"))
        assert trace is not None
        assert len(trace) == 2  # initial -> first R(a) state
        final_db = trace[-1][1]
        assert final_db.tuples("R")

    def test_initial_state_witness_is_trivial(self, ex41_abstraction):
        trace = witness(ex41_abstraction, parse_mu("P('a')"))
        assert trace is not None
        assert len(trace) == 1

    def test_unreachable_goal(self, ex41_abstraction):
        trace = witness(ex41_abstraction, parse_mu("R('zzz')"))
        assert trace is None

    def test_graduation_witness(self, students_rcycl):
        trace = witness(students_rcycl,
                        parse_mu("E x, y. live(x) & live(y) & Grad(x, y)"))
        assert trace is not None
        # idle -> enrolled -> graduated: three states.
        assert len(trace) == 3
        labels = [label for _, _, label in trace]
        assert labels[1] == "enroll"
        assert labels[2] == "graduate"


class TestCounterexample:
    def test_violated_invariant(self, ex41_abstraction):
        # "Q(a, a) always holds" is violated two steps in.
        trace = counterexample(ex41_abstraction, parse_mu("Q('a', 'a')"))
        assert trace is not None
        final_db = trace[-1][1]
        assert ("a", "a") not in final_db.tuples("Q")

    def test_true_invariant_has_no_counterexample(self, ex41_abstraction):
        trace = counterexample(ex41_abstraction, parse_mu("P('a')"))
        assert trace is None

    def test_students_safety_counterexample_free(self, students_rcycl):
        trace = counterexample(
            students_rcycl,
            parse_mu("~(Status('idle') & (E x. live(x) & Stud(x)))"))
        assert trace is None


class TestRendering:
    def test_render_contains_labels(self, students_rcycl):
        trace = witness(students_rcycl,
                        parse_mu("E x, y. live(x) & live(y) & Grad(x, y)"))
        text = render_trace(trace)
        assert "--[enroll]-->" in text
        assert "Grad" in text

    def test_render_empty(self):
        assert render_trace([]) == "(empty trace)"

    def test_shortest_path_none_for_empty_targets(self, ex41_abstraction):
        assert shortest_path_to(ex41_abstraction, frozenset()) is None
