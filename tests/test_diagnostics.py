"""Witness and counterexample extraction."""

import pytest

from repro.gallery import example_41, student_registry
from repro.mucalc import parse_mu
from repro.mucalc.diagnostics import (
    counterexample, render_trace, shortest_path_to, witness)
from repro.semantics import build_det_abstraction, rcycl


class TestWitness:
    def test_reachability_witness(self, ex41_abstraction):
        trace = witness(ex41_abstraction, parse_mu("R('a')"))
        assert trace is not None
        assert len(trace) == 2  # initial -> first R(a) state
        final_db = trace[-1][1]
        assert final_db.tuples("R")

    def test_initial_state_witness_is_trivial(self, ex41_abstraction):
        trace = witness(ex41_abstraction, parse_mu("P('a')"))
        assert trace is not None
        assert len(trace) == 1

    def test_unreachable_goal(self, ex41_abstraction):
        trace = witness(ex41_abstraction, parse_mu("R('zzz')"))
        assert trace is None

    def test_graduation_witness(self, students_rcycl):
        trace = witness(students_rcycl,
                        parse_mu("E x, y. live(x) & live(y) & Grad(x, y)"))
        assert trace is not None
        # idle -> enrolled -> graduated: three states.
        assert len(trace) == 3
        labels = [label for _, _, label in trace]
        assert labels[1] == "enroll"
        assert labels[2] == "graduate"


class TestCounterexample:
    def test_violated_invariant(self, ex41_abstraction):
        # "Q(a, a) always holds" is violated two steps in.
        trace = counterexample(ex41_abstraction, parse_mu("Q('a', 'a')"))
        assert trace is not None
        final_db = trace[-1][1]
        assert ("a", "a") not in final_db.tuples("Q")

    def test_true_invariant_has_no_counterexample(self, ex41_abstraction):
        trace = counterexample(ex41_abstraction, parse_mu("P('a')"))
        assert trace is None

    def test_students_safety_counterexample_free(self, students_rcycl):
        trace = counterexample(
            students_rcycl,
            parse_mu("~(Status('idle') & (E x. live(x) & Stud(x)))"))
        assert trace is None


class TestRendering:
    def test_render_contains_labels(self, students_rcycl):
        trace = witness(students_rcycl,
                        parse_mu("E x, y. live(x) & live(y) & Grad(x, y)"))
        text = render_trace(trace)
        assert "--[enroll]-->" in text
        assert "Grad" in text

    def test_render_empty(self):
        assert render_trace([]) == "(empty trace)"

    def test_shortest_path_none_for_empty_targets(self, ex41_abstraction):
        assert shortest_path_to(ex41_abstraction, frozenset()) is None


class TestFixpointDestructuring:
    """The diagnostics accept the full fixpoint encodings and recover the
    state property through the ctl destructurers."""

    def test_witness_accepts_full_ef_encoding(self, ex41_abstraction):
        plain = witness(ex41_abstraction, parse_mu("R('a')"))
        encoded = witness(ex41_abstraction,
                          parse_mu("mu Z. (R('a') | <-> Z)"))
        assert encoded == plain

    def test_counterexample_accepts_full_ag_encoding(self, ex41_abstraction):
        plain = counterexample(ex41_abstraction, parse_mu("Q('a', 'a')"))
        encoded = counterexample(ex41_abstraction,
                                 parse_mu("nu Z. (Q('a', 'a') & [-] Z)"))
        assert encoded == plain

    def test_malformed_encoding_is_taken_literally(self, ex41_abstraction):
        # A Nu without the box self-loop is not an AG encoding; the
        # formula is then evaluated as-is (here: equivalent to its body).
        trace = counterexample(ex41_abstraction,
                               parse_mu("nu Z. Q('a', 'a')"))
        assert trace is not None
        assert trace == counterexample(ex41_abstraction,
                                       parse_mu("Q('a', 'a')"))

    def test_explicit_checker_is_reused(self, ex41_abstraction):
        from repro.mucalc.checker import ModelChecker
        checker = ModelChecker(ex41_abstraction)
        trace = witness(ex41_abstraction, parse_mu("R('a')"),
                        checker=checker)
        assert trace is not None


class TestShortestPath:
    def test_path_is_shortest(self, ex41_abstraction):
        ts = ex41_abstraction
        # BFS depth levels give the exact distance of each state.
        for depth, level in enumerate(ts.depth_levels()[:3]):
            for target in level:
                trace = shortest_path_to(ts, frozenset([target]))
                assert trace is not None
                assert len(trace) == depth + 1

    def test_initial_in_targets_is_trivial(self, ex41_abstraction):
        ts = ex41_abstraction
        trace = shortest_path_to(ts, frozenset([ts.initial]))
        assert trace == [(ts.initial, ts.db(ts.initial), None)]

    def test_unreachable_targets_give_none(self, ex41_abstraction):
        ts = ex41_abstraction
        trace = shortest_path_to(ts, frozenset(["not-a-state"]))
        assert trace is None


class TestCertificateInterop:
    """Certificates speak the diagnostics trace dialect."""

    def test_witness_certificate_trace_renders(self, ex41_abstraction):
        from repro.mucalc.checker import ModelChecker
        from repro.mucalc.witness import extract
        ts = ex41_abstraction
        formula = parse_mu("mu Z. (R('a') | <-> Z)")
        holds = ModelChecker(ts).models(formula)
        outcome = extract(ts, formula, holds)
        assert outcome.certificate is not None
        trace = outcome.certificate.trace(ts)
        assert [state for state, _, _ in trace] \
            == list(outcome.certificate.states)
        text = render_trace(trace)
        assert "-->" in text

    def test_certificate_agrees_with_diagnostics_length(
            self, ex41_abstraction):
        from repro.mucalc.checker import ModelChecker
        from repro.mucalc.witness import extract
        ts = ex41_abstraction
        formula = parse_mu("mu Z. (R('a') | <-> Z)")
        outcome = extract(ts, formula, ModelChecker(ts).models(formula))
        diagnostic = witness(ts, parse_mu("R('a')"))
        # Both are shortest runs to an R('a') state.
        assert len(outcome.certificate.steps) == len(diagnostic)
