"""Equality-commitment enumeration (the abstraction branching primitive)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.relational.values import Fresh, ServiceCall
from repro.semantics.commitments import (
    count_commitments, enumerate_commitments)


def calls(n):
    return [ServiceCall("f", (f"a{i}",)) for i in range(n)]


class TestEnumeration:
    def test_no_calls(self):
        assert list(enumerate_commitments([], ["a"])) == [{}]

    def test_single_call_against_one_known(self):
        result = list(enumerate_commitments(calls(1), ["a"]))
        values = [c[calls(1)[0]] for c in result]
        # Either the known value or one fresh representative.
        assert "a" in values
        assert any(isinstance(v, Fresh) for v in values)
        assert len(result) == 2

    def test_two_calls_zero_known(self):
        [c1, c2] = calls(2)
        result = list(enumerate_commitments([c1, c2], []))
        shapes = {(commitment[c1] == commitment[c2]) for commitment in result}
        assert shapes == {True, False}
        assert len(result) == 2  # together-fresh, separate-fresh

    def test_example_41_shape(self):
        # Two fresh calls against one known value: the five successors of
        # Figure 3(b).
        [c1, c2] = calls(2)
        result = list(enumerate_commitments([c1, c2], ["a"]))
        assert len(result) == 5
        rendered = {(repr(c[c1]), repr(c[c2])) for c in result}
        assert ("'a'", "'a'") in rendered      # both equal the known value
        assert ("#0", "#0") in rendered        # equal, fresh
        assert ("#0", "#1") in rendered        # distinct fresh

    def test_known_values_used_injectively(self):
        [c1, c2] = calls(2)
        for commitment in enumerate_commitments([c1, c2], ["a", "b"]):
            if commitment[c1] == "a" and commitment[c2] == "a":
                # Same known value means same cell, which is the partition
                # {c1, c2} -> a; it must appear exactly once overall.
                pass
        both_a = [c for c in enumerate_commitments([c1, c2], ["a", "b"])
                  if c[c1] == "a" and c[c2] == "a"]
        assert len(both_a) == 1

    def test_fresh_values_avoid_used(self):
        [c1] = calls(1)
        result = list(enumerate_commitments([c1], [Fresh(0)],
                                            used_values=[Fresh(1)]))
        fresh_values = [c[c1] for c in result
                        if isinstance(c[c1], Fresh) and c[c1] != Fresh(0)]
        assert fresh_values == [Fresh(2)]

    def test_duplicate_calls_collapse(self):
        [c1] = calls(1)
        result = list(enumerate_commitments([c1, c1], ["a"]))
        assert len(result) == 2

    def test_deterministic_order(self):
        first = list(enumerate_commitments(calls(3), ["a", "b"]))
        second = list(enumerate_commitments(calls(3), ["a", "b"]))
        assert first == second


class TestCounting:
    @pytest.mark.parametrize("n_calls,n_known", [
        (0, 0), (0, 3), (1, 0), (1, 1), (2, 0), (2, 1), (2, 2),
        (3, 0), (3, 1), (3, 2), (4, 2),
    ])
    def test_count_matches_enumeration(self, n_calls, n_known):
        known = [f"k{i}" for i in range(n_known)]
        enumerated = list(enumerate_commitments(calls(n_calls), known))
        assert len(enumerated) == count_commitments(n_calls, n_known)

    def test_counts_grow_fast(self):
        # The §6 complexity discussion: branching is exponential in calls.
        values = [count_commitments(n, 2) for n in range(1, 6)]
        assert all(later > 2 * earlier
                   for earlier, later in zip(values, values[1:]))


@given(st.integers(min_value=0, max_value=4),
       st.integers(min_value=0, max_value=3))
@settings(max_examples=25, deadline=None)
def test_commitments_are_distinct_and_complete(n_calls, n_known):
    known = [f"k{i}" for i in range(n_known)]
    call_list = calls(n_calls)
    seen = set()
    for commitment in enumerate_commitments(call_list, known):
        # Each commitment is a total evaluation of the calls.
        assert set(commitment) == set(call_list)
        key = tuple(repr(commitment[c]) for c in call_list)
        assert key not in seen, "duplicate commitment"
        seen.add(key)
        # Fresh representatives never collide with known values.
        for value in commitment.values():
            if isinstance(value, Fresh):
                assert value not in known
