"""Concrete executions: oracles, simulate(), finite-pool exploration."""

import pytest

from repro.core import ServiceSemantics
from repro.gallery import example_41, example_42, example_43
from repro.relational import ServiceCall
from repro.relational.values import Fresh
from repro.semantics import (
    DeterministicOracle, NondeterministicOracle, explore_concrete, simulate)


class TestOracles:
    def test_deterministic_oracle_memoizes(self):
        oracle = DeterministicOracle()
        call = ServiceCall("f", ("a",))
        assert oracle(call) == oracle(call)
        other = ServiceCall("f", ("b",))
        assert oracle(call) != oracle(other)

    def test_deterministic_oracle_universe(self):
        oracle = DeterministicOracle(universe=["u", "v"], seed=1)
        call = ServiceCall("f", ("a",))
        assert oracle(call) in ("u", "v")
        assert oracle(call) == oracle(call)

    def test_nondeterministic_oracle_reproducible(self):
        first = NondeterministicOracle(seed=7)
        second = NondeterministicOracle(seed=7)
        calls = [ServiceCall("f", (i,)) for i in range(10)]
        assert [first(c) for c in calls] == [second(c) for c in calls]

    def test_nondeterministic_oracle_can_repeat(self):
        oracle = NondeterministicOracle(seed=3, fresh_bias=0.1)
        values = [oracle(ServiceCall("f", ("a",))) for _ in range(20)]
        assert len(set(values)) < 20  # recycling happened


class TestSimulate:
    def test_trace_starts_at_initial(self, ex41):
        trace = simulate(ex41, steps=3, oracle=DeterministicOracle())
        assert trace[0][0] == ex41.initial
        assert trace[0][1] is None
        assert len(trace) == 4

    def test_deterministic_services_stabilize(self, ex41):
        # With memoized f(a), g(a) the run reaches a fixpoint after step 2.
        trace = simulate(ex41, steps=5, oracle=DeterministicOracle())
        assert trace[-1][0] == trace[-2][0]

    def test_constraints_respected(self, ex42):
        # f(a) must equal a; a fresh-only oracle violates the constraint,
        # so the run stops at the initial state.
        trace = simulate(ex42, steps=3, oracle=DeterministicOracle())
        assert len(trace) == 1

    def test_constraint_satisfying_oracle(self, ex42):
        class PinnedOracle:
            def __call__(self, call):
                return "a" if call.function == "f" else Fresh(99)

        trace = simulate(ex42, steps=3, oracle=PinnedOracle())
        assert len(trace) == 4

    def test_chooser_controls_branching(self, students):
        # From 'enrolled' both study and graduate are enabled; the chooser
        # picks graduate (index sorted by enabled_moves order).
        def chooser(moves):
            names = [action.name for action, _ in moves]
            if "graduate" in names:
                return names.index("graduate")
            return 0

        trace = simulate(students, steps=2,
                         oracle=NondeterministicOracle(seed=0),
                         chooser=chooser)
        final = trace[-1][0]
        assert final.tuples("Grad")


class TestExploreConcrete:
    def test_det_pool_exploration_matches_semantics(self, ex41):
        pool = ["a", Fresh(30), Fresh(31)]
        ts = explore_concrete(ex41, pool, depth=2)
        # Level 1: all consistent (f(a), g(a)) pool evaluations = 9 states.
        assert len(ts.depth_levels()[1]) == 9
        assert ts.truncated_states  # frontier marked

    def test_det_call_map_consistency(self, ex41):
        pool = ["a", Fresh(30)]
        ts = explore_concrete(ex41, pool, depth=3)
        for state in ts.states:
            seen = {}
            for call, value in state.call_map:
                assert seen.setdefault(call, value) == value

    def test_nondet_exploration(self, ex43_nondet):
        pool = ["a", Fresh(40)]
        ts = explore_concrete(ex43_nondet, pool, depth=3)
        # Nondeterministic: states are bare instances.
        assert all(ts.db(state) == state for state in ts.states)
        assert len(ts) > 2

    def test_constraints_filter_pool_evaluations(self, ex42):
        pool = ["a", Fresh(30), Fresh(31)]
        ts = explore_concrete(ex42, pool, depth=2)
        # f(a) pinned to a: only 3 level-1 states (choices of g(a)).
        assert len(ts.depth_levels()[1]) == 3

    def test_fuse(self, ex52):
        from repro.errors import AbstractionDiverged

        # Example 5.2 accumulates Q facts: the pool-restricted state space
        # has 2^|pool| Q-subsets, exceeding a tiny fuse.
        with pytest.raises(AbstractionDiverged):
            explore_concrete(ex52, ["a", Fresh(1), Fresh(2)],
                             depth=50, max_states=4)
