"""Seeded property-based differential harness: parallel vs sequential.

For a sweep of ``random_dcds`` seeds across all three acyclicity shapes and
both service semantics, the :class:`ParallelExplorer` (workers 1, 2, and
``REPRO_WORKERS``, default 4) must produce a transition system bit-identical
to the sequential :class:`Explorer` — identical interned state sets,
identical dbs, identical edge multisets, identical truncation flags, and
identical growth traces — and ``verify()`` must answer identically
end-to-end with and without ``workers=``.

Every case is reproducible from its id alone (seed, shape, semantics). A
fast subset always runs; the heavy tail is marked ``slow_differential``
(skippable locally via ``--skip-slow-differential``, always run in CI,
where a dedicated job step additionally re-runs the file with
``REPRO_WORKERS=4``).
"""

from __future__ import annotations

import contextlib
import os
from collections import Counter

import pytest

from repro.core import ServiceSemantics
from repro.core.execution import clear_subproblem_caches
from repro.engine import (
    DetAbstractionGenerator, Explorer, ParallelExplorer, PoolNondetGenerator,
    SymmetryReducer, resolve_symmetry)
from repro.errors import UndecidableFragment, VerificationError
from repro.mucalc.parser import parse_mu
from repro.pipeline import verify
from repro.relational.values import Fresh
from repro.workloads import random_dcds

MAX_WORKERS = max(1, int(os.environ.get("REPRO_WORKERS", "4")))
WORKER_COUNTS = tuple(sorted({1, 2, MAX_WORKERS}))
#: CI re-runs this file with REPRO_SYMMETRY=quotient: the deterministic
#: cases then explore quotient-by-construction on both the sequential and
#: the parallel side, pinning the symmetry-reduced builds bit-identical at
#: every worker count too (pool-nondet states admit no sound quotient and
#: stay exact — see repro.engine.symmetry).
SYMMETRY = resolve_symmetry(None)
SHAPES = ("weakly-acyclic", "gr-acyclic", "free")
SEMANTICS = (ServiceSemantics.DETERMINISTIC,
             ServiceSemantics.NONDETERMINISTIC)

# 2 fast + 5 slow seeds x 3 shapes x 2 semantics = 42 differential cases.
FAST_SEEDS = (0, 1)
SLOW_SEEDS = (2, 3, 4, 5, 6)

# Bounds keeping every random case finite (free-shape DCDSs may be
# run-unbounded; truncate gracefully and compare the truncated prefixes).
MAX_STATES = 3000
MAX_DEPTH = 3
POOL = ("c0", "c1", Fresh(90))


def case_params(seeds):
    return [
        pytest.param(seed, shape, semantics,
                     id=f"seed{seed}-{shape}-{semantics.value}")
        for seed in seeds
        for shape in SHAPES
        for semantics in SEMANTICS
    ]


def explorer_config(dcds):
    """The (generator factory, explorer kwargs) pair for one DCDS.

    Deterministic services exercise the Thm 4.3 abstraction (equality
    commitments); nondeterministic ones exercise the finite-pool concrete
    semantics — RCYCL is sequential by design (order-dependent used-value
    pool) and is therefore *not* a differential target.
    """
    if dcds.semantics is ServiceSemantics.DETERMINISTIC:
        def factory():
            generator = DetAbstractionGenerator(dcds)
            if SYMMETRY == "quotient":
                generator = SymmetryReducer(generator)
            return generator
        return (factory,
                dict(max_states=MAX_STATES, max_depth=MAX_DEPTH,
                     on_budget="truncate"))
    return (lambda: PoolNondetGenerator(dcds, list(POOL)),
            dict(max_states=MAX_STATES, max_depth=MAX_DEPTH,
                 on_budget="truncate"))


def assert_isomorphic_builds(sequential, parallel):
    """Bit-identical: states, dbs, edge multiset, truncation, stats."""
    assert sequential.initial == parallel.initial
    assert sequential.states == parallel.states
    # Edge multiset: labeled edges with multiplicity.
    sequential_edges = Counter(
        (source, label, target)
        for source, label, target in sequential.edges())
    parallel_edges = Counter(
        (source, label, target)
        for source, label, target in parallel.edges())
    assert sequential_edges == parallel_edges
    assert sequential.truncated_states == parallel.truncated_states
    for state in sequential.states:
        assert sequential.db(state) == parallel.db(state)
    for key in ("growth_trace", "expansions", "frontier_peak", "diverged",
                "explored_states", "explored_edges"):
        assert sequential.exploration_stats[key] \
            == parallel.exploration_stats[key], key


@contextlib.contextmanager
def forced_env(name, value):
    """Set (or, with ``value=None``, unset) a variable for the block."""
    saved = os.environ.get(name)
    try:
        if value is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = value
        yield
    finally:
        if saved is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = saved


def run_differential_case(seed, shape, semantics):
    dcds = random_dcds(seed, shape=shape, semantics=semantics)
    generator_factory, config = explorer_config(dcds)
    sequential = Explorer(dcds.schema, **config).run(
        generator_factory()).transition_system
    for workers in WORKER_COUNTS:
        parallel = ParallelExplorer(
            dcds.schema, workers=workers, batch_size=4, **config,
        ).run(generator_factory()).transition_system
        assert_isomorphic_builds(sequential, parallel)
    # Frontier-batch mirror: the batched driver (REPRO_NO_BATCH unset)
    # and the per-state driver (REPRO_NO_BATCH=1) must produce
    # bit-identical builds — states, dbs, edge multisets, truncation
    # flags, growth traces. Successor memos are keyed by spec signature
    # and survive rebuilds, so each side starts from cleared caches;
    # otherwise the second build would replay the first one's warmed
    # memos instead of exercising its own grounding tier.
    batch_builds = {}
    for forced in (None, "1"):
        with forced_env("REPRO_NO_BATCH", forced):
            clear_subproblem_caches()
            batch_builds[forced] = Explorer(dcds.schema, **config).run(
                generator_factory()).transition_system
    clear_subproblem_caches()
    assert_isomorphic_builds(batch_builds[None], batch_builds["1"])
    assert_isomorphic_builds(sequential, batch_builds["1"])
    return sequential


class TestDifferentialFast:
    @pytest.mark.parametrize("seed,shape,semantics", case_params(FAST_SEEDS))
    def test_parallel_matches_sequential(self, seed, shape, semantics):
        run_differential_case(seed, shape, semantics)


@pytest.mark.slow_differential
class TestDifferentialSweep:
    @pytest.mark.parametrize("seed,shape,semantics", case_params(SLOW_SEEDS))
    def test_parallel_matches_sequential(self, seed, shape, semantics):
        run_differential_case(seed, shape, semantics)


# ---------------------------------------------------------------------------
# verify() end-to-end agreement
# ---------------------------------------------------------------------------

def reachability_formula(dcds):
    """``EF (R0 nonempty)`` with LIVE-guarded quantifiers (µLP)."""
    arity = dcds.schema.arity("R0")
    variables = [f"x{i}" for i in range(arity)]
    guards = " & ".join(f"live({v})" for v in variables)
    quantifiers = " ".join(f"E {v}." for v in variables)
    return parse_mu(
        f"mu Z. (({quantifiers} {guards} & R0({', '.join(variables)}))"
        f" | <-> Z)")


def assert_verify_agrees(seed, shape, semantics):
    dcds = random_dcds(seed, shape=shape, semantics=semantics)
    formula = reachability_formula(dcds)
    try:
        baseline = verify(dcds, formula, max_states=MAX_STATES)
    except (UndecidableFragment, VerificationError) as failed:
        # The static precondition (or, under REPRO_SYMMETRY=quotient, the
        # µLP adequacy gate) failed — it must fail identically sharded.
        with pytest.raises(type(failed)):
            verify(dcds, formula, max_states=MAX_STATES,
                   workers=MAX_WORKERS)
        return
    sharded = verify(dcds, formula, max_states=MAX_STATES,
                     workers=MAX_WORKERS)
    assert sharded.holds == baseline.holds
    assert sharded.route == baseline.route
    assert sharded.abstraction_stats["states"] \
        == baseline.abstraction_stats["states"]
    assert sharded.abstraction_stats["edges"] \
        == baseline.abstraction_stats["edges"]


class TestVerifyAgreementFast:
    @pytest.mark.parametrize("seed", FAST_SEEDS)
    def test_det_weakly_acyclic(self, seed):
        assert_verify_agrees(seed, "weakly-acyclic",
                             ServiceSemantics.DETERMINISTIC)

    def test_nondet_route_accepts_workers(self):
        """RCYCL stays sequential; workers= must be a no-op there."""
        assert_verify_agrees(0, "gr-acyclic",
                             ServiceSemantics.NONDETERMINISTIC)


@pytest.mark.slow_differential
class TestVerifyAgreementSweep:
    @pytest.mark.parametrize("seed", SLOW_SEEDS)
    def test_det_weakly_acyclic(self, seed):
        assert_verify_agrees(seed, "weakly-acyclic",
                             ServiceSemantics.DETERMINISTIC)

    @pytest.mark.parametrize("seed", SLOW_SEEDS[:2])
    def test_nondet_gr_acyclic(self, seed):
        assert_verify_agrees(seed, "gr-acyclic",
                             ServiceSemantics.NONDETERMINISTIC)
