"""Seeded property-based differential harness: parallel vs sequential.

For a sweep of ``random_dcds`` seeds across all three acyclicity shapes and
both service semantics, the :class:`ParallelExplorer` (workers 1, 2, and
``REPRO_WORKERS``, default 4) must produce a transition system bit-identical
to the sequential :class:`Explorer` — identical interned state sets,
identical dbs, identical edge multisets, identical truncation flags, and
identical growth traces — and ``verify()`` must answer identically
end-to-end with and without ``workers=``.

Certificates ride the same harness: both sides of every differential
pair must emit witness/violation certificates that the independent
replay-checker (:mod:`repro.mucalc.certify`) accepts, the certificates
must be bit-identical across sides, and verdict + certificate must agree
with the uncompiled reference evaluator (``compiled=False``).

Every case is reproducible from its id alone (seed, shape, semantics). A
fast subset always runs; the heavy tail is marked ``slow_differential``
(skippable locally via ``--skip-slow-differential``, always run in CI,
where a dedicated job step additionally re-runs the file with
``REPRO_WORKERS=4``).
"""

from __future__ import annotations

import contextlib
import os
from collections import Counter

import pytest

from repro import env
from repro.core import ServiceSemantics
from repro.core.execution import clear_subproblem_caches
from repro.engine import (
    Checkpoint, CheckpointInterrupted, DetAbstractionGenerator, Explorer,
    ParallelExplorer, PoolNondetGenerator, SymmetryReducer,
    resolve_symmetry)
from repro.relational.kernel import kernel_for
from repro.errors import UndecidableFragment, VerificationError
from repro.mucalc.certify import replay
from repro.mucalc.checker import ModelChecker
from repro.mucalc.parser import parse_mu
from repro.mucalc.witness import extract
from repro.pipeline import verify
from repro.relational.values import Fresh
from repro.workloads import random_dcds

MAX_WORKERS = max(1, int(os.environ.get("REPRO_WORKERS", "4")))
WORKER_COUNTS = tuple(sorted({1, 2, MAX_WORKERS}))
#: CI re-runs this file with REPRO_SYMMETRY=quotient: the deterministic
#: cases then explore quotient-by-construction on both the sequential and
#: the parallel side, pinning the symmetry-reduced builds bit-identical at
#: every worker count too (pool-nondet states admit no sound quotient and
#: stay exact — see repro.engine.symmetry).
SYMMETRY = resolve_symmetry(None)
SHAPES = ("weakly-acyclic", "gr-acyclic", "free")
SEMANTICS = (ServiceSemantics.DETERMINISTIC,
             ServiceSemantics.NONDETERMINISTIC)

# 2 fast + 5 slow seeds x 3 shapes x 2 semantics = 42 differential cases.
FAST_SEEDS = (0, 1)
SLOW_SEEDS = (2, 3, 4, 5, 6)

# Bounds keeping every random case finite (free-shape DCDSs may be
# run-unbounded; truncate gracefully and compare the truncated prefixes).
MAX_STATES = 3000
MAX_DEPTH = 3
POOL = ("c0", "c1", Fresh(90))

#: Tight storage-layer budget for the out-of-core mirror: small enough
#: that every differential case actually spills/evicts, large enough to
#: terminate quickly. Store mode is bit-identical *by construction*; this
#: sweep is what pins it.
TIGHT_BUDGET = 128 * 1024


def case_params(seeds):
    return [
        pytest.param(seed, shape, semantics,
                     id=f"seed{seed}-{shape}-{semantics.value}")
        for seed in seeds
        for shape in SHAPES
        for semantics in SEMANTICS
    ]


def explorer_config(dcds):
    """The (generator factory, explorer kwargs) pair for one DCDS.

    Deterministic services exercise the Thm 4.3 abstraction (equality
    commitments); nondeterministic ones exercise the finite-pool concrete
    semantics — RCYCL is sequential by design (order-dependent used-value
    pool) and is therefore *not* a differential target.
    """
    if dcds.semantics is ServiceSemantics.DETERMINISTIC:
        def factory():
            generator = DetAbstractionGenerator(dcds)
            if SYMMETRY == "quotient":
                generator = SymmetryReducer(generator)
            return generator
        return (factory,
                dict(max_states=MAX_STATES, max_depth=MAX_DEPTH,
                     on_budget="truncate"))
    return (lambda: PoolNondetGenerator(dcds, list(POOL)),
            dict(max_states=MAX_STATES, max_depth=MAX_DEPTH,
                 on_budget="truncate"))


def assert_isomorphic_builds(sequential, parallel):
    """Bit-identical: states, dbs, edge multiset, truncation, stats."""
    assert sequential.initial == parallel.initial
    assert sequential.states == parallel.states
    # Edge multiset: labeled edges with multiplicity.
    sequential_edges = Counter(
        (source, label, target)
        for source, label, target in sequential.edges())
    parallel_edges = Counter(
        (source, label, target)
        for source, label, target in parallel.edges())
    assert sequential_edges == parallel_edges
    assert sequential.truncated_states == parallel.truncated_states
    for state in sequential.states:
        assert sequential.db(state) == parallel.db(state)
    for key in ("growth_trace", "expansions", "frontier_peak", "diverged",
                "explored_states", "explored_edges"):
        assert sequential.exploration_stats[key] \
            == parallel.exploration_stats[key], key


@contextlib.contextmanager
def forced_env(name, value):
    """Set (or, with ``value=None``, unset) a variable for the block."""
    saved = os.environ.get(name)
    try:
        if value is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = value
        yield
    finally:
        if saved is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = saved


def assert_certificates_agree(dcds, ts_a, ts_b):
    """Both sides of a differential pair certify identically.

    Extraction is a pure function of the transition system, so two
    bit-identical builds must yield the same verdict, the same outcome
    token, and (when one exists) the same certificate — and every emitted
    certificate must pass the independent replay-checker.
    """
    formula = reachability_formula(dcds)
    sides = []
    for ts in (ts_a, ts_b):
        checker = ModelChecker(ts, extra_domain=dcds.known_constants())
        holds = checker.models(formula)
        outcome = extract(ts, formula, holds, checker.engine_for(formula))
        if outcome.certificate is not None:
            report = replay(ts, outcome.certificate)
            assert report.ok, report.failures
        sides.append((holds, outcome.reason, outcome.certificate))
    assert sides[0] == sides[1]


def run_differential_case(seed, shape, semantics):
    dcds = random_dcds(seed, shape=shape, semantics=semantics)
    generator_factory, config = explorer_config(dcds)
    sequential = Explorer(dcds.schema, **config).run(
        generator_factory()).transition_system
    for workers in WORKER_COUNTS:
        parallel = ParallelExplorer(
            dcds.schema, workers=workers, batch_size=4, **config,
        ).run(generator_factory()).transition_system
        assert_isomorphic_builds(sequential, parallel)
    # Frontier-batch mirror: the batched driver (REPRO_NO_BATCH unset)
    # and the per-state driver (REPRO_NO_BATCH=1) must produce
    # bit-identical builds — states, dbs, edge multisets, truncation
    # flags, growth traces. Successor memos are keyed by spec signature
    # and survive rebuilds, so each side starts from cleared caches;
    # otherwise the second build would replay the first one's warmed
    # memos instead of exercising its own grounding tier.
    batch_builds = {}
    for forced in (None, "1"):
        with forced_env("REPRO_NO_BATCH", forced):
            clear_subproblem_caches()
            batch_builds[forced] = Explorer(dcds.schema, **config).run(
                generator_factory()).transition_system
    clear_subproblem_caches()
    assert_isomorphic_builds(batch_builds[None], batch_builds["1"])
    assert_isomorphic_builds(sequential, batch_builds["1"])
    assert_certificates_agree(dcds, sequential, batch_builds["1"])
    # Out-of-core mirror: the same case rebuilt under a tight memory
    # budget — sequential and at every worker count — must stay
    # bit-identical to the in-RAM build. Under the REPRO_NO_SPILL=1 CI
    # mirror (or without a kernel) the budget is vetoed and these are
    # plain rebuilds, which must *still* be bit-identical.
    store_config = dict(config, memory_budget=TIGHT_BUDGET)
    spill_expected = not env.spill_disabled() \
        and kernel_for(dcds) is not None
    budgeted = Explorer(dcds.schema, **store_config).run(
        generator_factory()).transition_system
    if spill_expected:
        assert budgeted.exploration_stats.get("store"), \
            "tight budget did not engage the paged store"
    assert_isomorphic_builds(sequential, budgeted)
    for workers in WORKER_COUNTS:
        budgeted_parallel = ParallelExplorer(
            dcds.schema, workers=workers, batch_size=4, **store_config,
        ).run(generator_factory()).transition_system
        assert_isomorphic_builds(sequential, budgeted_parallel)
    # The kill switch vetoes even an explicit budget: plain build.
    with forced_env("REPRO_NO_SPILL", "1"):
        vetoed = Explorer(dcds.schema, **store_config).run(
            generator_factory()).transition_system
    assert vetoed.exploration_stats.get("store") is None
    assert_isomorphic_builds(sequential, vetoed)
    return sequential


class TestDifferentialFast:
    @pytest.mark.parametrize("seed,shape,semantics", case_params(FAST_SEEDS))
    def test_parallel_matches_sequential(self, seed, shape, semantics):
        run_differential_case(seed, shape, semantics)


@pytest.mark.slow_differential
class TestDifferentialSweep:
    @pytest.mark.parametrize("seed,shape,semantics", case_params(SLOW_SEEDS))
    def test_parallel_matches_sequential(self, seed, shape, semantics):
        run_differential_case(seed, shape, semantics)


# ---------------------------------------------------------------------------
# checkpoint interrupt/resume under spill
# ---------------------------------------------------------------------------

class TestCheckpointUnderSpill:
    """Crash-safe persistence composed with the out-of-core store: a
    budgeted run interrupted mid-build and resumed (in either mode) must
    converge to the bit-identical transition system."""

    def _case(self):
        dcds = random_dcds(0, shape="weakly-acyclic",
                           semantics=ServiceSemantics.DETERMINISTIC)
        generator_factory, config = explorer_config(dcds)
        baseline = Explorer(dcds.schema, **config).run(
            generator_factory()).transition_system
        return dcds, generator_factory, config, baseline

    def _interrupted(self, dcds, generator_factory, config, path,
                     **extra):
        checkpoint = Checkpoint(path, interval=0)
        checkpoint._interrupt_after_chunks = 2
        with pytest.raises(CheckpointInterrupted):
            Explorer(dcds.schema, checkpoint=checkpoint, **config,
                     **extra).run(generator_factory())

    def test_budgeted_interrupt_budgeted_resume(self, tmp_path):
        dcds, generator_factory, config, baseline = self._case()
        path = tmp_path / "ck-spill"
        self._interrupted(dcds, generator_factory, config, path,
                          memory_budget=TIGHT_BUDGET)
        resumed = Explorer(
            dcds.schema, checkpoint=Checkpoint(path, interval=0),
            memory_budget=TIGHT_BUDGET, **config,
        ).run(generator_factory()).transition_system
        assert_isomorphic_builds(baseline, resumed)

    def test_budgeted_interrupt_plain_resume(self, tmp_path):
        """A store-format checkpoint is readable by an unbudgeted run."""
        dcds, generator_factory, config, baseline = self._case()
        if env.spill_disabled() or kernel_for(dcds) is None:
            pytest.skip("store mode unavailable")
        path = tmp_path / "ck-cross"
        self._interrupted(dcds, generator_factory, config, path,
                          memory_budget=TIGHT_BUDGET)
        resumed = Explorer(
            dcds.schema, checkpoint=Checkpoint(path, interval=0),
            **config,
        ).run(generator_factory()).transition_system
        assert_isomorphic_builds(baseline, resumed)

    def test_plain_interrupt_budgeted_resume(self, tmp_path):
        """A wire/pickle checkpoint resumed by a budgeted run demotes to
        the plain path (no mid-flight re-encoding) but still converges."""
        dcds, generator_factory, config, baseline = self._case()
        path = tmp_path / "ck-demote"
        # The interrupted run must be genuinely plain even when the
        # ambient environment sets a budget default, or the checkpoint
        # would be store-format and no demotion happens on resume.
        with forced_env("REPRO_MEMORY_BUDGET", None):
            self._interrupted(dcds, generator_factory, config, path)
        resumed = Explorer(
            dcds.schema, checkpoint=Checkpoint(path, interval=0),
            memory_budget=TIGHT_BUDGET, **config,
        ).run(generator_factory()).transition_system
        assert resumed.exploration_stats.get("store") is None
        assert_isomorphic_builds(baseline, resumed)

    def test_budgeted_parallel_interrupt_resume(self, tmp_path):
        dcds, generator_factory, config, baseline = self._case()
        path = tmp_path / "ck-par"
        checkpoint = Checkpoint(path, interval=0)
        checkpoint._interrupt_after_chunks = 2
        with pytest.raises(CheckpointInterrupted):
            ParallelExplorer(
                dcds.schema, workers=2, batch_size=4,
                checkpoint=checkpoint, memory_budget=TIGHT_BUDGET,
                **config).run(generator_factory())
        resumed = ParallelExplorer(
            dcds.schema, workers=2, batch_size=4,
            checkpoint=Checkpoint(path, interval=0),
            memory_budget=TIGHT_BUDGET, **config,
        ).run(generator_factory()).transition_system
        assert_isomorphic_builds(baseline, resumed)


# ---------------------------------------------------------------------------
# verify() end-to-end agreement
# ---------------------------------------------------------------------------

def reachability_formula(dcds):
    """``EF (R0 nonempty)`` with LIVE-guarded quantifiers (µLP)."""
    arity = dcds.schema.arity("R0")
    variables = [f"x{i}" for i in range(arity)]
    guards = " & ".join(f"live({v})" for v in variables)
    quantifiers = " ".join(f"E {v}." for v in variables)
    return parse_mu(
        f"mu Z. (({quantifiers} {guards} & R0({', '.join(variables)}))"
        f" | <-> Z)")


def invariant_formula(dcds):
    """``AG (R0 empty)`` in guarded-universal form (µLP) — violated on
    any run that ever populates R0, exercising violation certificates."""
    arity = dcds.schema.arity("R0")
    variables = [f"x{i}" for i in range(arity)]
    if not variables:
        return parse_mu("nu Z. (~R0() & [-] Z)")
    vars_csv = ", ".join(variables)
    return parse_mu(
        f"nu Z. ((A {vars_csv}. (~live({vars_csv}) | ~R0({vars_csv})))"
        f" & [-] Z)")


def assert_report_certified(report, dcds, formula):
    """The report's certificate passes the independent replay oracle and
    its verdict agrees with the uncompiled reference evaluator."""
    certificate = report.witness or report.violation
    if env.witness_disabled():
        assert certificate is None
        assert report.checking_stats["witness"] == {"enabled": False}
        return None
    if certificate is not None:
        oracle = replay(report.transition_system, certificate)
        assert oracle.ok, oracle.failures
    reference = ModelChecker(report.transition_system,
                             extra_domain=dcds.known_constants(),
                             compiled=False)
    assert reference.models(formula) == report.holds
    if certificate is not None:
        # The certificate's terminal discharges the shape's body exactly
        # when the reference evaluator says so: a witness ends in a
        # formula-satisfying state, a violation ends outside the
        # invariant's extension.
        satisfying = reference.evaluate(formula)
        if report.witness is not None:
            assert certificate.final in satisfying
        else:
            assert certificate.final not in satisfying
    return certificate


def assert_verify_agrees(seed, shape, semantics,
                         formula_factory=reachability_formula):
    dcds = random_dcds(seed, shape=shape, semantics=semantics)
    formula = formula_factory(dcds)
    try:
        baseline = verify(dcds, formula, max_states=MAX_STATES)
    except (UndecidableFragment, VerificationError) as failed:
        # The static precondition (or, under REPRO_SYMMETRY=quotient, the
        # µLP adequacy gate) failed — it must fail identically sharded.
        with pytest.raises(type(failed)):
            verify(dcds, formula, max_states=MAX_STATES,
                   workers=MAX_WORKERS)
        return
    sharded = verify(dcds, formula, max_states=MAX_STATES,
                     workers=MAX_WORKERS)
    assert sharded.holds == baseline.holds
    assert sharded.route == baseline.route
    assert sharded.abstraction_stats["states"] \
        == baseline.abstraction_stats["states"]
    assert sharded.abstraction_stats["edges"] \
        == baseline.abstraction_stats["edges"]
    # Certificates: both sides of the pair replay green through the
    # independent oracle, agree with the reference evaluator, and are
    # bit-identical (same offline extraction route on identical builds).
    baseline_cert = assert_report_certified(baseline, dcds, formula)
    sharded_cert = assert_report_certified(sharded, dcds, formula)
    assert baseline_cert == sharded_cert


class TestVerifyAgreementFast:
    @pytest.mark.parametrize("seed", FAST_SEEDS)
    def test_det_weakly_acyclic(self, seed):
        assert_verify_agrees(seed, "weakly-acyclic",
                             ServiceSemantics.DETERMINISTIC)

    def test_nondet_route_accepts_workers(self):
        """RCYCL stays sequential; workers= must be a no-op there."""
        assert_verify_agrees(0, "gr-acyclic",
                             ServiceSemantics.NONDETERMINISTIC)

    @pytest.mark.parametrize("seed", FAST_SEEDS)
    def test_invariant_det_weakly_acyclic(self, seed):
        """The AG pack fails on these workloads, so the agreement check
        exercises violation certificates end to end."""
        assert_verify_agrees(seed, "weakly-acyclic",
                             ServiceSemantics.DETERMINISTIC,
                             formula_factory=invariant_formula)

    def test_invariant_nondet_gr_acyclic(self):
        assert_verify_agrees(0, "gr-acyclic",
                             ServiceSemantics.NONDETERMINISTIC,
                             formula_factory=invariant_formula)


@pytest.mark.slow_differential
class TestVerifyAgreementSweep:
    @pytest.mark.parametrize("seed", SLOW_SEEDS)
    def test_det_weakly_acyclic(self, seed):
        assert_verify_agrees(seed, "weakly-acyclic",
                             ServiceSemantics.DETERMINISTIC)

    @pytest.mark.parametrize("seed", SLOW_SEEDS[:2])
    def test_nondet_gr_acyclic(self, seed):
        assert_verify_agrees(seed, "gr-acyclic",
                             ServiceSemantics.NONDETERMINISTIC)

    @pytest.mark.parametrize("seed", SLOW_SEEDS)
    def test_invariant_det_weakly_acyclic(self, seed):
        assert_verify_agrees(seed, "weakly-acyclic",
                             ServiceSemantics.DETERMINISTIC,
                             formula_factory=invariant_formula)

    @pytest.mark.parametrize("seed", SLOW_SEEDS[:2])
    def test_invariant_nondet_gr_acyclic(self, seed):
        assert_verify_agrees(seed, "gr-acyclic",
                             ServiceSemantics.NONDETERMINISTIC,
                             formula_factory=invariant_formula)
