"""Action execution: legal parameters, DO(), call evaluation."""

import pytest

from repro.errors import ExecutionError, IllegalParameters
from repro.core import (
    DCDSBuilder, ServiceSemantics, calls_of, do_action, enabled_moves,
    evaluate_calls, legal_substitutions, successor_via)
from repro.relational import Instance, ServiceCall, fact
from repro.relational.values import Param


@pytest.fixture
def parametric():
    builder = DCDSBuilder(name="param", constants=set())
    builder.schema("R/1", "S/1", "T/2")
    builder.initial("R('a'), R('b'), S('b')")
    builder.service("f/1")
    builder.action("pick(p)", "R($p) ~> T($p, f($p))")
    builder.rule("exists x. R($p) & S($p) & R(x)", "pick")
    return builder.build()


class TestLegalSubstitutions:
    def test_guard_filters_parameters(self, parametric):
        rule = parametric.process.rules[0]
        sigmas = legal_substitutions(parametric, parametric.initial, rule)
        assert sigmas == [{Param("p"): "b"}]

    def test_no_parameters(self):
        builder = DCDSBuilder(name="np")
        builder.schema("R/1")
        builder.initial("R('a')")
        builder.action("go", "R(x) ~> R(x)")
        builder.rule("exists x. R(x)", "go")
        dcds = builder.build()
        rule = dcds.process.rules[0]
        assert legal_substitutions(dcds, dcds.initial, rule) == [{}]

    def test_unsatisfied_guard(self):
        builder = DCDSBuilder(name="ug")
        builder.schema("R/1", "S/1")
        builder.initial("R('a')")
        builder.action("go", "R(x) ~> R(x)")
        builder.rule("exists x. S(x)", "go")
        dcds = builder.build()
        assert legal_substitutions(
            dcds, dcds.initial, dcds.process.rules[0]) == []

    def test_enabled_moves_dedup(self, parametric):
        moves = list(enabled_moves(parametric, parametric.initial))
        assert len(moves) == 1
        action, sigma = moves[0]
        assert action.name == "pick"
        assert sigma == {Param("p"): "b"}


class TestDoAction:
    def test_do_produces_pending_calls(self, parametric):
        action = parametric.process.action("pick")
        pending = do_action(parametric, parametric.initial,
                            action, {Param("p"): "b"})
        call = ServiceCall("f", ("b",))
        assert pending == Instance([("T", ("b", call))])
        assert calls_of(pending) == [call]

    def test_do_requires_exact_parameters(self, parametric):
        action = parametric.process.action("pick")
        with pytest.raises(IllegalParameters):
            do_action(parametric, parametric.initial, action, {})

    def test_effects_union(self):
        builder = DCDSBuilder(name="union")
        builder.schema("R/1", "S/1")
        builder.initial("R('a'), R('b')")
        builder.action("go", "R(x) ~> S(x)", "R(x) ~> R(x)")
        builder.rule("true", "go")
        dcds = builder.build()
        pending = do_action(dcds, dcds.initial,
                            dcds.process.action("go"), {})
        assert pending == Instance([fact("R", "a"), fact("R", "b"),
                                    fact("S", "a"), fact("S", "b")])

    def test_negative_filter_applies(self):
        builder = DCDSBuilder(name="filter")
        builder.schema("R/1", "S/1", "T/1")
        builder.initial("R('a'), R('b'), S('b')")
        builder.action("go", "R(x) & ~S(x) ~> T(x)")
        builder.rule("true", "go")
        dcds = builder.build()
        pending = do_action(dcds, dcds.initial,
                            dcds.process.action("go"), {})
        assert pending == Instance([fact("T", "a")])


class TestEvaluateCalls:
    def test_successful_evaluation(self, parametric):
        action = parametric.process.action("pick")
        pending = do_action(parametric, parametric.initial, action,
                            {Param("p"): "b"})
        call = ServiceCall("f", ("b",))
        successor = evaluate_calls(parametric, pending, {call: "fresh"})
        assert successor == Instance([fact("T", "b", "fresh")])

    def test_constraint_violation_returns_none(self):
        builder = DCDSBuilder(name="cv")
        builder.schema("R/1", "T/2")
        builder.initial("R('a')")
        builder.service("f/1")
        builder.constraint("T(x, y) -> x = y")
        builder.action("go", "R(x) ~> T(x, f(x))")
        builder.rule("true", "go")
        dcds = builder.build()
        pending = do_action(dcds, dcds.initial,
                            dcds.process.action("go"), {})
        call = ServiceCall("f", ("a",))
        assert evaluate_calls(dcds, pending, {call: "b"}) is None
        assert evaluate_calls(dcds, pending, {call: "a"}) == \
            Instance([fact("T", "a", "a")])

    def test_missing_call_rejected(self, parametric):
        action = parametric.process.action("pick")
        with pytest.raises(ExecutionError):
            successor_via(parametric, parametric.initial, action,
                          {Param("p"): "b"}, {})

    def test_successor_via(self, parametric):
        action = parametric.process.action("pick")
        call = ServiceCall("f", ("b",))
        successor = successor_via(parametric, parametric.initial, action,
                                  {Param("p"): "b"}, {call: "z"})
        assert successor == Instance([fact("T", "b", "z")])
